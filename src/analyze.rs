//! The `session-cli analyze` subcommand: run the exhaustive small-scope
//! model checker over named targets (or all of them), or the
//! happens-before analyzer over a recorded JSONL trace, and print a lint
//! report.
//!
//! ```text
//! session-cli analyze --all
//! session-cli analyze --all reduce=all
//! session-cli analyze --all reduce=all threads=8
//! session-cli analyze NaivePeriodicSm format=csv
//! session-cli analyze --all allow=SA005 warn=SA003
//! session-cli analyze target=PeriodicMp n=3 s=3 threads=8 profile=p.json
//! session-cli analyze PeriodicMp progress=on
//! session-cli analyze trace=run.jsonl
//! session-cli analyze trace=run.jsonl model=asynchronous
//! session-cli analyze --list
//! ```
//!
//! Exit status (returned by [`AnalyzeConfig::execute`], applied by the
//! binary): `0` when no deny-severity finding fired, `1` when at least one
//! did, `2` on usage errors, `3` when every finding cleared but at least
//! one exploration was cut at its depth budget (clean, but the verdict is
//! partial).
//!
//! The flight recorder (`profile=`, `progress=`; DESIGN.md §15) never
//! changes findings or exit codes — `tests/full_pipeline.rs` asserts
//! bit-identical reports with it on and off for every target.

use std::io::IsTerminal as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use session_analyzer::diag::ALL_CODES;
use session_analyzer::{
    analyze_scoped_target_flight, analyze_target_flight, analyze_target_symbolic,
    analyze_trace_jsonl, target_names, target_space, ExploreOpts, FlightOpts, LintCode, LintConfig,
    Report, Severity,
};
use session_obs::ProgressBoard;
use session_types::{Error, Result, TimingModel};

/// Output format for the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalyzeFormat {
    /// GitHub-flavored markdown tables (the bench-report dialect).
    Markdown,
    /// `code,severity,target,scope,message` rows.
    Csv,
}

/// A fully parsed `analyze` command line.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Targets to analyze, in registry order.
    pub targets: Vec<String>,
    /// Recorded JSONL trace to run the happens-before analyzer over.
    pub trace: Option<String>,
    /// Timing-model claim override for the trace analysis (`model=`).
    pub model: Option<TimingModel>,
    /// Reduction layers for the exploration (`reduce=`).
    pub opts: ExploreOpts,
    /// When true, additionally run the symbolic zone-graph engine over
    /// each selected target (`symbolic=on`).
    pub symbolic: bool,
    /// Output format.
    pub format: AnalyzeFormat,
    /// Per-rule severity overrides.
    pub lints: LintConfig,
    /// When true, print the target registry and the lint codes, and exit.
    pub list: bool,
    /// Rebuild the (single) target at this process count (`n=`).
    pub n: Option<usize>,
    /// Rebuild the (single) target at this session count (`s=`).
    pub s: Option<u64>,
    /// Write the exploration's `analyzer-profile/v1` document here (and a
    /// Perfetto trace next to it); requires exactly one target.
    pub profile: Option<PathBuf>,
    /// Live progress line on stderr (`progress=on`); rate-limited, and
    /// silent when stderr is not a terminal or `CI` is set.
    pub progress: bool,
}

impl AnalyzeConfig {
    /// The usage string printed on parse errors.
    pub const USAGE: &'static str = "\
usage: session-cli analyze [--all | TARGET ...] [key=value ...]
  --all                 analyze every registered target
  --list                print the registered targets and lint codes, exit
  target=NAME           select a target (same as naming it positionally)
  n=N s=S               rebuild the target at these dimensions (exactly
                        one target; defaults are the registry fixtures)
  trace=FILE.jsonl      analyze a recorded trace (happens-before lints)
  model=NAME            claim override for trace analysis (synchronous,
                        periodic, semi-synchronous, sporadic, asynchronous)
  reduce=none|por|symmetry|all
                        reduction layers for the exploration (default none)
  threads=N             worker threads for the exploration (default 1);
                        findings are identical at every thread count
  symbolic=on|off       additionally run the symbolic zone-graph engine
                        over each target (SA010-SA012; default off)
  profile=FILE.json     write the exploration's flight-recorder profile
                        (analyzer-profile/v1, plus FILE.perfetto.json);
                        exactly one target; findings are unchanged
  progress=on|off       live progress line on stderr (default off; silent
                        when stderr is not a terminal or CI is set)
  format=md|csv         report format (default md)
  allow=CODE[,CODE...]  suppress rules (SAxxx code or rule name)
  warn=CODE[,CODE...]   report rules without failing
  deny=CODE[,CODE...]   restore rules to failing (the default)
exit status: 0 clean, 1 deny-severity finding, 2 usage error,
3 clean but at least one exploration was cut at its depth budget
targets: the ten paper algorithms (clean) and three naive witnesses
(flagged); run `session-cli analyze --list` for the names.";

    /// Parses the arguments after the `analyze` keyword.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] (carrying a usage hint) on unknown
    /// targets, codes, formats, models or options, on `model=` without
    /// `trace=`, and when nothing is selected.
    pub fn parse<I, S>(args: I) -> Result<AnalyzeConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let bad = |msg: &str| Error::invalid_params(format!("{msg}\n{}", AnalyzeConfig::USAGE));
        let mut all = false;
        let mut list = false;
        let mut targets: Vec<String> = Vec::new();
        let mut trace = None;
        let mut model = None;
        let mut opts = ExploreOpts::default();
        let mut threads: Option<usize> = None;
        let mut symbolic: Option<bool> = None;
        let mut format = AnalyzeFormat::Markdown;
        let mut lints = LintConfig::new();
        let mut n: Option<usize> = None;
        let mut s: Option<u64> = None;
        let mut profile: Option<PathBuf> = None;
        let mut progress: Option<bool> = None;

        let set_codes = |lints: &mut LintConfig, value: &str, severity: Severity| {
            for part in value.split(',') {
                let code = LintCode::parse(part)
                    .ok_or_else(|| bad(&format!("unknown lint code `{part}`")))?;
                lints.set(code, severity);
            }
            Ok::<(), Error>(())
        };

        for arg in args {
            let arg = arg.as_ref();
            match arg.split_once('=') {
                Some(("format", value)) => {
                    format = match value {
                        "md" | "markdown" => AnalyzeFormat::Markdown,
                        "csv" => AnalyzeFormat::Csv,
                        other => return Err(bad(&format!("unknown format `{other}`"))),
                    }
                }
                Some(("trace", value)) => trace = Some(value.to_string()),
                Some(("model", value)) => {
                    model = Some(match value {
                        "synchronous" => TimingModel::Synchronous,
                        "periodic" => TimingModel::Periodic,
                        "semi-synchronous" => TimingModel::SemiSynchronous,
                        "sporadic" => TimingModel::Sporadic,
                        "asynchronous" => TimingModel::Asynchronous,
                        other => return Err(bad(&format!("unknown timing model `{other}`"))),
                    });
                }
                Some(("reduce", value)) => {
                    (opts.por, opts.symmetry) = match value {
                        "none" => (false, false),
                        "por" => (true, false),
                        "symmetry" => (false, true),
                        "all" => (true, true),
                        other => return Err(bad(&format!("unknown reduction `{other}`"))),
                    }
                }
                Some(("threads", value)) => {
                    let parsed: usize = value
                        .parse()
                        .map_err(|_| bad(&format!("threads= wants a count, got `{value}`")))?;
                    if parsed == 0 {
                        return Err(bad("threads=0 is meaningless; pass threads=1 or more"));
                    }
                    threads = Some(parsed);
                }
                Some(("symbolic", value)) => {
                    symbolic = Some(match value {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(bad(&format!("symbolic= wants on or off, got `{other}`")))
                        }
                    });
                }
                Some(("target", value)) => {
                    if !target_names().contains(&value) {
                        return Err(bad(&format!("unknown target `{value}`")));
                    }
                    targets.push(value.to_string());
                }
                Some(("n", value)) => {
                    let parsed: usize = value
                        .parse()
                        .map_err(|_| bad(&format!("n= wants a process count, got `{value}`")))?;
                    if parsed == 0 {
                        return Err(bad("n=0 is meaningless; pass n=1 or more"));
                    }
                    n = Some(parsed);
                }
                Some(("s", value)) => {
                    let parsed: u64 = value
                        .parse()
                        .map_err(|_| bad(&format!("s= wants a session count, got `{value}`")))?;
                    if parsed == 0 {
                        return Err(bad("s=0 is meaningless; pass s=1 or more"));
                    }
                    s = Some(parsed);
                }
                Some(("profile", value)) => profile = Some(PathBuf::from(value)),
                Some(("progress", value)) => {
                    progress = Some(match value {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(bad(&format!("progress= wants on or off, got `{other}`")))
                        }
                    });
                }
                Some(("allow", value)) => set_codes(&mut lints, value, Severity::Allow)?,
                Some(("warn", value)) => set_codes(&mut lints, value, Severity::Warn)?,
                Some(("deny", value)) => set_codes(&mut lints, value, Severity::Deny)?,
                Some((other, _)) => return Err(bad(&format!("unknown option `{other}`"))),
                None if arg == "--all" => all = true,
                None if arg == "--list" => list = true,
                None => {
                    if !target_names().contains(&arg) {
                        return Err(bad(&format!("unknown target `{arg}`")));
                    }
                    targets.push(arg.to_string());
                }
            }
        }

        if all {
            targets = target_names().iter().map(ToString::to_string).collect();
        } else if targets.is_empty() && trace.is_none() && !list {
            return Err(bad("select targets by name, pass --all, or pass trace="));
        }
        if model.is_some() && trace.is_none() {
            return Err(bad("model= is a claim override for trace= analysis"));
        }
        if threads.is_some() && trace.is_some() {
            return Err(bad("threads= parallelizes the state-space exploration; \
                 trace analysis replays one recorded run and is inherently serial"));
        }
        if symbolic.is_some() && trace.is_some() {
            return Err(bad("symbolic= runs the zone-graph engine over a target's \
                 state space; trace analysis replays one recorded run and has no \
                 space to abstract"));
        }
        if (n.is_some() || s.is_some()) && targets.len() != 1 {
            return Err(bad(
                "n=/s= rebuild one target's scope: select exactly one target",
            ));
        }
        if profile.is_some() {
            if targets.len() != 1 {
                return Err(bad(
                    "profile= records one exploration: select exactly one target",
                ));
            }
            if symbolic == Some(true) {
                return Err(bad(
                    "profile= records the explicit exploration; it does not \
                     cover the symbolic zone walk (drop symbolic=on)",
                ));
            }
        }
        if (profile.is_some() || progress.is_some()) && trace.is_some() {
            return Err(bad(
                "profile=/progress= observe a state-space exploration; \
                 trace analysis replays one recorded run",
            ));
        }
        opts.threads = threads.unwrap_or(1);
        Ok(AnalyzeConfig {
            targets,
            trace,
            model,
            opts,
            symbolic: symbolic.unwrap_or(false),
            format,
            lints,
            list,
            n,
            s,
            profile,
            progress: progress.unwrap_or(false),
        })
    }

    /// Runs the selected explorations and/or the trace analysis and
    /// renders the report. The second component is the process exit code:
    /// `0` clean, `1` at least one deny-severity finding, `3` clean but
    /// at least one exploration was cut at its depth budget.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] when the trace file cannot be read
    /// or is not a well-formed event stream.
    pub fn execute(&self) -> Result<(String, i32)> {
        if self.list {
            let mut out = String::from("targets:\n");
            for name in target_names() {
                out.push_str("  ");
                out.push_str(name);
                out.push('\n');
            }
            out.push_str("lints:\n");
            for code in ALL_CODES {
                out.push_str(&format!(
                    "  {} {:<24} {}\n",
                    code.code(),
                    code.name(),
                    code.describe()
                ));
            }
            return Ok((out, 0));
        }
        let board = self.progress.then(|| Arc::new(ProgressBoard::new()));
        let monitor = board
            .as_ref()
            .and_then(|b| spawn_monitor(b, self.opts.threads));
        let flight = FlightOpts {
            profile: self.profile.is_some(),
            progress: board.clone(),
        };
        let mut report = Report::default();
        let mut profile_doc = None;
        for name in &self.targets {
            let (target, profile) = match (self.n, self.s) {
                (None, None) => {
                    analyze_target_flight(name, self.opts, &mut session_obs::NullRecorder, &flight)
                }
                (n, s) => {
                    let default = target_space(name)
                        .expect("parse validated the target names") // wslint: allow(ws004): target names are validated at parse time
                        .scope;
                    analyze_scoped_target_flight(
                        name,
                        n.unwrap_or(default.n),
                        s.unwrap_or(default.s),
                        self.opts,
                        &mut session_obs::NullRecorder,
                        &flight,
                    )
                }
            }
            .expect("parse validated the target names"); // wslint: allow(ws004): target names are validated at parse time
            report.merge(target);
            profile_doc = profile_doc.or(profile);
            if self.symbolic {
                let symbolic =
                    analyze_target_symbolic(name).expect("parse validated the target names"); // wslint: allow(ws004): target names are validated at parse time
                report.merge(symbolic);
            }
        }
        if let Some(board) = &board {
            board.finish();
        }
        if let Some(handle) = monitor {
            let _ = handle.join();
        }
        if let Some(path) = &self.trace {
            let text = std::fs::read_to_string(path)
                .map_err(|e| Error::invalid_params(format!("trace `{path}`: {e}")))?;
            let analysis = analyze_trace_jsonl(&text, path, self.model)
                .map_err(|e| Error::invalid_params(format!("trace `{path}`: {e}")))?;
            report.merge(analysis.report);
        }
        let mut rendered = match self.format {
            AnalyzeFormat::Markdown => report.to_markdown(&self.lints),
            AnalyzeFormat::Csv => report.to_csv(&self.lints),
        };
        if let (Some(path), Some(profile)) = (&self.profile, &profile_doc) {
            let write = |path: &std::path::Path, text: &str| {
                std::fs::write(path, text).map_err(|err| {
                    Error::invalid_params(format!("cannot write {}: {err}", path.display()))
                })
            };
            write(path, &profile.to_json())?;
            let perfetto_path = perfetto_path_for(path);
            write(&perfetto_path, &profile.to_perfetto())?;
            rendered.push_str(&format!(
                "\nwrote {}\nwrote {}\n",
                path.display(),
                perfetto_path.display()
            ));
        }
        Ok((rendered, exit_code(&report, &self.lints)))
    }
}

/// `p.json` → `p.perfetto.json` (non-`.json` paths just get the suffix
/// appended).
fn perfetto_path_for(path: &std::path::Path) -> PathBuf {
    let raw = path.to_string_lossy();
    let stem = raw.strip_suffix(".json").unwrap_or(&raw);
    PathBuf::from(format!("{stem}.perfetto.json"))
}

/// Starts the `progress=on` stderr monitor, unless stderr is not a
/// terminal or `CI` is set (a CI log would collect thousands of
/// carriage-returned lines). The thread redraws a `\r`-anchored status
/// line about five times a second and clears it when the board finishes.
fn spawn_monitor(
    board: &Arc<ProgressBoard>,
    threads: usize,
) -> Option<std::thread::JoinHandle<()>> {
    if !std::io::stderr().is_terminal() || std::env::var_os("CI").is_some() {
        return None;
    }
    let board = Arc::clone(board);
    Some(std::thread::spawn(move || {
        // wslint: allow(ws001): the progress board shows real elapsed time by design
        let started = std::time::Instant::now();
        #[allow(clippy::cast_precision_loss)]
        while !board.is_done() {
            let snap = board.snapshot();
            let secs = started.elapsed().as_secs_f64();
            let rate = if secs > 0.0 {
                snap.states as f64 / secs
            } else {
                0.0
            };
            eprint!(
                "\r[analyze] states={} ({rate:.0}/s) depth={} pool={} busy={}/{threads}   ",
                snap.states, snap.depth, snap.frontier, snap.busy
            );
            std::thread::sleep(Duration::from_millis(200));
        }
        // Clear the status line so the report starts on a clean row.
        eprint!("\r{:78}\r", "");
    }))
}

/// Maps a finished report to the analyze exit status: `1` for any
/// deny-severity finding, `3` when every finding cleared but at least one
/// exploration was cut at its depth budget, `0` otherwise.
fn exit_code(report: &Report, lints: &LintConfig) -> i32 {
    if report.has_denials(lints) {
        1
    } else if report.targets.iter().any(|t| t.truncated) {
        3
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> (String, i32) {
        AnalyzeConfig::parse(args).unwrap().execute().unwrap()
    }

    #[test]
    fn truncated_but_clean_exits_3_and_denials_take_precedence() {
        use session_analyzer::TargetSummary;

        let lints = LintConfig::new();
        let mut report = Report::default();
        report.targets.push(TargetSummary::new("clean", 10));
        assert_eq!(exit_code(&report, &lints), 0);

        let mut cut = TargetSummary::new("cut", 10);
        cut.truncated = true;
        cut.depth_hits = 4;
        report.targets.push(cut);
        assert_eq!(exit_code(&report, &lints), 3);

        // A deny finding outranks the truncation signal.
        report.findings.push(session_analyzer::Diagnostic {
            code: LintCode::SessionDeficit,
            target: "cut".to_owned(),
            message: "synthetic".to_owned(),
            scope: String::new(),
            repro: String::new(),
            counterexample: String::new(),
        });
        assert_eq!(exit_code(&report, &lints), 1);
    }

    #[test]
    fn all_selects_the_whole_registry() {
        let config = AnalyzeConfig::parse(["--all"]).unwrap();
        assert_eq!(config.targets.len(), 13);
        assert_eq!(config.format, AnalyzeFormat::Markdown);
        assert_eq!(config.opts, ExploreOpts::default());
    }

    #[test]
    fn named_targets_format_and_reduce_parse() {
        let config =
            AnalyzeConfig::parse(["NaivePeriodicSm", "SyncSm", "format=csv", "reduce=all"])
                .unwrap();
        assert_eq!(config.targets, vec!["NaivePeriodicSm", "SyncSm"]);
        assert_eq!(config.format, AnalyzeFormat::Csv);
        assert_eq!(config.opts, ExploreOpts::reduced());
        assert!(AnalyzeConfig::parse(["SyncSm", "reduce=fast"]).is_err());
    }

    #[test]
    fn threads_parses_independently_of_reduce_order() {
        let config = AnalyzeConfig::parse(["--all", "reduce=all", "threads=8"]).unwrap();
        assert_eq!(config.opts.threads, 8);
        assert!(config.opts.por && config.opts.symmetry);
        // reduce= after threads= must not reset the thread count.
        let config = AnalyzeConfig::parse(["SyncSm", "threads=4", "reduce=por"]).unwrap();
        assert_eq!(config.opts.threads, 4);
        assert!(config.opts.por && !config.opts.symmetry);
        // Default stays serial.
        let config = AnalyzeConfig::parse(["SyncSm"]).unwrap();
        assert_eq!(config.opts.threads, 1);
    }

    #[test]
    fn symbolic_parses_composes_with_reduce_and_threads_and_rejects_trace() {
        let config = AnalyzeConfig::parse(["--all", "symbolic=on"]).unwrap();
        assert!(config.symbolic);
        let config = AnalyzeConfig::parse(["SyncSm", "symbolic=off"]).unwrap();
        assert!(!config.symbolic);
        // Default stays off.
        let config = AnalyzeConfig::parse(["SyncSm"]).unwrap();
        assert!(!config.symbolic);
        // Composes with the explicit engine's knobs.
        let config =
            AnalyzeConfig::parse(["SyncSm", "symbolic=on", "reduce=all", "threads=4"]).unwrap();
        assert!(config.symbolic && config.opts.por && config.opts.symmetry);
        assert_eq!(config.opts.threads, 4);
        // Not a valid trace-analysis knob.
        let err = AnalyzeConfig::parse(["trace=run.jsonl", "symbolic=on"]).unwrap_err();
        assert!(
            err.to_string().contains("no space to abstract"),
            "symbolic= with trace= should explain itself, got: {err}"
        );
        let err = AnalyzeConfig::parse(["SyncSm", "symbolic=maybe"]).unwrap_err();
        assert!(err.to_string().contains("usage: session-cli analyze"));
    }

    #[test]
    fn symbolic_run_adds_a_summary_row_per_target() {
        let (out, code) = run(&["SyncMp", "symbolic=on"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("| SyncMp |"), "{out}");
        assert!(out.contains("| SyncMp (symbolic) |"), "{out}");
    }

    #[test]
    fn zero_malformed_or_trace_bound_threads_are_usage_errors() {
        for bad in ["threads=0", "threads=", "threads=two", "threads=-1"] {
            let err = AnalyzeConfig::parse(["SyncSm", bad]).unwrap_err();
            assert!(
                err.to_string().contains("usage: session-cli analyze"),
                "`{bad}` should fail with usage, got: {err}"
            );
        }
        let err = AnalyzeConfig::parse(["trace=run.jsonl", "threads=2"]).unwrap_err();
        assert!(
            err.to_string().contains("inherently serial"),
            "threads= with trace= should explain itself, got: {err}"
        );
    }

    #[test]
    fn profile_progress_and_scope_args_parse_and_validate() {
        let config = AnalyzeConfig::parse([
            "PeriodicMp",
            "n=3",
            "s=3",
            "threads=2",
            "profile=p.json",
            "progress=on",
        ])
        .unwrap();
        assert_eq!(config.n, Some(3));
        assert_eq!(config.s, Some(3));
        assert_eq!(
            config.profile.as_deref(),
            Some(std::path::Path::new("p.json"))
        );
        assert!(config.progress);
        // Defaults stay off.
        let config = AnalyzeConfig::parse(["PeriodicMp"]).unwrap();
        assert!(config.n.is_none() && config.s.is_none());
        assert!(config.profile.is_none() && !config.progress);
        assert!(AnalyzeConfig::parse(["PeriodicMp", "progress=off"]).is_ok());

        // Scoped dims and profile= need exactly one target.
        for bad in ["n=2", "s=2", "profile=p.json"] {
            for args in [vec!["--all", bad], vec!["SyncSm", "SyncMp", bad]] {
                let err = AnalyzeConfig::parse(args).unwrap_err();
                assert!(
                    err.to_string().contains("exactly one target"),
                    "`{bad}` without a single target should explain itself, got: {err}"
                );
            }
        }
        // The flight recorder profiles the explicit explorer only.
        assert!(AnalyzeConfig::parse(["SyncSm", "profile=p.json", "symbolic=on"]).is_err());
        // Not trace-analysis knobs.
        assert!(AnalyzeConfig::parse(["trace=run.jsonl", "profile=p.json"]).is_err());
        assert!(AnalyzeConfig::parse(["trace=run.jsonl", "progress=on"]).is_err());
        // Malformed values are usage errors.
        for bad in ["n=0", "n=two", "s=0", "progress=maybe"] {
            let err = AnalyzeConfig::parse(["PeriodicMp", bad]).unwrap_err();
            assert!(
                err.to_string().contains("usage: session-cli analyze"),
                "`{bad}` should fail with usage, got: {err}"
            );
        }
    }

    #[test]
    fn severity_overrides_parse_by_code_and_name() {
        let config = AnalyzeConfig::parse(["--all", "allow=SA005", "warn=stale-evidence"]).unwrap();
        assert_eq!(
            config.lints.severity(LintCode::NonTermination),
            Severity::Allow
        );
        assert_eq!(
            config.lints.severity(LintCode::StaleEvidence),
            Severity::Warn
        );
        assert_eq!(
            config.lints.severity(LintCode::SessionDeficit),
            Severity::Deny
        );
    }

    #[test]
    fn bad_arguments_are_rejected_with_usage() {
        for bad in [
            "NoSuchTarget",
            "format=xml",
            "allow=SA999",
            "frobnicate=1",
            "model=lockstep",
        ] {
            let err = AnalyzeConfig::parse([bad]).unwrap_err();
            assert!(
                err.to_string().contains("usage: session-cli analyze"),
                "`{bad}` should fail with usage, got: {err}"
            );
        }
        assert!(AnalyzeConfig::parse(Vec::<String>::new()).is_err());
        // model= is only meaningful with trace=.
        assert!(AnalyzeConfig::parse(["SyncSm", "model=sporadic"]).is_err());
    }

    #[test]
    fn list_prints_the_registry_without_exploring() {
        let (out, code) = run(&["--list"]);
        assert!(out.contains("NaiveSporadicMp"));
        assert_eq!(code, 0);
    }

    /// Sync test for the `--list` lint section: the match is exhaustive,
    /// so registering a new lint code fails compilation here until the
    /// listing (and this test) know about it.
    #[test]
    fn list_describes_every_lint_code() {
        let (out, _) = run(&["--list"]);
        for code in ALL_CODES {
            match code {
                LintCode::SessionDeficit
                | LintCode::BBoundViolation
                | LintCode::StaleEvidence
                | LintCode::InadmissibleStep
                | LintCode::NonTermination
                | LintCode::InfeasibleTiming
                | LintCode::SessionRace
                | LintCode::UnorderedSessionClose
                | LintCode::ModelMismatch
                | LintCode::DeadTimingBranch
                | LintCode::SymbolicBoundExceeded
                | LintCode::SymbolicDivergence => {}
            }
            assert!(out.contains(code.code()), "missing {}: {out}", code.code());
            assert!(
                out.contains(code.describe()),
                "missing description of {}: {out}",
                code.code()
            );
        }
    }

    #[test]
    fn analyzing_a_witness_denies_and_allow_suppresses() {
        let (out, code) = run(&["NaivePeriodicSm"]);
        assert_eq!(code, 1, "the witness must fail the run");
        assert!(out.contains("SA001"), "{out}");
        let (out, code) = run(&["NaivePeriodicSm", "allow=SA001,SA005"]);
        assert_eq!(code, 0, "allow must clear the exit status");
        assert!(out.contains("No findings."), "{out}");
    }

    #[test]
    fn clean_target_renders_markdown_summary() {
        for reduce in ["reduce=none", "reduce=all"] {
            let (out, code) = run(&["SyncSm", reduce]);
            assert_eq!(code, 0);
            assert!(
                out.contains(
                    "| target | states explored | pruned | memo hits | findings | notes |"
                ),
                "{out}"
            );
            assert!(out.contains("| SyncSm |"), "{out}");
        }
    }

    #[test]
    fn missing_trace_file_is_a_usage_error() {
        let config = AnalyzeConfig::parse(["trace=/no/such/file.jsonl"]).unwrap();
        assert!(config.execute().is_err());
    }
}
