//! The asynchronous shared-memory algorithm: one tree broadcast per session
//! (\[2\]; Table 1 row 5).

use session_smm::{JoinSemiLattice, Knowledge, SmProcess};
use session_types::{ProcessId, VarId};

/// The wave protocol: a process *commits* port step `k + 1` only after the
/// flooded [`Knowledge`] shows every port process has committed `k` (the
/// first commit is free — every process's first step belongs to the first
/// session unconditionally). After committing `s` waves it idles without a
/// final wait, giving the `(s − 1) · O(log_b n)`-round upper bound of \[2\].
///
/// Also the **sporadic** shared-memory algorithm (the sporadic constraint
/// offers nothing a shared-memory algorithm can exploit, §1) and the
/// communication arm of the semi-synchronous algorithm.
#[derive(Clone, Debug)]
pub struct AsyncSmPort {
    id: ProcessId,
    port_var: VarId,
    s: u64,
    n: usize,
    committed: u64,
    knowledge: Knowledge,
}

impl AsyncSmPort {
    /// Creates port process `id` over `port_var` for the `(s, n)`-session
    /// problem.
    pub fn new(id: ProcessId, port_var: VarId, s: u64, n: usize) -> AsyncSmPort {
        AsyncSmPort {
            id,
            port_var,
            s,
            n,
            committed: 0,
            knowledge: Knowledge::new(),
        }
    }

    /// The number of committed waves (own port steps that are guaranteed to
    /// lie in distinct sessions).
    pub fn committed(&self) -> u64 {
        self.committed
    }
}

impl SmProcess<Knowledge> for AsyncSmPort {
    fn target(&self) -> VarId {
        self.port_var
    }

    fn step(&mut self, value: &Knowledge) -> Knowledge {
        if self.is_idle() {
            let mut unchanged = Knowledge::bottom();
            unchanged.join(value);
            return unchanged;
        }
        self.knowledge.join(value);
        let ports = (0..self.n).map(ProcessId::new);
        if self.committed == 0 || self.knowledge.all_at_least(ports, self.committed) {
            self.committed += 1;
        }
        self.knowledge.announce(self.id, self.committed);
        self.knowledge.clone()
    }

    fn is_idle(&self) -> bool {
        self.committed >= self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_at(n: usize, value: u64) -> Knowledge {
        (0..n).map(|i| (ProcessId::new(i), value)).collect()
    }

    #[test]
    fn first_commit_is_free() {
        let mut p = AsyncSmPort::new(ProcessId::new(0), VarId::new(0), 3, 4);
        let out = p.step(&Knowledge::new());
        assert_eq!(p.committed(), 1);
        assert_eq!(out.get(ProcessId::new(0)), 1);
    }

    #[test]
    fn later_commits_wait_for_the_wave() {
        let mut p = AsyncSmPort::new(ProcessId::new(0), VarId::new(0), 3, 2);
        let _ = p.step(&Knowledge::new()); // commit 1
        for _ in 0..10 {
            let _ = p.step(&Knowledge::new());
        }
        assert_eq!(p.committed(), 1, "no word from p1 yet");
        let _ = p.step(&all_at(2, 1));
        assert_eq!(p.committed(), 2);
        let _ = p.step(&all_at(2, 2));
        assert_eq!(p.committed(), 3);
        assert!(p.is_idle());
    }

    #[test]
    fn no_final_wait_after_last_commit() {
        let mut p = AsyncSmPort::new(ProcessId::new(1), VarId::new(1), 2, 2);
        let _ = p.step(&Knowledge::new()); // commit 1
        assert!(!p.is_idle());
        let _ = p.step(&all_at(2, 1)); // commit 2 == s
        assert!(p.is_idle(), "idles immediately after the s-th commit");
    }

    #[test]
    fn idle_steps_do_not_touch_the_variable() {
        let mut p = AsyncSmPort::new(ProcessId::new(0), VarId::new(0), 1, 1);
        let _ = p.step(&Knowledge::new());
        assert!(p.is_idle());
        let foreign: Knowledge = [(ProcessId::new(5), 3)].into_iter().collect();
        assert_eq!(p.step(&foreign), foreign);
        assert_eq!(p.committed(), 1);
    }

    #[test]
    fn skipping_ahead_on_fresher_knowledge() {
        // Knowledge may already show everyone at a higher wave; commits
        // still advance one per own step (each commit is one port step).
        let mut p = AsyncSmPort::new(ProcessId::new(0), VarId::new(0), 3, 2);
        let fresh = all_at(2, 5);
        let _ = p.step(&fresh);
        assert_eq!(p.committed(), 1);
        let _ = p.step(&fresh);
        assert_eq!(p.committed(), 2);
        let _ = p.step(&fresh);
        assert_eq!(p.committed(), 3);
        assert!(p.is_idle());
    }
}
