//! Exhaustive small-scope model checker and lint layer for the
//! session-problem reproduction.
//!
//! For each algorithm of the paper (and for a set of naive cheating
//! witnesses), the checker enumerates the **complete reachable state
//! space** under **all admissible schedules** at a small scope — few
//! processes, few sessions, a finite menu of step gaps and message delays
//! derived from the timing parameters — and checks:
//!
//! * the session guarantee (`SA001`): every quiescent execution contains
//!   at least `s` sessions;
//! * the `b`-bound (`SA002`): no shared variable is ever accessed by more
//!   than `b` distinct processes;
//! * claim soundness (`SA003`): no process ever claims more sessions than
//!   actually happened;
//! * admissibility and model fidelity (`SA004`): counterexample traces
//!   satisfy the timing model, idle states stay idle, and replays through
//!   the real engines agree with the checker's machines;
//! * termination (`SA005`): every admissible schedule quiesces.
//!
//! Recorded executions (simulator or real-clock JSONL traces) get a
//! second, causality-level analysis in [`hb`]: vector clocks built from
//! message and shared-variable edges detect session groupings that
//! contradict happens-before (`SA007`), session boundaries not dominated
//! by all port clocks (`SA008`), and runs driven by a strictly stronger
//! timing model than claimed (`SA009`).
//!
//! The explicit engine is complemented by a **symbolic timing verifier**:
//! [`dbm`] implements difference-bound matrices over exact rational
//! durations, and [`zones`] walks a zone graph pairing the machines'
//! discrete control states with a DBM over per-event clocks — all
//! schedules with the same event order collapse into one node. It proves
//! menu entries dead under the model window (`SA010`), extracts the
//! worst-case session-close time as a symbolic expression in
//! `c1,c2,d1,d2` and compares it against the paper's Table 1 row
//! (`SA011`), and cross-checks its reachable control states against the
//! explicit explorer's (`SA012`).
//!
//! Architecture: [`machine`] mirrors the engines as cloneable state
//! machines with an enumerated branch menu (immutable components interned
//! behind `Arc`, so forking a branch is cheap); [`explore`] runs a
//! memoized depth-first search over those branches, optionally through
//! the [`por`] ample-set selector and the [`symmetry`] state
//! canonicalization, and [`parallel`] scales that search across worker
//! threads via the hash-partitioned ownership walk in [`partition`],
//! with verdicts and counters bit-identical to the serial path; [`dbm`]
//! and
//! [`zones`] form the symbolic engine; [`replay`] re-executes
//! counterexample paths (through the real `SmEngine` for shared memory)
//! and renders them as timelines; [`targets`] names the thirteen analysis
//! targets; [`hb`] analyzes recorded traces; [`diag`] defines the stable
//! lint codes and report formats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbm;
pub mod diag;
pub mod explore;
pub mod feasibility;
pub mod hb;
pub mod machine;
pub mod parallel;
pub mod partition;
pub mod por;
pub mod profile;
pub mod replay;
pub mod scope;
pub mod symmetry;
pub mod targets;
pub mod zones;

pub use diag::{Diagnostic, LintCode, LintConfig, Report, Severity, TargetSummary};
pub use explore::{ExploreOpts, ReductionStats};
pub use feasibility::{check_timing, require_feasible, TimingParams};
pub use hb::{analyze_trace_jsonl, HbAnalysis};
pub use profile::{ExploreProfile, FlightOpts, WorkerProfile};
pub use scope::Scope;
pub use targets::{
    analyze_all, analyze_all_with, analyze_scoped_target_flight, analyze_space_symbolic,
    analyze_space_symbolic_recorded, analyze_target, analyze_target_flight,
    analyze_target_recorded, analyze_target_symbolic, analyze_target_symbolic_recorded,
    analyze_target_with, periodic_mp_space_with_delays, scoped_target_space, symbolic_depth,
    target_names, target_space, TargetSpace, TARGET_NAMES,
};
pub use zones::{SymbolicAnalysis, ZoneWalk};
