//! The explorer flight recorder: structured profiles of where an
//! exploration spent its time (DESIGN.md §15).
//!
//! `BENCH_analyzer.json` showed the parallel explorer *losing* to the
//! serial one, and nothing in the codebase could say why: donation
//! churn, memo-stripe contention, idle workers and duplicated work were
//! all invisible. This module is the visibility layer. The parallel
//! explorer (and, degenerately, the serial one) fills an
//! [`ExploreProfile`] — per-worker time splits, per-stripe memo
//! hit/miss/contention counts, duplicate-expansion counts, the Phase
//! A/Phase B wall-clock break — which serializes as the stable
//! `analyzer-profile/v1` JSON document plus a Perfetto trace with one
//! track per worker.
//!
//! Profiling never changes findings: every hook is behind an `Option`
//! that is `None` unless `profile=`/`progress=` asked for it, and the
//! hooks only *read* explorer state (asserted by the invariance test in
//! `tests/full_pipeline.rs`).

use std::sync::Arc;

use session_obs::json::JsonWriter;
use session_obs::{export, Histogram, ProgressBoard, WorkerTimeline};

/// How many timeline spans / pool-depth samples each worker keeps before
/// counting overflow instead (bounds profile size on huge runs).
pub(crate) const FLIGHT_BUFFER_CAP: usize = 4096;

/// What the caller asked the flight recorder to do.
///
/// The default (`profile` off, no progress board) is the zero-cost path:
/// the explorer's hooks reduce to a branch on `None`.
#[derive(Clone, Debug, Default)]
pub struct FlightOpts {
    /// Collect an [`ExploreProfile`] for this exploration.
    pub profile: bool,
    /// Scoreboard for the live `progress=on` stderr line, polled by a
    /// monitor thread owned by the caller.
    pub progress: Option<Arc<ProgressBoard>>,
}

impl FlightOpts {
    /// Profiling on, no progress board.
    pub fn profiled() -> FlightOpts {
        FlightOpts {
            profile: true,
            progress: None,
        }
    }
}

/// Per-worker flight data, owned by exactly one worker thread during
/// Phase A and merged into the profile after the join.
#[derive(Clone, Debug)]
pub struct WorkerProfile {
    /// States this worker expanded.
    pub states: u64,
    /// Work items this worker popped from the pool.
    pub items: u64,
    /// Time spent processing items (everything but waiting on the pool).
    pub busy_ns: u64,
    /// Time blocked on an empty pool waiting for donations.
    pub idle_ns: u64,
    /// Residual expansion time: `busy - memo_probe - memo_insert -
    /// donation` (cloning machines, applying steps, firing lints).
    pub expand_ns: u64,
    /// Time in memo lookups, including stripe-lock acquisition.
    pub memo_probe_ns: u64,
    /// Time in memo merges, including stripe-lock acquisition.
    pub memo_insert_ns: u64,
    /// The stripe-lock-wait portion: time spent blocked on a stripe a
    /// peer held (contended acquisitions only).
    pub stripe_lock_wait_ns: u64,
    /// How many stripe acquisitions were contended.
    pub stripe_lock_waits: u64,
    /// Time spent donating children to the pool (pool lock included).
    pub donation_ns: u64,
    /// States this worker expanded whose memo slot was already occupied
    /// when it finished — work another worker (or an earlier
    /// shallower-budget walk) had already done.
    pub duplicate_expansions: u64,
    /// One span per work item, for the per-worker Perfetto track.
    pub timeline: WorkerTimeline,
    /// `(t_ns, depth)` samples of the frontier pool, taken at each pop.
    pub pool_depth: Vec<(u64, u64)>,
}

impl WorkerProfile {
    pub(crate) fn new() -> WorkerProfile {
        WorkerProfile {
            states: 0,
            items: 0,
            busy_ns: 0,
            idle_ns: 0,
            expand_ns: 0,
            memo_probe_ns: 0,
            memo_insert_ns: 0,
            stripe_lock_wait_ns: 0,
            stripe_lock_waits: 0,
            donation_ns: 0,
            duplicate_expansions: 0,
            timeline: WorkerTimeline::with_capacity(FLIGHT_BUFFER_CAP),
            pool_depth: Vec::new(),
        }
    }

    /// Fills the residual `expand_ns` slot once all other slots are
    /// final.
    pub(crate) fn seal(&mut self) {
        self.expand_ns = self
            .busy_ns
            .saturating_sub(self.memo_probe_ns + self.memo_insert_ns + self.donation_ns);
    }
}

/// Per-stripe memo statistics, summed over all workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StripeProfile {
    /// Probes answered by a sufficient memo entry.
    pub hits: u64,
    /// Probes that missed (entry absent or budget too small).
    pub misses: u64,
    /// Lock acquisitions (probe or merge) that had to wait for a peer.
    pub contended: u64,
}

/// A complete flight-recorder profile of one exploration, serializable
/// as the stable `analyzer-profile/v1` JSON document.
#[derive(Clone, Debug)]
pub struct ExploreProfile {
    /// Target name (empty when the caller explored raw roots).
    pub target: String,
    /// Scope: number of processes.
    pub n: usize,
    /// Scope: sessions required.
    pub s: u64,
    /// Worker threads (1 = the serial explorer).
    pub threads: usize,
    /// Depth budget of the exploration.
    pub max_depth: usize,
    /// Whether partial-order reduction was on.
    pub por: bool,
    /// Whether symmetry reduction was on.
    pub symmetry: bool,
    /// States expanded (over-counts shared states, like the report).
    pub states: u64,
    /// Distinct memo entries — the deduplicated state count.
    pub unique_states: u64,
    /// Expansions whose memo slot was already occupied at write time:
    /// duplicated work. With `threads = 1` this counts only
    /// budget-growth re-walks; the parallel surplus over that baseline
    /// is cross-worker duplication.
    pub duplicate_expansions: u64,
    /// Donation points: states whose menu was split into pool items.
    pub donations_offered: u64,
    /// Work items pushed to the pool at donation points.
    pub donations_accepted: u64,
    /// End-to-end wall clock (Phase A + Phase B), nanoseconds.
    pub wall_ns: u64,
    /// Phase A (parallel code discovery) wall clock.
    pub phase_a_ns: u64,
    /// Phase B (serial witness re-derivation) wall clock.
    pub phase_b_ns: u64,
    /// The cross-worker distribution of contended stripe-lock waits.
    pub lock_wait_hist: Histogram,
    /// One entry per worker.
    pub workers: Vec<WorkerProfile>,
    /// One entry per memo stripe (empty for the serial explorer).
    pub stripes: Vec<StripeProfile>,
}

impl ExploreProfile {
    /// Serializes the profile as the `analyzer-profile/v1` document.
    ///
    /// Field order is fixed, so the output is a deterministic function
    /// of the profile (asserted byte-for-byte by
    /// `tests/profile_export_golden.rs`).
    #[allow(clippy::cast_precision_loss)]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "analyzer-profile/v1");
        w.field_str("target", &self.target);
        w.field_u64("n", self.n as u64);
        w.field_u64("s", self.s);
        w.field_u64("threads", self.threads as u64);
        w.field_u64("max_depth", self.max_depth as u64);
        w.key("opts");
        w.begin_object();
        w.field_bool("por", self.por);
        w.field_bool("symmetry", self.symmetry);
        w.end_object();
        w.field_u64("states", self.states);
        w.field_u64("unique_states", self.unique_states);
        w.field_u64("duplicate_expansions", self.duplicate_expansions);
        w.key("donations");
        w.begin_object();
        w.field_u64("offered", self.donations_offered);
        w.field_u64("accepted", self.donations_accepted);
        w.end_object();
        w.field_u64("wall_ns", self.wall_ns);
        w.field_u64("phase_a_ns", self.phase_a_ns);
        w.field_u64("phase_b_ns", self.phase_b_ns);
        w.key("stripe_lock_wait");
        w.begin_object();
        w.field_u64("count", self.lock_wait_hist.count());
        w.field_f64("total_ns", self.lock_wait_hist.sum());
        w.field_f64("p95_ns", self.lock_wait_hist.quantile(0.95).unwrap_or(0.0));
        w.field_f64("max_ns", self.lock_wait_hist.max().unwrap_or(0.0));
        w.end_object();
        w.key("workers");
        w.begin_array();
        for (id, worker) in self.workers.iter().enumerate() {
            w.begin_object();
            w.field_u64("id", id as u64);
            w.field_u64("states", worker.states);
            w.field_u64("items", worker.items);
            w.field_u64("busy_ns", worker.busy_ns);
            w.field_f64("utilization", self.utilization_of(worker));
            w.key("time_ns");
            w.begin_object();
            w.field_u64("expand", worker.expand_ns);
            w.field_u64("memo_probe", worker.memo_probe_ns);
            w.field_u64("memo_insert", worker.memo_insert_ns);
            w.field_u64("stripe_lock_wait", worker.stripe_lock_wait_ns);
            w.field_u64("donation", worker.donation_ns);
            w.field_u64("idle", worker.idle_ns);
            w.end_object();
            w.field_u64("stripe_lock_waits", worker.stripe_lock_waits);
            w.field_u64("duplicate_expansions", worker.duplicate_expansions);
            w.key("timeline");
            w.begin_array();
            for span in worker.timeline.spans() {
                w.begin_object();
                w.field_str("name", span.name);
                w.field_u64("start_ns", span.start_ns);
                w.field_u64("end_ns", span.end_ns);
                w.field_u64("depth", span.detail);
                w.end_object();
            }
            w.end_array();
            w.field_u64("timeline_dropped", worker.timeline.dropped());
            w.key("pool_depth");
            w.begin_array();
            for &(t_ns, depth) in &worker.pool_depth {
                w.begin_array();
                w.value_u64(t_ns);
                w.value_u64(depth);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("stripes");
        w.begin_array();
        for stripe in &self.stripes {
            w.begin_object();
            w.field_u64("hits", stripe.hits);
            w.field_u64("misses", stripe.misses);
            w.field_u64("contended", stripe.contended);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Renders the per-worker timelines as a Perfetto trace (one track
    /// per worker; see [`session_obs::export::flight_perfetto_json`]).
    pub fn to_perfetto(&self) -> String {
        let title = if self.target.is_empty() {
            "analyzer".to_owned()
        } else {
            format!("analyzer: {}", self.target)
        };
        let tracks: Vec<_> = self
            .workers
            .iter()
            .enumerate()
            .map(|(id, worker)| (format!("worker {id}"), worker.timeline.spans().to_vec()))
            .collect();
        export::flight_perfetto_json(&title, &tracks)
    }

    /// One worker's busy fraction of the Phase A wall clock.
    #[allow(clippy::cast_precision_loss)]
    fn utilization_of(&self, worker: &WorkerProfile) -> f64 {
        if self.phase_a_ns == 0 {
            return 0.0;
        }
        worker.busy_ns as f64 / self.phase_a_ns as f64
    }

    /// A one-paragraph accounting summary (used by `bench_analyzer
    /// --profile` and handy in tests): total busy vs idle vs lock-wait
    /// time and the duplicated-work fraction.
    #[allow(clippy::cast_precision_loss)]
    pub fn summary(&self) -> String {
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        let idle: u64 = self.workers.iter().map(|w| w.idle_ns).sum();
        let wait: u64 = self.workers.iter().map(|w| w.stripe_lock_wait_ns).sum();
        let dup_pct = if self.states == 0 {
            0.0
        } else {
            100.0 * self.duplicate_expansions as f64 / self.states as f64
        };
        format!(
            "threads={} states={} unique={} dup={} ({dup_pct:.1}%) \
             busy_ms={:.1} idle_ms={:.1} lock_wait_ms={:.1} \
             phase_a_ms={:.1} phase_b_ms={:.1}",
            self.threads,
            self.states,
            self.unique_states,
            self.duplicate_expansions,
            busy as f64 / 1e6,
            idle as f64 / 1e6,
            wait as f64 / 1e6,
            self.phase_a_ns as f64 / 1e6,
            self.phase_b_ns as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_obs::json;
    use session_obs::TimelineSpan;

    /// A fully hand-specified profile — also the shape the golden test
    /// pins byte-for-byte.
    pub(crate) fn synthetic() -> ExploreProfile {
        let mut timeline = WorkerTimeline::with_capacity(4);
        timeline.push(TimelineSpan {
            name: "item",
            start_ns: 1000,
            end_ns: 51000,
            detail: 0,
        });
        timeline.push(TimelineSpan {
            name: "item",
            start_ns: 60000,
            end_ns: 80000,
            detail: 5,
        });
        let mut lock_wait_hist = Histogram::new();
        lock_wait_hist.record(200.0);
        lock_wait_hist.record(800.0);
        let worker0 = WorkerProfile {
            states: 900,
            items: 2,
            busy_ns: 70000,
            idle_ns: 10000,
            expand_ns: 60000,
            memo_probe_ns: 6000,
            memo_insert_ns: 3000,
            stripe_lock_wait_ns: 1000,
            stripe_lock_waits: 2,
            donation_ns: 1000,
            duplicate_expansions: 40,
            timeline,
            pool_depth: vec![(1000, 3), (60000, 1)],
        };
        let worker1 = WorkerProfile {
            states: 100,
            items: 1,
            busy_ns: 20000,
            idle_ns: 60000,
            expand_ns: 20000,
            memo_probe_ns: 0,
            memo_insert_ns: 0,
            stripe_lock_wait_ns: 0,
            stripe_lock_waits: 0,
            donation_ns: 0,
            duplicate_expansions: 10,
            timeline: WorkerTimeline::with_capacity(4),
            pool_depth: vec![(2000, 2)],
        };
        let mut stripes = vec![StripeProfile::default(); 4];
        stripes[1] = StripeProfile {
            hits: 50,
            misses: 950,
            contended: 2,
        };
        ExploreProfile {
            target: "PeriodicMp".to_owned(),
            n: 3,
            s: 3,
            threads: 2,
            max_depth: 27,
            por: false,
            symmetry: false,
            states: 1000,
            unique_states: 950,
            duplicate_expansions: 50,
            donations_offered: 3,
            donations_accepted: 4,
            wall_ns: 100000,
            phase_a_ns: 80000,
            phase_b_ns: 20000,
            lock_wait_hist,
            workers: vec![worker0, worker1],
            stripes,
        }
    }

    #[test]
    fn profile_json_is_valid_and_carries_the_schema() {
        let doc = synthetic().to_json();
        json::validate(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("analyzer-profile/v1")
        );
        assert_eq!(v.get("threads").and_then(json::JsonValue::as_u64), Some(2));
        let workers = v
            .get("workers")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(
            workers[0]
                .get("time_ns")
                .and_then(|t| t.get("stripe_lock_wait"))
                .and_then(json::JsonValue::as_u64),
            Some(1000)
        );
        let stripes = v
            .get("stripes")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        assert_eq!(stripes.len(), 4);
        assert_eq!(
            stripes[1]
                .get("contended")
                .and_then(json::JsonValue::as_u64),
            Some(2)
        );
    }

    #[test]
    fn perfetto_export_has_one_track_per_worker() {
        let out = synthetic().to_perfetto();
        json::validate(&out).unwrap();
        assert!(out.contains("\"name\":\"worker 0\""), "{out}");
        assert!(out.contains("\"name\":\"worker 1\""), "{out}");
        assert!(out.contains("\"name\":\"analyzer: PeriodicMp\""), "{out}");
    }

    #[test]
    fn utilization_and_summary_account_for_the_time() {
        let profile = synthetic();
        let doc = profile.to_json();
        let v = json::parse(&doc).unwrap();
        let workers = v
            .get("workers")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        let util0 = workers[0]
            .get("utilization")
            .and_then(json::JsonValue::as_f64)
            .unwrap();
        assert!((util0 - 0.875).abs() < 1e-9, "{util0}");
        let summary = profile.summary();
        assert!(summary.contains("dup=50 (5.0%)"), "{summary}");
        assert!(summary.contains("threads=2"), "{summary}");
    }

    #[test]
    fn sealing_fills_the_residual_expand_slot() {
        let mut worker = WorkerProfile::new();
        worker.busy_ns = 100;
        worker.memo_probe_ns = 20;
        worker.memo_insert_ns = 10;
        worker.donation_ns = 5;
        worker.seal();
        assert_eq!(worker.expand_ns, 65);
        worker.busy_ns = 10;
        worker.seal();
        assert_eq!(worker.expand_ns, 0, "residual saturates at zero");
    }
}
