//! The length-prefixed wire protocol between clients and the service.
//!
//! A frame is a little-endian `u32` payload length followed by the
//! payload; the first payload byte is the frame tag. Payloads are tiny
//! ([`MAX_PAYLOAD`] bytes) by design: the protocol carries session
//! *control* (open requests, close notifications), never algorithm
//! messages — those stay inside the service, between the co-located
//! processes of one session instance. The same byte format is used on
//! TCP (frames back to back on the stream) and UDP (exactly one frame
//! per datagram, prefix included, so the two transports share encode and
//! decode paths).
//!
//! Every decode failure is classified as a [`WireError`], and the server
//! treats each one as peer misbehavior — a malformed or oversized frame
//! feeds the sender's reputation score (see [`crate::peer`]).

use std::io::{self, Read, Write};

use session_types::TimingModel;

/// Hard cap on a frame payload, tag byte included. Anything larger is a
/// protocol violation: no legitimate frame comes close, and refusing
/// early keeps a hostile length prefix from forcing an allocation.
pub const MAX_PAYLOAD: usize = 64;

/// Why the server refused an `Open` request (or, as a `Bye` code, why it
/// is dropping the connection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The target shard is at capacity; new sessions are load-shed so
    /// live ones keep their bounds. Retry later.
    Busy = 1,
    /// The request parameters are invalid (unknown model, `n` or
    /// `unit_us` outside the service's limits, infeasible spec).
    Invalid = 2,
    /// The peer exceeded its open-rate token bucket.
    RateLimited = 3,
    /// The peer never sent `Hello`, or sent the wrong auth token.
    Unauthorized = 4,
    /// The peer's address is banned.
    Banned = 5,
    /// The peer sent bytes that do not decode as a frame.
    Protocol = 6,
}

impl RejectCode {
    /// Decodes a reject code byte.
    pub fn from_u8(byte: u8) -> Option<RejectCode> {
        match byte {
            1 => Some(RejectCode::Busy),
            2 => Some(RejectCode::Invalid),
            3 => Some(RejectCode::RateLimited),
            4 => Some(RejectCode::Unauthorized),
            5 => Some(RejectCode::Banned),
            6 => Some(RejectCode::Protocol),
            _ => None,
        }
    }
}

/// The conformance verdict carried in a `Closed` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ConformanceVerdict {
    /// The session was not selected for conformance sampling.
    NotSampled = 0,
    /// The sampled session replayed through `verify_conformance` and
    /// solved the problem admissibly.
    Pass = 1,
    /// The sampled session failed verification — a service bug.
    Fail = 2,
    /// The session hit its step watchdog and was aborted before closing.
    Watchdog = 3,
}

impl ConformanceVerdict {
    /// Decodes a verdict byte.
    pub fn from_u8(byte: u8) -> Option<ConformanceVerdict> {
        match byte {
            0 => Some(ConformanceVerdict::NotSampled),
            1 => Some(ConformanceVerdict::Pass),
            2 => Some(ConformanceVerdict::Fail),
            3 => Some(ConformanceVerdict::Watchdog),
            _ => None,
        }
    }
}

/// Frames a client sends to the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientFrame {
    /// First frame on every connection: authenticate with `token`.
    Hello {
        /// The shared auth token (0 when the server runs open).
        token: u64,
    },
    /// Ask the server to run one `(s, n)`-session instance.
    Open {
        /// Client-chosen request id, echoed in `Opened` / `Reject`.
        req: u64,
        /// The timing model to realize.
        model: TimingModel,
        /// Required sessions `s`.
        s: u32,
        /// Processes `n`.
        n: u32,
        /// Wall-clock microseconds per nominal time unit.
        unit_us: u32,
        /// Seed for the instance's gap/delay sampling.
        seed: u64,
    },
    /// Liveness probe; the server echoes `nonce` in a `Pong`.
    Ping {
        /// Echoed verbatim.
        nonce: u64,
    },
}

/// Frames the server sends to a client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerFrame {
    /// `Hello` accepted; the connection may open sessions.
    HelloOk {
        /// How many more sessions the service will currently admit.
        capacity: u64,
    },
    /// An `Open` was refused.
    Reject {
        /// The request id from the `Open`.
        req: u64,
        /// Why.
        code: RejectCode,
    },
    /// An `Open` was admitted; the instance is running.
    Opened {
        /// The request id from the `Open`.
        req: u64,
        /// Server-assigned session id, echoed in `Closed`.
        session: u64,
    },
    /// A session instance finished.
    Closed {
        /// The id from `Opened`.
        session: u64,
        /// Sessions achieved (≥ `s` on success).
        sessions: u32,
        /// Nominal close time mapped to microseconds (`time × unit_us`).
        nominal_close_us: u64,
        /// Wall-clock lifetime of the instance in microseconds.
        elapsed_us: u64,
        /// Conformance spot-check verdict.
        conformance: ConformanceVerdict,
    },
    /// Reply to `Ping`.
    Pong {
        /// The nonce from the `Ping`.
        nonce: u64,
    },
    /// The server is dropping this connection (e.g. ban, shutdown).
    Bye {
        /// Why, as a [`RejectCode`].
        code: RejectCode,
    },
}

/// A decode failure — always counted against the sender's reputation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_PAYLOAD`] or is zero.
    BadLength(u32),
    /// The payload's tag byte is not a known frame tag.
    BadTag(u8),
    /// The payload is the wrong size for its tag, or a field (model,
    /// code, verdict byte) has no valid decoding.
    BadBody(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadLength(len) => write!(f, "bad frame length {len}"),
            WireError::BadTag(tag) => write!(f, "unknown frame tag {tag}"),
            WireError::BadBody(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

fn model_to_u8(model: TimingModel) -> u8 {
    match model {
        TimingModel::Synchronous => 0,
        TimingModel::Periodic => 1,
        TimingModel::SemiSynchronous => 2,
        TimingModel::Sporadic => 3,
        TimingModel::Asynchronous => 4,
    }
}

fn model_from_u8(byte: u8) -> Option<TimingModel> {
    match byte {
        0 => Some(TimingModel::Synchronous),
        1 => Some(TimingModel::Periodic),
        2 => Some(TimingModel::SemiSynchronous),
        3 => Some(TimingModel::Sporadic),
        4 => Some(TimingModel::Asynchronous),
        _ => None,
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.bytes.split_first()?;
        self.bytes = rest;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.bytes.split_first_chunk::<4>()?;
        self.bytes = rest;
        Some(u32::from_le_bytes(*head))
    }

    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.bytes.split_first_chunk::<8>()?;
        self.bytes = rest;
        Some(u64::from_le_bytes(*head))
    }

    fn done(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl ClientFrame {
    /// Encodes the frame payload (tag byte included, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match *self {
            ClientFrame::Hello { token } => {
                out.push(1);
                out.extend_from_slice(&token.to_le_bytes());
            }
            ClientFrame::Open {
                req,
                model,
                s,
                n,
                unit_us,
                seed,
            } => {
                out.push(2);
                out.extend_from_slice(&req.to_le_bytes());
                out.push(model_to_u8(model));
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
                out.extend_from_slice(&unit_us.to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
            ClientFrame::Ping { nonce } => {
                out.push(3);
                out.extend_from_slice(&nonce.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a frame payload (tag byte included).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformation found.
    pub fn decode(payload: &[u8]) -> Result<ClientFrame, WireError> {
        let mut c = Cursor { bytes: payload };
        let tag = c.u8().ok_or(WireError::BadBody("empty payload"))?;
        let frame = match tag {
            1 => ClientFrame::Hello {
                token: c.u64().ok_or(WireError::BadBody("hello token"))?,
            },
            2 => ClientFrame::Open {
                req: c.u64().ok_or(WireError::BadBody("open req"))?,
                model: model_from_u8(c.u8().ok_or(WireError::BadBody("open model"))?)
                    .ok_or(WireError::BadBody("unknown model"))?,
                s: c.u32().ok_or(WireError::BadBody("open s"))?,
                n: c.u32().ok_or(WireError::BadBody("open n"))?,
                unit_us: c.u32().ok_or(WireError::BadBody("open unit_us"))?,
                seed: c.u64().ok_or(WireError::BadBody("open seed"))?,
            },
            3 => ClientFrame::Ping {
                nonce: c.u64().ok_or(WireError::BadBody("ping nonce"))?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        if c.done() {
            Ok(frame)
        } else {
            Err(WireError::BadBody("trailing bytes"))
        }
    }
}

impl ServerFrame {
    /// Encodes the frame payload (tag byte included, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match *self {
            ServerFrame::HelloOk { capacity } => {
                out.push(128);
                out.extend_from_slice(&capacity.to_le_bytes());
            }
            ServerFrame::Reject { req, code } => {
                out.push(129);
                out.extend_from_slice(&req.to_le_bytes());
                out.push(code as u8);
            }
            ServerFrame::Opened { req, session } => {
                out.push(130);
                out.extend_from_slice(&req.to_le_bytes());
                out.extend_from_slice(&session.to_le_bytes());
            }
            ServerFrame::Closed {
                session,
                sessions,
                nominal_close_us,
                elapsed_us,
                conformance,
            } => {
                out.push(131);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&sessions.to_le_bytes());
                out.extend_from_slice(&nominal_close_us.to_le_bytes());
                out.extend_from_slice(&elapsed_us.to_le_bytes());
                out.push(conformance as u8);
            }
            ServerFrame::Pong { nonce } => {
                out.push(132);
                out.extend_from_slice(&nonce.to_le_bytes());
            }
            ServerFrame::Bye { code } => {
                out.push(133);
                out.push(code as u8);
            }
        }
        out
    }

    /// Decodes a frame payload (tag byte included).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformation found.
    pub fn decode(payload: &[u8]) -> Result<ServerFrame, WireError> {
        let mut c = Cursor { bytes: payload };
        let tag = c.u8().ok_or(WireError::BadBody("empty payload"))?;
        let frame = match tag {
            128 => ServerFrame::HelloOk {
                capacity: c.u64().ok_or(WireError::BadBody("hello-ok capacity"))?,
            },
            129 => ServerFrame::Reject {
                req: c.u64().ok_or(WireError::BadBody("reject req"))?,
                code: RejectCode::from_u8(c.u8().ok_or(WireError::BadBody("reject code"))?)
                    .ok_or(WireError::BadBody("unknown reject code"))?,
            },
            130 => ServerFrame::Opened {
                req: c.u64().ok_or(WireError::BadBody("opened req"))?,
                session: c.u64().ok_or(WireError::BadBody("opened session"))?,
            },
            131 => ServerFrame::Closed {
                session: c.u64().ok_or(WireError::BadBody("closed session"))?,
                sessions: c.u32().ok_or(WireError::BadBody("closed sessions"))?,
                nominal_close_us: c.u64().ok_or(WireError::BadBody("closed nominal"))?,
                elapsed_us: c.u64().ok_or(WireError::BadBody("closed elapsed"))?,
                conformance: ConformanceVerdict::from_u8(
                    c.u8().ok_or(WireError::BadBody("closed verdict"))?,
                )
                .ok_or(WireError::BadBody("unknown verdict"))?,
            },
            132 => ServerFrame::Pong {
                nonce: c.u64().ok_or(WireError::BadBody("pong nonce"))?,
            },
            133 => ServerFrame::Bye {
                code: RejectCode::from_u8(c.u8().ok_or(WireError::BadBody("bye code"))?)
                    .ok_or(WireError::BadBody("unknown bye code"))?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        if c.done() {
            Ok(frame)
        } else {
            Err(WireError::BadBody("trailing bytes"))
        }
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — server and client only
/// encode frames well under the cap, so an oversized payload is a bug.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_PAYLOAD, "oversized frame payload");
    let len = u32::try_from(payload.len()).expect("payload fits in u32"); // wslint: allow(ws004): the assert above caps payloads at MAX_PAYLOAD
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame payload from a stream.
///
/// # Errors
///
/// Returns `Ok(Err(WireError))` for a hostile length prefix (caller
/// counts it as misbehavior and drops the connection), and `Err` for
/// transport-level I/O errors including clean EOF
/// (`UnexpectedEof` between frames).
pub fn read_frame(r: &mut impl Read) -> io::Result<Result<Vec<u8>, WireError>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len as usize > MAX_PAYLOAD {
        return Ok(Err(WireError::BadLength(len)));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Ok(payload))
}

/// Encodes a full datagram (length prefix + payload) for the UDP path,
/// so both transports put identical bytes on the wire.
pub fn datagram(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "oversized frame payload");
    let len = u32::try_from(payload.len()).expect("payload fits in u32"); // wslint: allow(ws004): the assert above caps payloads at MAX_PAYLOAD
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits a received datagram into its frame payload.
///
/// # Errors
///
/// Returns a [`WireError`] if the prefix disagrees with the datagram
/// length or exceeds [`MAX_PAYLOAD`].
pub fn undatagram(bytes: &[u8]) -> Result<&[u8], WireError> {
    let (head, payload) = bytes
        .split_first_chunk::<4>()
        .ok_or(WireError::BadBody("short datagram"))?;
    let len = u32::from_le_bytes(*head);
    if len == 0 || len as usize > MAX_PAYLOAD {
        return Err(WireError::BadLength(len));
    }
    if payload.len() != len as usize {
        return Err(WireError::BadBody("datagram length mismatch"));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_frames_roundtrip() {
        let frames = [
            ClientFrame::Hello { token: 0xDEAD },
            ClientFrame::Open {
                req: 7,
                model: TimingModel::Periodic,
                s: 2,
                n: 3,
                unit_us: 500,
                seed: 42,
            },
            ClientFrame::Ping { nonce: 99 },
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert!(bytes.len() <= MAX_PAYLOAD);
            assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn server_frames_roundtrip() {
        let frames = [
            ServerFrame::HelloOk { capacity: 100_000 },
            ServerFrame::Reject {
                req: 7,
                code: RejectCode::Busy,
            },
            ServerFrame::Opened { req: 7, session: 1 },
            ServerFrame::Closed {
                session: 1,
                sessions: 2,
                nominal_close_us: 12_000,
                elapsed_us: 12_345,
                conformance: ConformanceVerdict::Pass,
            },
            ServerFrame::Pong { nonce: 99 },
            ServerFrame::Bye {
                code: RejectCode::Banned,
            },
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert!(bytes.len() <= MAX_PAYLOAD);
            assert_eq!(ServerFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert_eq!(
            ClientFrame::decode(&[]).unwrap_err(),
            WireError::BadBody("empty payload")
        );
        assert_eq!(
            ClientFrame::decode(&[200]).unwrap_err(),
            WireError::BadTag(200)
        );
        assert!(matches!(
            ClientFrame::decode(&[2, 1, 2, 3]).unwrap_err(),
            WireError::BadBody(_)
        ));
        // Valid frame with trailing junk is still a violation.
        let mut bytes = ClientFrame::Ping { nonce: 1 }.encode();
        bytes.push(0);
        assert_eq!(
            ClientFrame::decode(&bytes).unwrap_err(),
            WireError::BadBody("trailing bytes")
        );
        // Unknown model byte.
        let mut open = ClientFrame::Open {
            req: 1,
            model: TimingModel::Synchronous,
            s: 1,
            n: 1,
            unit_us: 1,
            seed: 1,
        }
        .encode();
        open[9] = 77;
        assert_eq!(
            ClientFrame::decode(&open).unwrap_err(),
            WireError::BadBody("unknown model")
        );
    }

    #[test]
    fn stream_frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        let a = ClientFrame::Hello { token: 1 }.encode();
        let b = ClientFrame::Ping { nonce: 2 }.encode();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b);
        assert!(read_frame(&mut r).is_err()); // clean EOF
    }

    #[test]
    fn hostile_length_prefix_is_a_wire_error_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        let mut r = &bytes[..];
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap_err(),
            WireError::BadLength(u32::MAX)
        );
    }

    #[test]
    fn datagrams_roundtrip_and_validate() {
        let payload = ServerFrame::Pong { nonce: 5 }.encode();
        let gram = datagram(&payload);
        assert_eq!(undatagram(&gram).unwrap(), &payload[..]);
        assert!(undatagram(&gram[..3]).is_err());
        let mut wrong = gram.clone();
        wrong.push(9);
        assert_eq!(
            undatagram(&wrong).unwrap_err(),
            WireError::BadBody("datagram length mismatch")
        );
    }
}
