#!/usr/bin/env bash
# The workspace's static-analysis gate, run by CI and locally before
# merging:
#
#   1. rustfmt          -- formatting is canonical
#   2. clippy           -- the workspace lint policy, warnings are errors
#   3. lint-code registry -- every LintCode variant must carry a stable
#      SAxxx code-string mapping and a paper-section (§) reference in its
#      doc comment
#   4. analyzer (release tests) -- including the #[ignore]d large
#      explorations and reduction differentials that are too slow under
#      the debug profile
#   5. session-cli analyze -- the ten paper algorithms must explore clean
#      (with and without the reduction layers), and the three naive
#      witnesses must be flagged with their exact codes and make the run
#      exit non-zero
#
# Usage: scripts/static-analysis.sh
#
# `set -euo pipefail` + the ERR trap make every failure loud: the script
# stops at the first failing step and names it, instead of continuing and
# reporting a stale "OK".
set -Eeuo pipefail
cd "$(dirname "$0")/.."

current_step="(startup)"
trap 'echo "static-analysis: FAILED during: $current_step" >&2' ERR

current_step="rustfmt"
echo "== rustfmt =="
cargo fmt --all -- --check

current_step="clippy"
echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

current_step="lint-code registry gate"
echo "== lint codes: every variant mapped and paper-referenced =="
diag=crates/analyzer/src/diag.rs
variants=$(awk '/^pub enum LintCode \{/{f=1;next} f&&/^\}/{f=0} f&&/^    [A-Z][A-Za-z0-9]*,$/{gsub(/[ ,]/,"");print}' "$diag")
[ -n "$variants" ] || { echo "ERROR: found no LintCode variants in $diag" >&2; exit 1; }
for v in $variants; do
    if ! grep -q "LintCode::$v => \"SA[0-9][0-9][0-9]\"" "$diag"; then
        echo "ERROR: LintCode::$v has no stable SAxxx code-string mapping in code()" >&2
        exit 1
    fi
    if ! awk -v v="$v" '
        /^    \/\/\// { doc = doc $0; next }
        /^    [A-Z][A-Za-z0-9]*,$/ {
            name = $1; gsub(/,/, "", name)
            if (name == v) { found = 1; if (doc ~ /§/) ok = 1 }
            doc = ""
            next
        }
        { doc = "" }
        END { exit (found && ok) ? 0 : 1 }
    ' "$diag"; then
        echo "ERROR: LintCode::$v lacks a paper-section (§) reference in its doc comment" >&2
        exit 1
    fi
done
echo "lint codes: $(echo "$variants" | wc -l) variants mapped and referenced"

current_step="analyzer release tests"
echo "== analyzer test suite (release, including large explorations) =="
cargo test -p session-analyzer --release -- --include-ignored

current_step="building session-cli"
echo "== building session-cli =="
cargo build -q --release --bin session-cli

current_step="analyze (paper algorithms must be clean)"
echo "== analyze: the ten paper algorithms must be clean =="
./target/release/session-cli analyze \
    SyncSm PeriodicSm SemiSyncSm SporadicSm AsyncSm \
    SyncMp PeriodicMp SemiSyncMp SporadicMp AsyncMp \
    | tee /tmp/analyze-clean.md
grep -q "No findings." /tmp/analyze-clean.md

current_step="analyze reduce=all (same verdict, fewer states)"
echo "== analyze reduce=all: the reductions must agree =="
./target/release/session-cli analyze \
    SyncSm PeriodicSm SemiSyncSm SporadicSm AsyncSm \
    SyncMp PeriodicMp SemiSyncMp SporadicMp AsyncMp \
    reduce=all \
    | tee /tmp/analyze-reduced.md
grep -q "No findings." /tmp/analyze-reduced.md

current_step="analyze --all (witnesses must be flagged)"
echo "== analyze --all: the witnesses must be flagged and fail the run =="
# The full run must exit 1 (deny findings present) -- invert the check.
if ./target/release/session-cli analyze --all > /tmp/analyze-all.md; then
    echo "ERROR: analyze --all exited 0, the naive witnesses were not flagged" >&2
    exit 1
fi
grep -q "SA001 session-deficit | deny | NaivePeriodicSm" /tmp/analyze-all.md
grep -q "SA001 session-deficit | deny | NaiveSemiSyncSm" /tmp/analyze-all.md
grep -q "SA003 stale-evidence | deny | NaiveSporadicMp" /tmp/analyze-all.md

echo "static analysis: OK"
