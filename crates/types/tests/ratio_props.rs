//! Property-based tests for the exact rational arithmetic underpinning
//! simulated time. If `Ratio` is wrong, every admissibility check in the
//! workspace is wrong, so we check the field axioms directly.

use proptest::prelude::*;
use session_types::{Dur, Ratio, Time};

/// A generator for rationals with numerators and denominators small enough
/// that products of several of them never overflow `i128`.
fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-1_000_000i128..=1_000_000, 1i128..=1_000).prop_map(|(n, d)| Ratio::new(n, d))
}

fn nonzero_ratio() -> impl Strategy<Value = Ratio> {
    small_ratio().prop_filter("nonzero", |r| !r.is_zero())
}

proptest! {
    #[test]
    fn addition_commutes(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associates(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_commutes(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_associates(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in small_ratio()) {
        prop_assert_eq!(a + (-a), Ratio::ZERO);
        prop_assert_eq!(a - a, Ratio::ZERO);
    }

    #[test]
    fn multiplicative_inverse(a in nonzero_ratio()) {
        prop_assert_eq!(a * a.recip(), Ratio::ONE);
        prop_assert_eq!(a / a, Ratio::ONE);
    }

    #[test]
    fn identities(a in small_ratio()) {
        prop_assert_eq!(a + Ratio::ZERO, a);
        prop_assert_eq!(a * Ratio::ONE, a);
        prop_assert_eq!(a * Ratio::ZERO, Ratio::ZERO);
    }

    #[test]
    fn normalization_is_canonical(a in small_ratio()) {
        // Re-creating from the exposed numerator/denominator is the identity.
        prop_assert_eq!(Ratio::new(a.numer(), a.denom()), a);
        // Denominator is always positive and the fraction is in lowest terms.
        prop_assert!(a.denom() > 0);
    }

    #[test]
    fn order_is_total_and_compatible(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        // Exactly one of <, ==, > holds.
        let lt = a < b;
        let eq = a == b;
        let gt = a > b;
        prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
        // Order is translation invariant.
        prop_assert_eq!(a < b, a + c < b + c);
    }

    #[test]
    fn floor_ceil_bracket_value(a in small_ratio()) {
        let f = Ratio::from_int(a.floor());
        let c = Ratio::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(a - f < Ratio::ONE);
        prop_assert!(c - a < Ratio::ONE);
        if a.is_integer() {
            prop_assert_eq!(f, c);
        } else {
            prop_assert_eq!(c - f, Ratio::ONE);
        }
    }

    #[test]
    fn time_dur_roundtrip(a in small_ratio(), b in small_ratio()) {
        let t = Time::from_ratio(a);
        let d = Dur::from_ratio(b);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    #[test]
    fn dur_div_floor_matches_ratio_floor(a in 0i128..=100_000, b in 1i128..=1_000) {
        let q = Dur::from_int(a).div_floor(Dur::from_int(b));
        prop_assert_eq!(q, a.div_euclid(b));
    }
}
