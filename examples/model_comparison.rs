//! The hierarchy of timing models, measured: run the same `(s, n)` instance
//! under all five timing models in both substrates — a miniature of the
//! paper's Table 1.
//!
//! ```text
//! cargo run --example model_comparison
//! ```

use session_problem::core::report::{run_mp, run_sm, MpConfig, SmConfig};
use session_problem::sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_problem::smm::TreeSpec;
use session_problem::types::{Dur, Error, KnownBounds, SessionSpec, TimingModel};

fn main() -> Result<(), Error> {
    let spec = SessionSpec::new(4, 8, 2)?;
    let c1 = Dur::from_int(1);
    let c2 = Dur::from_int(4);
    let d2 = Dur::from_int(12);
    let tree = TreeSpec::build(spec.n(), spec.b());
    let sm_procs = spec.n() + tree.num_relays();

    println!("{spec}; every process at speed c2 = {c2}, delays = {d2}\n");
    println!(
        "{:<18} {:>14} {:>10} {:>14} {:>10}",
        "model", "SM time", "(rounds)", "MP time", "(rounds)"
    );

    for model in TimingModel::ALL {
        let bounds = match model {
            TimingModel::Synchronous => KnownBounds::synchronous(c2, d2)?,
            TimingModel::Periodic => KnownBounds::periodic(d2)?,
            TimingModel::SemiSynchronous => KnownBounds::semi_synchronous(c1, c2, d2)?,
            TimingModel::Sporadic => KnownBounds::sporadic(c1, Dur::ZERO, d2)?,
            TimingModel::Asynchronous => KnownBounds::asynchronous(),
        };
        let mut sm_sched = FixedPeriods::uniform(sm_procs, c2)?;
        let sm = run_sm(
            SmConfig {
                model,
                spec,
                bounds,
            },
            &mut sm_sched,
            RunLimits::default(),
        )?;
        assert!(sm.solves(&spec), "{model} SM failed");
        let mut mp_sched = FixedPeriods::uniform(spec.n(), c2)?;
        let mut delays = ConstantDelay::new(d2)?;
        let mp = run_mp(
            MpConfig {
                model,
                spec,
                bounds,
            },
            &mut mp_sched,
            &mut delays,
            RunLimits::default(),
        )?;
        assert!(mp.solves(&spec), "{model} MP failed");
        println!(
            "{:<18} {:>14} {:>10} {:>14} {:>10}",
            model.to_string(),
            sm.running_time.expect("terminated").to_string(),
            sm.rounds,
            mp.running_time.expect("terminated").to_string(),
            mp.rounds,
        );
    }

    println!(
        "\nReading the column top to bottom reproduces the paper's hierarchy:\n\
         the less a model promises about time, the more communication (and\n\
         simulated time) the session problem costs."
    );
    Ok(())
}
