//! The `session-cli` command line: run any (model × substrate × schedule ×
//! delay) configuration from the shell and print the verified report.
//!
//! Invocation grammar (every option is `key=value`; see
//! [`CliConfig::USAGE`]):
//!
//! ```text
//! session-cli model=periodic comm=mp s=5 n=4 d2=8 \
//!             schedule=periods:2,3,5,7 delay=const:8 timeline=true
//! ```

use std::fmt::Write as _;

use session_core::analysis::analyze;
use session_core::report::{run_mp_recorded, run_sm_recorded, MpConfig, RunReport, SmConfig};
use session_core::system::port_of;
use session_core::verify::check_admissible;
use session_obs::{NullRecorder, Recorder};
use session_sim::{
    render_timeline, ConstantDelay, DelayPolicy, FixedPeriods, HopDelay, JitterSchedule, RunLimits,
    SporadicBursts, StepSchedule, UniformDelay,
};
use session_smm::TreeSpec;
use session_types::{CommModel, Dur, KnownBounds, Result, SessionSpec, TimingModel};

use crate::kv::{parse_timing_model, KvArgs};

/// Which schedule family to drive the run with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleSpec {
    /// All processes at one period: `schedule=uniform:PERIOD`.
    Uniform(i128),
    /// Explicit periods, cycled if fewer than processes:
    /// `schedule=periods:2,3,5`.
    Periods(Vec<i128>),
    /// Random gaps in `[c1, c2]`: `schedule=jitter`.
    Jitter,
    /// Gaps `>= c1` with bursts: `schedule=bursts`.
    Bursts,
}

/// Which delay family (message passing only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelaySpec {
    /// Constant delay: `delay=const:D`.
    Constant(i128),
    /// Uniform in `[d1, d2]`: `delay=uniform`.
    Uniform,
    /// Ring topology at a per-hop latency: `delay=ring:PER_HOP`.
    Ring(i128),
    /// Line topology: `delay=line:PER_HOP`.
    Line(i128),
    /// Star topology: `delay=star:PER_HOP`.
    Star(i128),
}

/// A fully parsed command line.
#[derive(Clone, Debug)]
pub struct CliConfig {
    /// Timing model.
    pub model: TimingModel,
    /// Communication substrate.
    pub comm: CommModel,
    /// Problem instance.
    pub spec: SessionSpec,
    /// Timing constants (where the model needs them).
    pub c1: i128,
    /// Upper step bound.
    pub c2: i128,
    /// Lower delay bound.
    pub d1: i128,
    /// Upper delay bound.
    pub d2: i128,
    /// Schedule family.
    pub schedule: ScheduleSpec,
    /// Delay family.
    pub delay: DelaySpec,
    /// RNG seed for randomized schedules/delays.
    pub seed: u64,
    /// Whether to print the trace timeline.
    pub timeline: bool,
    /// Step budget.
    pub max_steps: u64,
}

impl CliConfig {
    /// The usage string printed on parse errors.
    pub const USAGE: &'static str = "\
usage: session-cli [key=value ...]
  model=sync|periodic|semisync|sporadic|async   (default periodic)
  comm=sm|mp                                    (default mp)
  s=N n=N b=N                                   (default 3, 4, 2)
  c1=X c2=X d1=X d2=X                           (defaults 1, 4, 0, 8)
  schedule=uniform:P | periods:a,b,c | jitter | bursts   (default uniform:c2)
  delay=const:D | uniform | ring:H | line:H | star:H     (default const:d2)
  seed=N                                        (default 42)
  timeline=true|false                           (default false)
  max-steps=N                                   (default 1000000)
subcommands (own usage via `session-cli SUBCOMMAND --help`):
  analyze   exhaustive small-scope model checking over named targets
  trace     run one configuration, export Perfetto JSON / JSONL traces
  stats     run one configuration, print per-process and engine counters
  run-real  run one MP configuration on real clocks (one OS thread per
            process) and verify simulator conformance
  serve     run the sharded session service (TCP/UDP wire protocol,
            conformance-sampled multiplexed sessions)";

    /// Parses `key=value` arguments.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] (carrying a usage hint) on any
    /// unknown key, malformed value, or inconsistent combination.
    pub fn parse<I, S>(args: I) -> Result<CliConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut model = TimingModel::Periodic;
        let mut comm = CommModel::MessagePassing;
        let (mut s, mut n, mut b) = (3u64, 4usize, 2usize);
        let (mut c1, mut c2, mut d1, mut d2) = (1i128, 4i128, 0i128, 8i128);
        let mut schedule = None;
        let mut delay = None;
        let mut seed = 42u64;
        let mut timeline = false;
        let mut max_steps = 1_000_000u64;

        let mut kv = KvArgs::new(CliConfig::USAGE);
        for arg in args {
            let (key, value) = kv.pair(arg.as_ref())?;
            match key {
                "model" => {
                    model = parse_timing_model(value)
                        .ok_or_else(|| kv.error(format_args!("unknown model `{value}`")))?;
                }
                "comm" => {
                    comm = match value {
                        "sm" => CommModel::SharedMemory,
                        "mp" => CommModel::MessagePassing,
                        other => return Err(kv.error(format_args!("unknown comm `{other}`"))),
                    }
                }
                "s" => s = kv.value(key, value, "an integer")?,
                "n" => n = kv.value(key, value, "an integer")?,
                "b" => b = kv.value(key, value, "an integer")?,
                "c1" => c1 = kv.value(key, value, "an integer")?,
                "c2" => c2 = kv.value(key, value, "an integer")?,
                "d1" => d1 = kv.value(key, value, "an integer")?,
                "d2" => d2 = kv.value(key, value, "an integer")?,
                "seed" => seed = kv.value(key, value, "an integer")?,
                "timeline" => timeline = kv.value(key, value, "true or false")?,
                "max-steps" => max_steps = kv.value(key, value, "an integer")?,
                "schedule" => {
                    schedule = Some(match value.split_once(':') {
                        Some(("uniform", p)) => ScheduleSpec::Uniform(
                            p.parse()
                                .map_err(|_| kv.error("uniform period must be an integer"))?,
                        ),
                        Some(("periods", list)) => {
                            let periods: std::result::Result<Vec<i128>, _> =
                                list.split(',').map(str::parse).collect();
                            ScheduleSpec::Periods(
                                periods.map_err(|_| kv.error("periods must be integers"))?,
                            )
                        }
                        None if value == "jitter" => ScheduleSpec::Jitter,
                        None if value == "bursts" => ScheduleSpec::Bursts,
                        _ => return Err(kv.error(format_args!("unknown schedule `{value}`"))),
                    });
                }
                "delay" => {
                    delay = Some(match value.split_once(':') {
                        Some(("const", x)) => DelaySpec::Constant(
                            x.parse()
                                .map_err(|_| kv.error("const delay must be an integer"))?,
                        ),
                        Some(("ring", h)) => DelaySpec::Ring(
                            h.parse()
                                .map_err(|_| kv.error("per-hop must be an integer"))?,
                        ),
                        Some(("line", h)) => DelaySpec::Line(
                            h.parse()
                                .map_err(|_| kv.error("per-hop must be an integer"))?,
                        ),
                        Some(("star", h)) => DelaySpec::Star(
                            h.parse()
                                .map_err(|_| kv.error("per-hop must be an integer"))?,
                        ),
                        None if value == "uniform" => DelaySpec::Uniform,
                        _ => return Err(kv.error(format_args!("unknown delay `{value}`"))),
                    });
                }
                other => return Err(kv.error(format_args!("unknown option `{other}`"))),
            }
        }

        Ok(CliConfig {
            model,
            comm,
            spec: SessionSpec::new(s, n, b)?,
            c1,
            c2,
            d1,
            d2,
            schedule: schedule.unwrap_or(ScheduleSpec::Uniform(c2)),
            delay: delay.unwrap_or(DelaySpec::Constant(d2)),
            seed,
            timeline,
            max_steps,
        })
    }

    fn bounds(&self) -> Result<KnownBounds> {
        let d = Dur::from_int;
        Ok(match self.model {
            TimingModel::Synchronous => KnownBounds::synchronous(d(self.c2), d(self.d2))?,
            TimingModel::Periodic => KnownBounds::periodic(d(self.d2))?,
            TimingModel::SemiSynchronous => {
                KnownBounds::semi_synchronous(d(self.c1), d(self.c2), d(self.d2))?
            }
            TimingModel::Sporadic => KnownBounds::sporadic(d(self.c1), d(self.d1), d(self.d2))?,
            TimingModel::Asynchronous => KnownBounds::asynchronous(),
        })
    }

    fn build_schedule(&self, num_processes: usize) -> Result<Box<dyn StepSchedule>> {
        let d = Dur::from_int;
        Ok(match &self.schedule {
            ScheduleSpec::Uniform(p) => Box::new(FixedPeriods::uniform(num_processes, d(*p))?),
            ScheduleSpec::Periods(list) => {
                let periods: Vec<Dur> = (0..num_processes)
                    .map(|i| d(list[i % list.len()]))
                    .collect();
                Box::new(FixedPeriods::new(periods)?)
            }
            ScheduleSpec::Jitter => {
                Box::new(JitterSchedule::new(d(self.c1), d(self.c2), self.seed)?)
            }
            ScheduleSpec::Bursts => Box::new(SporadicBursts::new(d(self.c1), 10, 25, self.seed)?),
        })
    }

    fn build_delay(&self) -> Result<Box<dyn DelayPolicy>> {
        let d = Dur::from_int;
        let n = self.spec.n();
        Ok(match &self.delay {
            DelaySpec::Constant(x) => Box::new(ConstantDelay::new(d(*x))?),
            DelaySpec::Uniform => Box::new(UniformDelay::new(d(self.d1), d(self.d2), self.seed)?),
            DelaySpec::Ring(h) => Box::new(HopDelay::ring(n, d(*h))?),
            DelaySpec::Line(h) => Box::new(HopDelay::line(n, d(*h))?),
            DelaySpec::Star(h) => Box::new(HopDelay::star(n, d(*h))?),
        })
    }

    /// Runs the configuration, streaming instrumentation to `recorder`,
    /// and returns the verified report together with the timing bounds it
    /// ran under. This is the shared engine behind [`CliConfig::execute`]
    /// and the `trace` / `stats` subcommands.
    ///
    /// # Errors
    ///
    /// Propagates parameter and engine errors.
    pub fn run_recorded(&self, recorder: &mut dyn Recorder) -> Result<(RunReport, KnownBounds)> {
        let bounds = self.bounds()?;
        let limits = RunLimits::default().with_max_steps(self.max_steps);
        let report: RunReport = match self.comm {
            CommModel::SharedMemory => {
                let tree = TreeSpec::build(self.spec.n(), self.spec.b());
                let mut schedule = self.build_schedule(self.spec.n() + tree.num_relays())?;
                run_sm_recorded(
                    SmConfig {
                        model: self.model,
                        spec: self.spec,
                        bounds,
                    },
                    schedule.as_mut(),
                    limits,
                    recorder,
                )?
            }
            CommModel::MessagePassing => {
                let mut schedule = self.build_schedule(self.spec.n())?;
                let mut delays = self.build_delay()?;
                run_mp_recorded(
                    MpConfig {
                        model: self.model,
                        spec: self.spec,
                        bounds,
                    },
                    schedule.as_mut(),
                    delays.as_mut(),
                    limits,
                    recorder,
                )?
            }
        };
        Ok((report, bounds))
    }

    /// The port realized by each process of this configuration, by process
    /// index: in message passing, process `i < n` realizes port `i`; in
    /// shared memory port steps are tagged in the trace itself, so the map
    /// is empty.
    pub fn port_labels(&self, num_processes: usize) -> Vec<Option<session_types::PortId>> {
        match self.comm {
            CommModel::SharedMemory => Vec::new(),
            CommModel::MessagePassing => {
                let map = port_of(&self.spec);
                (0..num_processes)
                    .map(|i| map(session_types::ProcessId::new(i)))
                    .collect()
            }
        }
    }

    /// Runs the configuration and renders the report.
    ///
    /// # Errors
    ///
    /// Propagates parameter and engine errors.
    pub fn execute(&self) -> Result<String> {
        let (report, bounds) = self.run_recorded(&mut NullRecorder)?;

        let mut out = String::new();
        let _ = writeln!(out, "{} / {} — {}", self.model, self.comm, self.spec);
        let admissible = check_admissible(&report.trace, &bounds).is_ok();
        let _ = writeln!(
            out,
            "terminated: {}   sessions: {}/{}   rounds: {}   admissible: {admissible}",
            report.terminated,
            report.sessions,
            self.spec.s(),
            report.rounds
        );
        let _ = writeln!(
            out,
            "running time: {}   steps: {}   γ: {}",
            report
                .running_time
                .map_or_else(|| "(did not terminate)".into(), |t| t.to_string()),
            report.steps,
            report.gamma
        );
        let analysis = analyze(&report.trace, self.spec.n(), port_of(&self.spec));
        let _ = writeln!(
            out,
            "messages: {} sent, {} delivered",
            analysis.messages_sent, analysis.messages_delivered
        );
        if self.timeline {
            let _ = writeln!(out, "\n{}", render_timeline(&report.trace, 60));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_parse() {
        let config = CliConfig::parse(Vec::<String>::new()).unwrap();
        assert_eq!(config.model, TimingModel::Periodic);
        assert_eq!(config.comm, CommModel::MessagePassing);
        assert_eq!(config.spec.s(), 3);
        assert_eq!(config.schedule, ScheduleSpec::Uniform(4));
        assert_eq!(config.delay, DelaySpec::Constant(8));
    }

    #[test]
    fn full_argument_set_parses() {
        let config = CliConfig::parse([
            "model=semisync",
            "comm=sm",
            "s=5",
            "n=9",
            "b=3",
            "c1=2",
            "c2=6",
            "d2=12",
            "schedule=periods:2,3",
            "seed=7",
            "timeline=true",
            "max-steps=500",
        ])
        .unwrap();
        assert_eq!(config.model, TimingModel::SemiSynchronous);
        assert_eq!(config.comm, CommModel::SharedMemory);
        assert_eq!(config.spec.n(), 9);
        assert_eq!(config.schedule, ScheduleSpec::Periods(vec![2, 3]));
        assert!(config.timeline);
        assert_eq!(config.max_steps, 500);
    }

    #[test]
    fn bad_arguments_are_rejected_with_usage() {
        for bad in [
            "model=quantum",
            "comm=pigeon",
            "s=many",
            "schedule=chaos",
            "delay=wormhole:3",
            "frobnicate=1",
            "positional",
        ] {
            let err = CliConfig::parse([bad]).unwrap_err();
            assert!(
                err.to_string().contains("usage:"),
                "`{bad}` should fail with usage, got: {err}"
            );
        }
    }

    #[test]
    fn duplicate_keys_are_rejected_by_name() {
        let err = CliConfig::parse(["s=3", "n=4", "s=5"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate option `s`"), "{err}");
        assert!(err.contains("usage:"), "{err}");
        let err = CliConfig::parse(["model=sync", "model=sync"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate option `model`"), "{err}");
        // Distinct keys are of course still fine.
        CliConfig::parse(["s=3", "n=4", "b=2"]).unwrap();
    }

    #[test]
    fn execute_periodic_mp_default() {
        let config = CliConfig::parse(["model=periodic", "comm=mp", "s=3", "n=3"]).unwrap();
        let out = config.execute().unwrap();
        assert!(out.contains("terminated: true"), "{out}");
        assert!(out.contains("sessions: "), "{out}");
        assert!(out.contains("admissible: true"), "{out}");
    }

    #[test]
    fn execute_sm_with_timeline() {
        let config =
            CliConfig::parse(["model=sync", "comm=sm", "s=2", "n=2", "timeline=true"]).unwrap();
        let out = config.execute().unwrap();
        assert!(out.contains("t="), "timeline missing: {out}");
    }

    #[test]
    fn execute_with_ring_topology() {
        let config = CliConfig::parse([
            "model=async",
            "comm=mp",
            "s=3",
            "n=5",
            "delay=ring:2",
            "schedule=uniform:1",
        ])
        .unwrap();
        let out = config.execute().unwrap();
        assert!(out.contains("terminated: true"), "{out}");
        assert!(out.contains("/3"), "session count missing: {out}");
    }

    #[test]
    fn execute_sporadic_with_bursts() {
        let config = CliConfig::parse([
            "model=sporadic",
            "comm=mp",
            "s=3",
            "n=3",
            "c1=1",
            "d1=0",
            "d2=6",
            "schedule=bursts",
            "delay=uniform",
        ])
        .unwrap();
        let out = config.execute().unwrap();
        assert!(out.contains("terminated: true"), "{out}");
        assert!(out.contains("admissible: true"), "{out}");
    }
}
