//! Markdown rendering for experiment reports.

/// One row of an experiment table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Cell values, one per column.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from anything displayable.
    pub fn new<I, S>(cells: I) -> Row
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Row {
            cells: cells.into_iter().map(Into::into).collect(),
        }
    }
}

/// Renders a GitHub-flavoured markdown table.
///
/// # Examples
///
/// ```
/// use session_bench::format::{markdown_table, Row};
///
/// let table = markdown_table(
///     &["model", "bound", "measured"],
///     &[Row::new(["sync", "12", "12"])],
/// );
/// assert!(table.contains("| sync | 12 | 12 |"));
/// ```
pub fn markdown_table(headers: &[&str], rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.cells.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders a section with a title and a table.
pub fn section(title: &str, headers: &[&str], rows: &[Row]) -> String {
    format!("## {title}\n\n{}\n", markdown_table(headers, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let t = markdown_table(&["a", "b"], &[Row::new(["1", "2"]), Row::new(["3", "4"])]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[3], "| 3 | 4 |");
    }

    #[test]
    fn section_includes_title() {
        let s = section("Sync", &["x"], &[Row::new(["y"])]);
        assert!(s.starts_with("## Sync"));
        assert!(s.contains("| y |"));
    }
}
