//! Configuration for a real-clock run.
//!
//! A [`RealConfig`] fixes everything the runtime needs before a thread is
//! spawned: the timing model and its `[c1, c2]` / `[d1, d2]` parameters,
//! the problem instance `(s, n)`, the transport, the RNG seed, and the
//! *realization* knobs that map logical time onto wall-clock time — the
//! real duration of one logical time unit and the watchdog limits.
//! [`RealConfig::validate`] routes the timing parameters through the
//! analyzer's `SA006 infeasible-timing` gate, so a configuration the
//! pacer cannot realize is rejected with the same diagnostic the
//! simulator CLI would emit.

use std::collections::BTreeMap;
use std::time::Duration;

use session_analyzer::{require_feasible, TimingParams};
use session_types::{Dur, Error, KnownBounds, ProcessId, Result, SessionSpec, TimingModel};

use crate::transport::TransportKind;

/// Everything a real-clock run needs.
#[derive(Clone, Debug)]
pub struct RealConfig {
    /// The timing model to realize.
    pub model: TimingModel,
    /// The `(s, n)`-session instance to solve.
    pub spec: SessionSpec,
    /// Lower step bound / sporadic minimum separation, in logical units.
    pub c1: Dur,
    /// Upper step bound (also the pacer window for models without one).
    pub c2: Dur,
    /// Lower message-delay bound.
    pub d1: Dur,
    /// Upper message-delay bound.
    pub d2: Dur,
    /// Which transport carries broadcasts.
    pub transport: TransportKind,
    /// Seed for every sampled gap and delay (mixed per process).
    pub seed: u64,
    /// Real duration of one logical time unit.
    pub unit: Duration,
    /// Watchdog: a process that takes this many steps without global
    /// quiescence aborts the run as failed.
    pub max_steps_per_process: u64,
    /// Watchdog: wall-clock deadline for the whole run.
    pub deadline: Duration,
    /// Optional per-process sporadic gap scripts (from
    /// [`session_rt::sporadic_gap_script`]); only meaningful for the
    /// sporadic model.
    pub sporadic_gaps: Option<BTreeMap<ProcessId, Vec<Dur>>>,
}

impl RealConfig {
    /// A configuration with paper-scale defaults: `[c1, c2] = [1, 2]`,
    /// `[d1, d2] = [0, 4]`, channel transport, 2 ms per logical unit.
    pub fn new(model: TimingModel, spec: SessionSpec) -> RealConfig {
        RealConfig {
            model,
            spec,
            c1: Dur::ONE,
            c2: Dur::from_int(2),
            d1: Dur::ZERO,
            d2: Dur::from_int(4),
            transport: TransportKind::Chan,
            seed: 42,
            unit: Duration::from_millis(2),
            max_steps_per_process: 10_000,
            deadline: Duration::from_secs(30),
            sporadic_gaps: None,
        }
    }

    /// The [`KnownBounds`] the run must be admissible under — exactly the
    /// mapping the simulator CLI uses, so sim and net verify against the
    /// same model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if the parameters violate a model
    /// precondition.
    pub fn bounds(&self) -> Result<KnownBounds> {
        match self.model {
            TimingModel::Synchronous => KnownBounds::synchronous(self.c2, self.d2),
            TimingModel::Periodic => KnownBounds::periodic(self.d2),
            TimingModel::SemiSynchronous => {
                KnownBounds::semi_synchronous(self.c1, self.c2, self.d2)
            }
            TimingModel::Sporadic => KnownBounds::sporadic(self.c1, self.d1, self.d2),
            TimingModel::Asynchronous => Ok(KnownBounds::asynchronous()),
        }
    }

    /// The nominal delay window the sender samples from: the model's
    /// bounds where it has them, the configured window where it does not
    /// (the asynchronous model's delays are unconstrained, but the pacer
    /// still needs a concrete target).
    pub fn delay_window(&self, bounds: &KnownBounds) -> (Dur, Dur) {
        let lo = bounds.d1().unwrap_or(self.d1);
        let hi = bounds.d2().unwrap_or(self.d2);
        (lo, hi)
    }

    /// Validates the configuration: the analyzer's `SA006` feasibility
    /// gate over the timing parameters, positive realization knobs, and —
    /// when a sporadic gap script is attached — one non-empty script per
    /// process with every gap at least `c1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] naming every violation.
    pub fn validate(&self) -> Result<()> {
        require_feasible(&TimingParams {
            model: self.model,
            c1: self.c1,
            c2: self.c2,
            d1: self.d1,
            d2: self.d2,
        })?;
        if self.unit.is_zero() {
            return Err(Error::invalid_params(
                "real-clock unit must be positive".to_string(),
            ));
        }
        if self.max_steps_per_process == 0 {
            return Err(Error::invalid_params(
                "max_steps_per_process must be positive".to_string(),
            ));
        }
        if self.deadline.is_zero() {
            return Err(Error::invalid_params(
                "deadline must be positive".to_string(),
            ));
        }
        if let Some(gaps) = &self.sporadic_gaps {
            if self.model != TimingModel::Sporadic {
                return Err(Error::invalid_params(format!(
                    "sporadic gap scripts attached to a {} config",
                    self.model
                )));
            }
            for i in 0..self.spec.n() {
                let p = ProcessId::new(i);
                let script = gaps.get(&p).ok_or_else(|| {
                    Error::invalid_params(format!("no sporadic gap script for {p}"))
                })?;
                if script.is_empty() {
                    return Err(Error::invalid_params(format!(
                        "empty sporadic gap script for {p}"
                    )));
                }
                if script.iter().any(|&g| g < self.c1) {
                    return Err(Error::invalid_params(format!(
                        "sporadic gap script for {p} has a gap below c1 = {}",
                        self.c1
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(model: TimingModel) -> RealConfig {
        RealConfig::new(model, SessionSpec::new(2, 2, 2).unwrap())
    }

    #[test]
    fn defaults_validate_for_every_model() {
        for model in TimingModel::ALL {
            let cfg = config(model);
            cfg.validate().unwrap();
            cfg.bounds().unwrap();
        }
    }

    #[test]
    fn infeasible_timing_is_rejected_with_sa006() {
        let mut cfg = config(TimingModel::SemiSynchronous);
        cfg.c2 = Dur::ZERO; // c2 < c1: empty step window
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("SA006"), "{err}");
    }

    #[test]
    fn delay_window_follows_the_model() {
        let cfg = config(TimingModel::Synchronous);
        let bounds = cfg.bounds().unwrap();
        // Synchronous pins d1 = d2.
        assert_eq!(cfg.delay_window(&bounds), (cfg.d2, cfg.d2));
        let cfg = config(TimingModel::Asynchronous);
        let bounds = cfg.bounds().unwrap();
        // Asynchronous has no bounds: the configured window applies.
        assert_eq!(cfg.delay_window(&bounds), (cfg.d1, cfg.d2));
    }

    #[test]
    fn gap_scripts_are_checked() {
        let mut cfg = config(TimingModel::Sporadic);
        let mut gaps = BTreeMap::new();
        gaps.insert(ProcessId::new(0), vec![Dur::from_int(2)]);
        gaps.insert(ProcessId::new(1), vec![Dur::from_int(3)]);
        cfg.sporadic_gaps = Some(gaps.clone());
        cfg.validate().unwrap();
        // A gap below c1 is rejected.
        gaps.insert(ProcessId::new(1), vec![Dur::ZERO]);
        cfg.sporadic_gaps = Some(gaps);
        assert!(cfg.validate().is_err());
        // Scripts on a non-sporadic model are rejected.
        let mut cfg = config(TimingModel::Periodic);
        cfg.sporadic_gaps = Some(BTreeMap::new());
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_knobs_are_rejected() {
        let mut cfg = config(TimingModel::Periodic);
        cfg.unit = Duration::ZERO;
        assert!(cfg.validate().is_err());
        let mut cfg = config(TimingModel::Periodic);
        cfg.max_steps_per_process = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = config(TimingModel::Periodic);
        cfg.deadline = Duration::ZERO;
        assert!(cfg.validate().is_err());
    }
}
