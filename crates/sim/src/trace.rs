//! Recorded timed computations.
//!
//! A [`Trace`] is the executable analogue of the paper's *timed computation*
//! `(α, T)` (§2.1): the sequence of steps in execution order together with
//! the real time of each step, plus the message send/delivery bookkeeping
//! needed to check delay bounds, and the time each process entered an idle
//! state. Verifiers (session counting, round counting, admissibility) consume
//! traces; engines and adversaries produce them.

use std::collections::BTreeMap;

use session_types::{Dur, MsgId, PortId, ProcessId, Time, VarId};

/// What a single recorded step did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// Shared memory: the process atomically read-modified-wrote `var`.
    /// `port` is set when `var` is one of the distinguished ports, making
    /// this a *port step* (§2.3).
    VarAccess {
        /// The variable accessed.
        var: VarId,
        /// The port this variable realizes, if any.
        port: Option<PortId>,
    },
    /// Message passing: a regular process consumed its delivery buffer and
    /// possibly broadcast. In the message-passing model every step of a port
    /// process involves its buffer and is therefore a port step.
    MpStep {
        /// How many messages were received (i.e. were in the buffer).
        received: usize,
        /// Whether the step broadcast a message to all regular processes.
        broadcast: bool,
    },
    /// Message passing: the network delivered message `msg` to the process
    /// recorded in the event (the paper's step of the network process `N`).
    Deliver {
        /// The delivered (message, recipient) instance.
        msg: MsgId,
    },
}

impl StepKind {
    /// Returns `true` if this is a computation step of a (regular) process,
    /// as opposed to a delivery step of the network.
    pub fn is_process_step(&self) -> bool {
        !matches!(self, StepKind::Deliver { .. })
    }
}

/// One recorded step with its real time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the step occurred.
    pub time: Time,
    /// The process that took the step (for deliveries: the recipient).
    pub process: ProcessId,
    /// What the step did.
    pub kind: StepKind,
    /// Whether the process was in an idle state immediately after this step.
    pub idle_after: bool,
}

/// The lifecycle of one (message, recipient) pair in the message-passing
/// model.
///
/// The paper defines the delay of a message as the time between the step
/// that adds it to `net` and the step of `N` that removes it from `net`
/// (delivery into `buf_q`); time spent in the buffer before the recipient's
/// next step does **not** count (§2.1.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageRecord {
    /// Identifier of this (message, recipient) instance.
    pub msg: MsgId,
    /// The sender.
    pub from: ProcessId,
    /// The recipient.
    pub to: ProcessId,
    /// Time of the sending step.
    pub sent_at: Time,
    /// Time of the delivery step of `N`, if it has occurred.
    pub delivered_at: Option<Time>,
}

impl MessageRecord {
    /// The message delay, if delivered.
    pub fn delay(&self) -> Option<Dur> {
        self.delivered_at.map(|d| d - self.sent_at)
    }
}

/// A recorded timed computation.
///
/// Events must be pushed in nondecreasing time order (the mapping `T` of a
/// timed computation is nondecreasing by definition).
///
/// # Examples
///
/// ```
/// use session_sim::{StepKind, Trace, TraceEvent};
/// use session_types::{PortId, ProcessId, Time, VarId};
///
/// let mut trace = Trace::new(2);
/// trace.push(TraceEvent {
///     time: Time::from_int(1),
///     process: ProcessId::new(0),
///     kind: StepKind::VarAccess { var: VarId::new(0), port: Some(PortId::new(0)) },
///     idle_after: false,
/// });
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.end_time(), Some(Time::from_int(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    messages: Vec<MessageRecord>,
    idle_at: BTreeMap<ProcessId, Time>,
    num_processes: usize,
}

impl Trace {
    /// Creates an empty trace for a system of `num_processes` processes
    /// (network deliveries do not count as a process).
    pub fn new(num_processes: usize) -> Trace {
        Trace {
            events: Vec::new(),
            messages: Vec::new(),
            idle_at: BTreeMap::new(),
            num_processes,
        }
    }

    /// The number of processes in the recorded system.
    pub fn num_processes(&self) -> usize {
        self.num_processes
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if `event.time` is earlier than the previous event's time —
    /// the time mapping of a timed computation must be nondecreasing.
    pub fn push(&mut self, event: TraceEvent) {
        if let Some(last) = self.events.last() {
            assert!(
                event.time >= last.time,
                "trace times must be nondecreasing: {:?} after {:?}",
                event.time,
                last.time
            );
        }
        if event.idle_after {
            self.idle_at.entry(event.process).or_insert(event.time);
        }
        self.events.push(event);
    }

    /// Builds a trace from events in arbitrary order by stable-sorting them
    /// by time (used by the lower-bound adversaries, which construct
    /// reorderings of existing computations).
    pub fn from_unsorted_events(num_processes: usize, mut events: Vec<TraceEvent>) -> Trace {
        events.sort_by_key(|e| e.time);
        let mut trace = Trace::new(num_processes);
        for event in events {
            trace.push(event);
        }
        trace
    }

    /// Registers a message sent at `sent_at` from `from` to `to`, returning
    /// its fresh identifier.
    pub fn record_send(&mut self, from: ProcessId, to: ProcessId, sent_at: Time) -> MsgId {
        let msg = MsgId::new(self.messages.len() as u64);
        self.messages.push(MessageRecord {
            msg,
            from,
            to,
            sent_at,
            delivered_at: None,
        });
        msg
    }

    /// Marks message `msg` as delivered at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `msg` was not recorded by [`Trace::record_send`] or was
    /// already delivered.
    pub fn record_delivery(&mut self, msg: MsgId, at: Time) {
        let record = &mut self.messages[msg.seq() as usize];
        assert!(
            record.delivered_at.is_none(),
            "message {msg} delivered twice"
        );
        record.delivered_at = Some(at);
    }

    /// All recorded events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All recorded message instances, in send order.
    pub fn messages(&self) -> &[MessageRecord] {
        &self.messages
    }

    /// The record for message `msg`.
    pub fn message(&self, msg: MsgId) -> Option<&MessageRecord> {
        self.messages.get(msg.seq() as usize)
    }

    /// The number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last recorded event.
    pub fn end_time(&self) -> Option<Time> {
        self.events.last().map(|e| e.time)
    }

    /// The times of all *process* steps (excluding network deliveries) taken
    /// by `process`, in order.
    pub fn step_times(&self, process: ProcessId) -> Vec<Time> {
        self.events
            .iter()
            .filter(|e| e.process == process && e.kind.is_process_step())
            .map(|e| e.time)
            .collect()
    }

    /// The number of process steps taken by `process`.
    pub fn step_count(&self, process: ProcessId) -> usize {
        self.events
            .iter()
            .filter(|e| e.process == process && e.kind.is_process_step())
            .count()
    }

    /// The time at which `process` first entered an idle state, if ever.
    pub fn idle_time(&self, process: ProcessId) -> Option<Time> {
        self.idle_at.get(&process).copied()
    }

    /// The time by which *all* of `processes` were idle: the maximum of
    /// their idle-entry times, or `None` if any never became idle.
    ///
    /// This is the paper's running-time measure: "an algorithm runs in time
    /// `t` if every process is in an idle state by time `t`" (§2.3).
    pub fn all_idle_time<I>(&self, processes: I) -> Option<Time>
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let mut latest = Time::ZERO;
        for p in processes {
            latest = latest.max(self.idle_time(p)?);
        }
        Some(latest)
    }

    /// The largest step time (gap between consecutive steps of one process,
    /// or from time 0 to a first step) over all process steps in the trace:
    /// the paper's per-computation parameter `γ` (§2.3).
    pub fn gamma(&self) -> Dur {
        let mut last_step: BTreeMap<ProcessId, Time> = BTreeMap::new();
        let mut gamma = Dur::ZERO;
        for e in &self.events {
            if !e.kind.is_process_step() {
                continue;
            }
            let prev = last_step.get(&e.process).copied().unwrap_or(Time::ZERO);
            gamma = gamma.max(e.time - prev);
            last_step.insert(e.process, e.time);
        }
        gamma
    }

    /// Iterates over the port steps of the trace, in time order, yielding
    /// `(index in events, port)`.
    ///
    /// For shared memory these are the [`StepKind::VarAccess`] events with a
    /// port; message-passing engines tag port-process steps via the supplied
    /// `port_of` mapping (every step of a port process is a port step in the
    /// message-passing model).
    pub fn port_steps<'a, F>(&'a self, port_of: F) -> impl Iterator<Item = (usize, PortId)> + 'a
    where
        F: Fn(ProcessId) -> Option<PortId> + 'a,
    {
        self.events
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| match &e.kind {
                StepKind::VarAccess { port, .. } => port.map(|p| (i, p)),
                StepKind::MpStep { .. } => port_of(e.process).map(|p| (i, p)),
                StepKind::Deliver { .. } => None,
            })
    }
}

/// The result of running an engine to completion or budget exhaustion.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The recorded timed computation.
    pub trace: Trace,
    /// `true` if all port processes entered idle states within budget.
    pub terminated: bool,
    /// Total process steps executed (excluding network deliveries).
    pub steps: u64,
}

impl RunOutcome {
    /// The running time: the time by which all of `port_processes` were
    /// idle. `None` if the run did not terminate.
    pub fn running_time<I>(&self, port_processes: I) -> Option<Time>
    where
        I: IntoIterator<Item = ProcessId>,
    {
        if !self.terminated {
            return None;
        }
        self.trace.all_idle_time(port_processes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var_event(t: i128, p: usize, port: Option<usize>, idle: bool) -> TraceEvent {
        TraceEvent {
            time: Time::from_int(t),
            process: ProcessId::new(p),
            kind: StepKind::VarAccess {
                var: VarId::new(p),
                port: port.map(PortId::new),
            },
            idle_after: idle,
        }
    }

    #[test]
    fn push_records_in_order() {
        let mut trace = Trace::new(2);
        trace.push(var_event(1, 0, Some(0), false));
        trace.push(var_event(1, 1, Some(1), false));
        trace.push(var_event(2, 0, Some(0), true));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.end_time(), Some(Time::from_int(2)));
        assert!(!trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn push_rejects_decreasing_times() {
        let mut trace = Trace::new(1);
        trace.push(var_event(2, 0, None, false));
        trace.push(var_event(1, 0, None, false));
    }

    #[test]
    fn from_unsorted_sorts_stably() {
        let events = vec![
            var_event(3, 0, None, false),
            var_event(1, 1, None, false),
            var_event(3, 1, None, false),
            var_event(2, 0, None, false),
        ];
        let trace = Trace::from_unsorted_events(2, events);
        let times: Vec<i128> = trace
            .events()
            .iter()
            .map(|e| e.time.since_origin().as_ratio().numer())
            .collect();
        assert_eq!(times, vec![1, 2, 3, 3]);
        // Stable: among the two time-3 events, process 0 (pushed first) stays first.
        assert_eq!(trace.events()[2].process, ProcessId::new(0));
    }

    #[test]
    fn idle_times_are_first_idle_entry() {
        let mut trace = Trace::new(2);
        trace.push(var_event(1, 0, None, true));
        trace.push(var_event(2, 0, None, true)); // still idle; must not move the time
        trace.push(var_event(3, 1, None, true));
        assert_eq!(trace.idle_time(ProcessId::new(0)), Some(Time::from_int(1)));
        assert_eq!(trace.idle_time(ProcessId::new(1)), Some(Time::from_int(3)));
        let all = trace.all_idle_time([ProcessId::new(0), ProcessId::new(1)]);
        assert_eq!(all, Some(Time::from_int(3)));
    }

    #[test]
    fn all_idle_requires_every_process() {
        let mut trace = Trace::new(2);
        trace.push(var_event(1, 0, None, true));
        assert_eq!(
            trace.all_idle_time([ProcessId::new(0), ProcessId::new(1)]),
            None
        );
    }

    #[test]
    fn step_times_and_counts_exclude_deliveries() {
        let mut trace = Trace::new(2);
        trace.push(TraceEvent {
            time: Time::from_int(1),
            process: ProcessId::new(0),
            kind: StepKind::MpStep {
                received: 0,
                broadcast: true,
            },
            idle_after: false,
        });
        let msg = trace.record_send(ProcessId::new(0), ProcessId::new(1), Time::from_int(1));
        trace.push(TraceEvent {
            time: Time::from_int(2),
            process: ProcessId::new(1),
            kind: StepKind::Deliver { msg },
            idle_after: false,
        });
        trace.record_delivery(msg, Time::from_int(2));
        trace.push(TraceEvent {
            time: Time::from_int(3),
            process: ProcessId::new(1),
            kind: StepKind::MpStep {
                received: 1,
                broadcast: false,
            },
            idle_after: false,
        });
        assert_eq!(trace.step_count(ProcessId::new(1)), 1);
        assert_eq!(trace.step_times(ProcessId::new(1)), vec![Time::from_int(3)]);
        assert_eq!(trace.message(msg).unwrap().delay(), Some(Dur::from_int(1)));
    }

    #[test]
    #[should_panic(expected = "delivered twice")]
    fn double_delivery_panics() {
        let mut trace = Trace::new(2);
        let msg = trace.record_send(ProcessId::new(0), ProcessId::new(1), Time::ZERO);
        trace.record_delivery(msg, Time::from_int(1));
        trace.record_delivery(msg, Time::from_int(2));
    }

    #[test]
    fn gamma_is_max_gap_including_start() {
        let mut trace = Trace::new(2);
        trace.push(var_event(4, 0, None, false)); // gap 4 from origin
        trace.push(var_event(5, 0, None, false)); // gap 1
        trace.push(var_event(5, 1, None, false)); // gap 5 from origin
        assert_eq!(trace.gamma(), Dur::from_int(5));
    }

    #[test]
    fn gamma_of_empty_trace_is_zero() {
        assert_eq!(Trace::new(3).gamma(), Dur::ZERO);
    }

    #[test]
    fn port_steps_cover_both_models() {
        let mut trace = Trace::new(2);
        trace.push(var_event(1, 0, Some(0), false));
        trace.push(TraceEvent {
            time: Time::from_int(2),
            process: ProcessId::new(1),
            kind: StepKind::MpStep {
                received: 0,
                broadcast: false,
            },
            idle_after: false,
        });
        // Process 1 realizes port 1 in the message-passing sense.
        let ports: Vec<PortId> = trace
            .port_steps(|p| (p == ProcessId::new(1)).then(|| PortId::new(1)))
            .map(|(_, port)| port)
            .collect();
        assert_eq!(ports, vec![PortId::new(0), PortId::new(1)]);
    }

    #[test]
    fn running_time_of_outcome() {
        let mut trace = Trace::new(1);
        trace.push(var_event(2, 0, None, true));
        let outcome = RunOutcome {
            trace,
            terminated: true,
            steps: 1,
        };
        assert_eq!(
            outcome.running_time([ProcessId::new(0)]),
            Some(Time::from_int(2))
        );
        let failed = RunOutcome {
            trace: Trace::new(1),
            terminated: false,
            steps: 0,
        };
        assert_eq!(failed.running_time([ProcessId::new(0)]), None);
    }
}
