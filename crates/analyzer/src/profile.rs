//! The explorer flight recorder: structured profiles of where an
//! exploration spent its time (DESIGN.md §15).
//!
//! `BENCH_analyzer.json` showed the donation-era parallel explorer
//! *losing* to the serial one, and the v1 profile said why: stripe-lock
//! waits, duplicated expansions, donation churn. The ownership explorer
//! (DESIGN.md §13) removed those mechanisms wholesale, so the v2
//! profile records what replaced them: per-worker **routing** activity
//! (messages sent to and received from peer shards, successors kept
//! local, back-pressure spins on full rings), the POR fixpoint round
//! count, and whether the run fell back to the serial explorer. The
//! document serializes as the stable `analyzer-profile/v2` JSON plus a
//! Perfetto trace with one track per worker.
//!
//! Profiling never changes findings: every hook is behind an `Option`
//! that is `None` unless `profile=`/`progress=` asked for it, and the
//! hooks only *read* explorer state (asserted by the invariance test in
//! `tests/full_pipeline.rs`).

use std::sync::Arc;

use session_obs::json::JsonWriter;
use session_obs::{export, ProgressBoard, WorkerTimeline};

/// How many timeline spans / inbox-depth samples each worker keeps
/// before counting overflow instead (bounds profile size on huge runs).
pub(crate) const FLIGHT_BUFFER_CAP: usize = 4096;

/// What the caller asked the flight recorder to do.
///
/// The default (`profile` off, no progress board) is the zero-cost path:
/// the explorer's hooks reduce to a branch on `None`.
#[derive(Clone, Debug, Default)]
pub struct FlightOpts {
    /// Collect an [`ExploreProfile`] for this exploration.
    pub profile: bool,
    /// Scoreboard for the live `progress=on` stderr line, polled by a
    /// monitor thread owned by the caller.
    pub progress: Option<Arc<ProgressBoard>>,
}

impl FlightOpts {
    /// Profiling on, no progress board.
    pub fn profiled() -> FlightOpts {
        FlightOpts {
            profile: true,
            progress: None,
        }
    }
}

/// Per-worker flight data, owned by exactly one worker thread during
/// Phase A and merged into the profile after the join. With POR
/// fixpoint re-rounds the per-round profiles are summed per worker id.
#[derive(Clone, Debug)]
pub struct WorkerProfile {
    /// States this worker expanded (its shard of the space).
    pub states: u64,
    /// Routed arrivals this worker processed (accepted + dropped).
    pub items: u64,
    /// Time spent in work bursts (draining, expanding, routing).
    pub busy_ns: u64,
    /// Time spent idle: empty queue, empty inboxes, waiting on the
    /// termination token.
    pub idle_ns: u64,
    /// Residual expansion time: `busy - route_send - route_recv`
    /// (cloning machines, applying steps, firing lints, memo inserts —
    /// the memo is a thread-local set, so probes are not split out).
    pub expand_ns: u64,
    /// Time pushing batches to peer rings, including back-pressure
    /// spins.
    pub route_send_ns: u64,
    /// Time draining batches from peer rings.
    pub route_recv_ns: u64,
    /// Successor messages pushed to peer rings.
    pub route_send: u64,
    /// Successor messages drained from peer rings.
    pub route_recv: u64,
    /// Successors this worker owned itself (never crossed a ring).
    pub local_msgs: u64,
    /// Failed ring pushes: each is one spin of the back-pressure loop.
    pub queue_full_spins: u64,
    /// Always zero for the ownership explorer (first-arrival dedup);
    /// the serial explorer counts its budget-growth re-walks here.
    pub duplicate_expansions: u64,
    /// One span per work burst, for the per-worker Perfetto track
    /// (`detail` = fixpoint round index).
    pub timeline: WorkerTimeline,
    /// `(t_ns, pending_batches)` samples of this worker's inboxes,
    /// taken when a drain found traffic.
    pub inbox_depth: Vec<(u64, u64)>,
}

impl WorkerProfile {
    pub(crate) fn new() -> WorkerProfile {
        WorkerProfile {
            states: 0,
            items: 0,
            busy_ns: 0,
            idle_ns: 0,
            expand_ns: 0,
            route_send_ns: 0,
            route_recv_ns: 0,
            route_send: 0,
            route_recv: 0,
            local_msgs: 0,
            queue_full_spins: 0,
            duplicate_expansions: 0,
            timeline: WorkerTimeline::with_capacity(FLIGHT_BUFFER_CAP),
            inbox_depth: Vec::new(),
        }
    }

    /// Fills the residual `expand_ns` slot once all other slots are
    /// final.
    pub(crate) fn seal(&mut self) {
        self.expand_ns = self
            .busy_ns
            .saturating_sub(self.route_send_ns + self.route_recv_ns);
    }

    /// Folds another round's profile for the same worker id into this
    /// one (numeric fields summed, timeline and samples appended).
    pub(crate) fn absorb(&mut self, other: WorkerProfile) {
        self.states += other.states;
        self.items += other.items;
        self.busy_ns += other.busy_ns;
        self.idle_ns += other.idle_ns;
        self.route_send_ns += other.route_send_ns;
        self.route_recv_ns += other.route_recv_ns;
        self.route_send += other.route_send;
        self.route_recv += other.route_recv;
        self.local_msgs += other.local_msgs;
        self.queue_full_spins += other.queue_full_spins;
        self.duplicate_expansions += other.duplicate_expansions;
        for span in other.timeline.spans() {
            self.timeline.push(*span);
        }
        for sample in other.inbox_depth {
            if self.inbox_depth.len() < FLIGHT_BUFFER_CAP {
                self.inbox_depth.push(sample);
            }
        }
        self.seal();
    }

    /// Fraction of this worker's successors it owned itself.
    #[allow(clippy::cast_precision_loss)]
    pub fn owner_local_ratio(&self) -> f64 {
        let routed = self.local_msgs + self.route_send;
        if routed == 0 {
            return 1.0;
        }
        self.local_msgs as f64 / routed as f64
    }
}

/// A complete flight-recorder profile of one exploration, serializable
/// as the stable `analyzer-profile/v2` JSON document.
#[derive(Clone, Debug)]
pub struct ExploreProfile {
    /// Target name (empty when the caller explored raw roots).
    pub target: String,
    /// Scope: number of processes.
    pub n: usize,
    /// Scope: sessions required.
    pub s: u64,
    /// Worker threads (1 = the serial explorer).
    pub threads: usize,
    /// Depth budget of the exploration.
    pub max_depth: usize,
    /// Whether partial-order reduction was on.
    pub por: bool,
    /// Whether symmetry reduction was on.
    pub symmetry: bool,
    /// States expanded in Phase A, summed over workers and rounds. With
    /// a single round this equals `unique_states` — each state is
    /// expanded exactly once by its owner.
    pub states: u64,
    /// Distinct states in the final round's owner memos (the serial
    /// explorer reports its memo size here).
    pub unique_states: u64,
    /// Zero for the ownership explorer by construction; the serial
    /// explorer counts budget-growth re-walks.
    pub duplicate_expansions: u64,
    /// Successor messages routed across shard boundaries.
    pub route_send: u64,
    /// Successor messages received across shard boundaries.
    pub route_recv: u64,
    /// Successors kept on their generating worker's own shard.
    pub local_msgs: u64,
    /// Total back-pressure spins on full rings.
    pub queue_full_spins: u64,
    /// Phase A rounds (1 + POR proviso fixpoint re-rounds).
    pub rounds: u64,
    /// The run hit a depth cut and fell back to the serial explorer.
    pub fallback: bool,
    /// End-to-end wall clock (all phases), nanoseconds.
    pub wall_ns: u64,
    /// Phase A (parallel ownership walk, all rounds) wall clock.
    pub phase_a_ns: u64,
    /// Serial replay over the logged key-graph, wall clock.
    pub replay_ns: u64,
    /// Phase B (serial witness re-derivation) wall clock.
    pub phase_b_ns: u64,
    /// One entry per worker.
    pub workers: Vec<WorkerProfile>,
}

impl ExploreProfile {
    /// Serializes the profile as the `analyzer-profile/v2` document.
    ///
    /// Field order is fixed, so the output is a deterministic function
    /// of the profile (asserted byte-for-byte by
    /// `tests/profile_export_golden.rs`).
    #[allow(clippy::cast_precision_loss)]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "analyzer-profile/v2");
        w.field_str("target", &self.target);
        w.field_u64("n", self.n as u64);
        w.field_u64("s", self.s);
        w.field_u64("threads", self.threads as u64);
        w.field_u64("max_depth", self.max_depth as u64);
        w.key("opts");
        w.begin_object();
        w.field_bool("por", self.por);
        w.field_bool("symmetry", self.symmetry);
        w.end_object();
        w.field_u64("states", self.states);
        w.field_u64("unique_states", self.unique_states);
        w.field_u64("duplicate_expansions", self.duplicate_expansions);
        w.key("routing");
        w.begin_object();
        w.field_u64("send", self.route_send);
        w.field_u64("recv", self.route_recv);
        w.field_u64("local", self.local_msgs);
        w.field_u64("queue_full_spins", self.queue_full_spins);
        w.field_f64("owner_local_ratio", self.owner_local_ratio());
        w.field_u64("rounds", self.rounds);
        w.field_bool("fallback", self.fallback);
        w.end_object();
        w.field_u64("wall_ns", self.wall_ns);
        w.field_u64("phase_a_ns", self.phase_a_ns);
        w.field_u64("replay_ns", self.replay_ns);
        w.field_u64("phase_b_ns", self.phase_b_ns);
        w.key("workers");
        w.begin_array();
        for (id, worker) in self.workers.iter().enumerate() {
            w.begin_object();
            w.field_u64("id", id as u64);
            w.field_u64("states", worker.states);
            w.field_u64("items", worker.items);
            w.field_u64("busy_ns", worker.busy_ns);
            w.field_f64("utilization", self.utilization_of(worker));
            w.key("time_ns");
            w.begin_object();
            w.field_u64("expand", worker.expand_ns);
            w.field_u64("route_send", worker.route_send_ns);
            w.field_u64("route_recv", worker.route_recv_ns);
            w.field_u64("idle", worker.idle_ns);
            w.end_object();
            w.field_u64("route_send", worker.route_send);
            w.field_u64("route_recv", worker.route_recv);
            w.field_u64("local_msgs", worker.local_msgs);
            w.field_u64("queue_full_spins", worker.queue_full_spins);
            w.field_f64("owner_local_ratio", worker.owner_local_ratio());
            w.field_u64("duplicate_expansions", worker.duplicate_expansions);
            w.key("timeline");
            w.begin_array();
            for span in worker.timeline.spans() {
                w.begin_object();
                w.field_str("name", span.name);
                w.field_u64("start_ns", span.start_ns);
                w.field_u64("end_ns", span.end_ns);
                w.field_u64("round", span.detail);
                w.end_object();
            }
            w.end_array();
            w.field_u64("timeline_dropped", worker.timeline.dropped());
            w.key("inbox_depth");
            w.begin_array();
            for &(t_ns, depth) in &worker.inbox_depth {
                w.begin_array();
                w.value_u64(t_ns);
                w.value_u64(depth);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Renders the per-worker timelines as a Perfetto trace (one track
    /// per worker; see [`session_obs::export::flight_perfetto_json`]).
    pub fn to_perfetto(&self) -> String {
        let title = if self.target.is_empty() {
            "analyzer".to_owned()
        } else {
            format!("analyzer: {}", self.target)
        };
        let tracks: Vec<_> = self
            .workers
            .iter()
            .enumerate()
            .map(|(id, worker)| (format!("worker {id}"), worker.timeline.spans().to_vec()))
            .collect();
        export::flight_perfetto_json(&title, &tracks)
    }

    /// One worker's busy fraction of the Phase A wall clock.
    #[allow(clippy::cast_precision_loss)]
    fn utilization_of(&self, worker: &WorkerProfile) -> f64 {
        if self.phase_a_ns == 0 {
            return 0.0;
        }
        worker.busy_ns as f64 / self.phase_a_ns as f64
    }

    /// Fraction of all successors that never crossed a shard boundary.
    #[allow(clippy::cast_precision_loss)]
    pub fn owner_local_ratio(&self) -> f64 {
        let routed = self.local_msgs + self.route_send;
        if routed == 0 {
            return 1.0;
        }
        self.local_msgs as f64 / routed as f64
    }

    /// A one-paragraph accounting summary (used by `bench_analyzer
    /// --profile` and handy in tests): busy vs idle vs routing time and
    /// the shard-locality ratio.
    #[allow(clippy::cast_precision_loss)]
    pub fn summary(&self) -> String {
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        let idle: u64 = self.workers.iter().map(|w| w.idle_ns).sum();
        let route: u64 = self
            .workers
            .iter()
            .map(|w| w.route_send_ns + w.route_recv_ns)
            .sum();
        let dup_pct = if self.states == 0 {
            0.0
        } else {
            100.0 * self.duplicate_expansions as f64 / self.states as f64
        };
        format!(
            "threads={} states={} unique={} dup={} ({dup_pct:.1}%) \
             busy_ms={:.1} idle_ms={:.1} route_ms={:.1} local={:.2} \
             rounds={} fallback={} phase_a_ms={:.1} phase_b_ms={:.1}",
            self.threads,
            self.states,
            self.unique_states,
            self.duplicate_expansions,
            busy as f64 / 1e6,
            idle as f64 / 1e6,
            route as f64 / 1e6,
            self.owner_local_ratio(),
            self.rounds,
            self.fallback,
            self.phase_a_ns as f64 / 1e6,
            self.phase_b_ns as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_obs::json;
    use session_obs::TimelineSpan;

    /// A fully hand-specified profile — also the shape the golden test
    /// pins byte-for-byte.
    pub(crate) fn synthetic() -> ExploreProfile {
        let mut timeline = WorkerTimeline::with_capacity(4);
        timeline.push(TimelineSpan {
            name: "work",
            start_ns: 1000,
            end_ns: 51000,
            detail: 0,
        });
        timeline.push(TimelineSpan {
            name: "work",
            start_ns: 60000,
            end_ns: 80000,
            detail: 1,
        });
        let worker0 = WorkerProfile {
            states: 900,
            items: 1100,
            busy_ns: 70000,
            idle_ns: 10000,
            expand_ns: 61000,
            route_send_ns: 6000,
            route_recv_ns: 3000,
            route_send: 500,
            route_recv: 400,
            local_msgs: 700,
            queue_full_spins: 3,
            duplicate_expansions: 0,
            timeline,
            inbox_depth: vec![(1000, 3), (60000, 1)],
        };
        let worker1 = WorkerProfile {
            states: 100,
            items: 420,
            busy_ns: 20000,
            idle_ns: 60000,
            expand_ns: 20000,
            route_send_ns: 0,
            route_recv_ns: 0,
            route_send: 100,
            route_recv: 200,
            local_msgs: 100,
            queue_full_spins: 0,
            duplicate_expansions: 0,
            timeline: WorkerTimeline::with_capacity(4),
            inbox_depth: vec![(2000, 2)],
        };
        ExploreProfile {
            target: "PeriodicMp".to_owned(),
            n: 3,
            s: 3,
            threads: 2,
            max_depth: 27,
            por: false,
            symmetry: false,
            states: 1000,
            unique_states: 1000,
            duplicate_expansions: 0,
            route_send: 600,
            route_recv: 600,
            local_msgs: 800,
            queue_full_spins: 3,
            rounds: 2,
            fallback: false,
            wall_ns: 100000,
            phase_a_ns: 80000,
            replay_ns: 5000,
            phase_b_ns: 15000,
            workers: vec![worker0, worker1],
        }
    }

    #[test]
    fn profile_json_is_valid_and_carries_the_schema() {
        let doc = synthetic().to_json();
        json::validate(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("analyzer-profile/v2")
        );
        assert_eq!(v.get("threads").and_then(json::JsonValue::as_u64), Some(2));
        let routing = v.get("routing").unwrap();
        assert_eq!(
            routing.get("send").and_then(json::JsonValue::as_u64),
            Some(600)
        );
        assert_eq!(
            routing.get("rounds").and_then(json::JsonValue::as_u64),
            Some(2)
        );
        let workers = v
            .get("workers")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(
            workers[0]
                .get("time_ns")
                .and_then(|t| t.get("route_send"))
                .and_then(json::JsonValue::as_u64),
            Some(6000)
        );
        assert_eq!(
            workers[0]
                .get("queue_full_spins")
                .and_then(json::JsonValue::as_u64),
            Some(3)
        );
    }

    #[test]
    fn perfetto_export_has_one_track_per_worker() {
        let out = synthetic().to_perfetto();
        json::validate(&out).unwrap();
        assert!(out.contains("\"name\":\"worker 0\""), "{out}");
        assert!(out.contains("\"name\":\"worker 1\""), "{out}");
        assert!(out.contains("\"name\":\"analyzer: PeriodicMp\""), "{out}");
    }

    #[test]
    fn utilization_and_summary_account_for_the_time() {
        let profile = synthetic();
        let doc = profile.to_json();
        let v = json::parse(&doc).unwrap();
        let workers = v
            .get("workers")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        let util0 = workers[0]
            .get("utilization")
            .and_then(json::JsonValue::as_f64)
            .unwrap();
        assert!((util0 - 0.875).abs() < 1e-9, "{util0}");
        let summary = profile.summary();
        assert!(summary.contains("dup=0 (0.0%)"), "{summary}");
        assert!(summary.contains("threads=2"), "{summary}");
        assert!(summary.contains("rounds=2"), "{summary}");
    }

    #[test]
    fn owner_local_ratio_splits_local_from_routed() {
        let profile = synthetic();
        // 800 local of 1400 generated successors.
        assert!((profile.owner_local_ratio() - 800.0 / 1400.0).abs() < 1e-9);
        let lone = WorkerProfile::new();
        assert!((lone.owner_local_ratio() - 1.0).abs() < 1e-9, "no traffic");
    }

    #[test]
    fn sealing_fills_the_residual_expand_slot() {
        let mut worker = WorkerProfile::new();
        worker.busy_ns = 100;
        worker.route_send_ns = 20;
        worker.route_recv_ns = 10;
        worker.seal();
        assert_eq!(worker.expand_ns, 70);
        worker.busy_ns = 10;
        worker.seal();
        assert_eq!(worker.expand_ns, 0, "residual saturates at zero");
    }

    #[test]
    fn absorb_sums_rounds_per_worker() {
        let mut first = WorkerProfile::new();
        first.states = 10;
        first.busy_ns = 100;
        first.route_send = 5;
        let mut second = WorkerProfile::new();
        second.states = 7;
        second.busy_ns = 50;
        second.route_send = 2;
        second.inbox_depth.push((123, 4));
        first.absorb(second);
        assert_eq!(first.states, 17);
        assert_eq!(first.busy_ns, 150);
        assert_eq!(first.route_send, 7);
        assert_eq!(first.inbox_depth, vec![(123, 4)]);
    }
}
