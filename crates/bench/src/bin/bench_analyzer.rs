//! Analyzer throughput benchmark: explore the paper's periodic
//! message-passing target at the headline scope (n = 3, s = 3) across a
//! thread sweep and report states/second, the parallel speedup over the
//! serial explorer, the findings multiset and the states count — both of
//! which must be identical at every thread count (the ownership explorer
//! replays the serial DFS over its logged key-graph, see
//! `session-analyzer`'s `partition` module).
//!
//! ```text
//! cargo run --release -p session-bench --bin bench_analyzer
//! cargo run --release -p session-bench --bin bench_analyzer -- --json
//! cargo run --release -p session-bench --bin bench_analyzer -- --json out.json
//! cargo run --release -p session-bench --bin bench_analyzer -- --profile --json
//! cargo run --release -p session-bench --bin bench_analyzer -- --large
//! ```
//!
//! Report schema: `session-bench/analyzer/v2` — per row the reduction
//! label, scope, thread count, states visited, wall-clock seconds,
//! states/second, speedup over the threads=1 row of the same sweep, the
//! sorted lint-code multiset, and the truncation flag. The top-level
//! `host_threads` / `skewed` pair records whether the host could
//! actually run the sweep in parallel: when `host_threads` is below the
//! largest requested thread count the speedup rows measure
//! oversubscription, not scaling, the report says `SKEWED` loudly, and
//! the speedup gate is skipped (DESIGN.md §15).
//!
//! `--profile` reruns each row with the flight recorder on (DESIGN.md
//! §15) and embeds the utilization/routing summary — worker busy
//! fraction, route/local message split, queue-full spins, owner-local
//! ratio, fixpoint rounds, phase split — per row in both the markdown
//! and the JSON. `--large` adds an opt-in n = 4, s = 4 sweep (reduced;
//! the unreduced space at that scope is not bench-tractable).
//!
//! Exit status: `0` on success, `1` on any fatal gate:
//!
//! * findings/truncation diverging across thread counts,
//! * `states(threads=N) != states(threads=1)` anywhere,
//! * the ownership walk falling back to serial on the headline scope,
//! * 8-thread speedup below 2.0x on a host with >= 8 hardware threads
//!   (`skewed=false`). Skewed hosts legitimately measure ≈1× and only
//!   report; CI asserts the curve on its own hardware from the JSON.

use std::time::Instant;

use session_analyzer::explore::{explore_flight, explore_with_opts};
use session_analyzer::{scoped_target_space, ExploreOpts, ExploreProfile, FlightOpts};
use session_bench::json_report::json_flag;
use session_obs::json::JsonWriter;
use session_obs::NullRecorder;

/// The version tag written into every analyzer-bench report.
const SCHEMA: &str = "session-bench/analyzer/v2";

/// The headline target and scope of the speedup acceptance criterion.
const TARGET: &str = "PeriodicMp";
const N: usize = 3;
const S: u64 = 3;

/// The opt-in `--large` scope (reduced only: the unreduced n = 4 space
/// is not bench-tractable).
const LARGE_N: usize = 4;
const LARGE_S: u64 = 4;

/// The thread sweep. `1` is the serial baseline every speedup is
/// relative to.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The fatal 8-thread speedup floor on non-skewed hosts.
const SPEEDUP_FLOOR: f64 = 2.0;

struct BenchRow {
    reduce: &'static str,
    n: usize,
    s: u64,
    threads: usize,
    states: u64,
    wall_secs: f64,
    states_per_sec: f64,
    speedup: f64,
    findings: Vec<String>,
    truncated: bool,
    flight: Option<FlightSummary>,
}

/// The utilization/routing digest `--profile` embeds per row, condensed
/// from the full [`ExploreProfile`].
struct FlightSummary {
    /// Busy ÷ (busy + idle) summed over workers, in `[0, 1]`.
    utilization: f64,
    duplicate_expansions: u64,
    route_send: u64,
    route_recv: u64,
    local_msgs: u64,
    queue_full_spins: u64,
    /// Successors the expanding worker already owned, as a fraction of
    /// all routed-or-local successors.
    owner_local_ratio: f64,
    /// POR proviso fixpoint rounds (1 on acyclic spaces).
    rounds: u64,
    /// Whether the ownership walk cut and fell back to the serial
    /// explorer (fatal on the headline scope).
    fallback: bool,
    phase_a_ms: f64,
    replay_ms: f64,
    phase_b_ms: f64,
}

impl FlightSummary {
    fn of(profile: &ExploreProfile) -> FlightSummary {
        let busy: u64 = profile.workers.iter().map(|w| w.busy_ns).sum();
        let idle: u64 = profile.workers.iter().map(|w| w.idle_ns).sum();
        FlightSummary {
            utilization: busy as f64 / ((busy + idle) as f64).max(1.0),
            duplicate_expansions: profile.duplicate_expansions,
            route_send: profile.route_send,
            route_recv: profile.route_recv,
            local_msgs: profile.local_msgs,
            queue_full_spins: profile.queue_full_spins,
            owner_local_ratio: profile.owner_local_ratio(),
            rounds: profile.rounds,
            fallback: profile.fallback,
            phase_a_ms: profile.phase_a_ns as f64 / 1e6,
            replay_ms: profile.replay_ns as f64 / 1e6,
            phase_b_ms: profile.phase_b_ns as f64 / 1e6,
        }
    }
}

/// Explores the target once and measures throughput. With `profile` the
/// flight recorder rides along and the row carries its digest; the timed
/// exploration itself still runs with the recorder off, so the headline
/// states/second is never polluted by instrumentation.
#[allow(clippy::too_many_arguments)]
fn measure(
    space: &session_analyzer::TargetSpace,
    reduce: &'static str,
    n: usize,
    s: u64,
    base: ExploreOpts,
    threads: usize,
    profile: bool,
) -> BenchRow {
    let opts = ExploreOpts { threads, ..base };
    let start = Instant::now();
    let exploration = explore_with_opts(&space.roots, n, s, space.scope.max_depth, opts);
    let wall_secs = start.elapsed().as_secs_f64();
    let flight = profile.then(|| {
        let (_, profile) = explore_flight(
            &space.roots,
            n,
            s,
            space.scope.max_depth,
            opts,
            &mut NullRecorder,
            &FlightOpts::profiled(),
        );
        FlightSummary::of(&profile.expect("FlightOpts::profiled() always yields a profile"))
    });
    let mut findings: Vec<String> = exploration
        .violations
        .iter()
        .map(|v| v.code.code().to_owned())
        .collect();
    findings.sort();
    BenchRow {
        reduce,
        n,
        s,
        threads,
        states: exploration.states,
        wall_secs,
        states_per_sec: exploration.states as f64 / wall_secs.max(1e-9),
        speedup: 0.0, // filled in once the serial baseline is known
        findings,
        truncated: exploration.truncated,
        flight,
    }
}

/// Runs the thread sweep for one reduction setting at one scope.
fn sweep(
    space: &session_analyzer::TargetSpace,
    reduce: &'static str,
    n: usize,
    s: u64,
    base: ExploreOpts,
    profile: bool,
) -> Vec<BenchRow> {
    let mut rows: Vec<BenchRow> = THREADS
        .iter()
        .map(|&threads| measure(space, reduce, n, s, base, threads, profile))
        .collect();
    let baseline = rows[0].states_per_sec;
    for row in &mut rows {
        row.speedup = row.states_per_sec / baseline.max(1e-9);
    }
    rows
}

fn to_json(rows: &[BenchRow], max_depth: usize, host_threads: usize, skewed: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SCHEMA);
    w.field_str("target", TARGET);
    w.field_u64("n", N as u64);
    w.field_u64("s", S);
    w.field_u64("max_depth", max_depth as u64);
    w.field_u64("host_threads", host_threads as u64);
    w.field_bool("skewed", skewed);
    w.key("rows");
    w.begin_array();
    for row in rows {
        w.begin_object();
        w.field_str("reduce", row.reduce);
        w.field_u64("n", row.n as u64);
        w.field_u64("s", row.s);
        w.field_u64("threads", row.threads as u64);
        w.field_u64("states", row.states);
        w.field_f64("wall_secs", row.wall_secs);
        w.field_f64("states_per_sec", row.states_per_sec);
        w.field_f64("speedup", row.speedup);
        w.key("findings");
        w.begin_array();
        for code in &row.findings {
            w.value_str(code);
        }
        w.end_array();
        w.field_bool("truncated", row.truncated);
        if let Some(flight) = &row.flight {
            w.key("flight");
            w.begin_object();
            w.field_f64("utilization", flight.utilization);
            w.field_u64("duplicate_expansions", flight.duplicate_expansions);
            w.field_u64("route_send", flight.route_send);
            w.field_u64("route_recv", flight.route_recv);
            w.field_u64("local_msgs", flight.local_msgs);
            w.field_u64("queue_full_spins", flight.queue_full_spins);
            w.field_f64("owner_local_ratio", flight.owner_local_ratio);
            w.field_u64("rounds", flight.rounds);
            w.field_bool("fallback", flight.fallback);
            w.field_f64("phase_a_ms", flight.phase_a_ms);
            w.field_f64("replay_ms", flight.replay_ms);
            w.field_f64("phase_b_ms", flight.phase_b_ms);
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_analyzer.json");
    let profile = std::env::args().skip(1).any(|arg| arg == "--profile");
    let large = std::env::args().skip(1).any(|arg| arg == "--large");
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let sweep_top = *THREADS.last().expect("sweep is non-empty");
    let skewed = host_threads < sweep_top;
    let space = scoped_target_space(TARGET, N, S).expect("PeriodicMp is registered");
    println!(
        "# Analyzer throughput — {TARGET} at n = {N}, s = {S}, depth {}\n",
        space.scope.max_depth
    );
    println!(
        "Hash-partitioned ownership exploration vs the serial explorer;\n\
         the findings multiset and the states count must be identical on\n\
         every row. Host reports {host_threads} hardware thread(s) —\n\
         speedups above 1 need more than one.\n"
    );
    println!(
        "| reduce | n | s | threads | states | wall | states/s | speedup | findings | truncated |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---|---|");
    let mut rows = Vec::new();
    for (reduce, base) in [
        ("none", ExploreOpts::default()),
        ("all", ExploreOpts::reduced()),
    ] {
        rows.extend(sweep(&space, reduce, N, S, base, profile));
    }
    if large {
        let large_space =
            scoped_target_space(TARGET, LARGE_N, LARGE_S).expect("PeriodicMp is registered");
        rows.extend(sweep(
            &large_space,
            "all",
            LARGE_N,
            LARGE_S,
            ExploreOpts::reduced(),
            profile,
        ));
    }
    for row in &rows {
        println!(
            "| {} | {} | {} | {} | {} | {:.2} s | {:.0} | {:.2}x | {} | {} |",
            row.reduce,
            row.n,
            row.s,
            row.threads,
            row.states,
            row.wall_secs,
            row.states_per_sec,
            row.speedup,
            row.findings.join("+"),
            row.truncated
        );
    }
    if profile {
        println!("\n## flight recorder (--profile)\n");
        println!(
            "| reduce | n | threads | util | dup | routed (local) | spins | local ratio | rounds | fallback | phase A | replay | phase B |"
        );
        println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|---|---:|---:|---:|");
        for row in &rows {
            let f = row.flight.as_ref().expect("--profile fills every row");
            println!(
                "| {} | {} | {} | {:.0}% | {} | {} ({}) | {} | {:.2} | {} | {} | {:.1} ms | {:.1} ms | {:.1} ms |",
                row.reduce,
                row.n,
                row.threads,
                100.0 * f.utilization,
                f.duplicate_expansions,
                f.route_send,
                f.local_msgs,
                f.queue_full_spins,
                f.owner_local_ratio,
                f.rounds,
                f.fallback,
                f.phase_a_ms,
                f.replay_ms,
                f.phase_b_ms,
            );
        }
    }
    let mut fatal = false;
    // Correctness gates: neither the verdict nor the states count may
    // depend on the thread count — `states(threads=N) ==
    // states(threads=1)` is the ownership explorer's headline invariant.
    let labels: Vec<(&str, usize)> = {
        let mut seen = Vec::new();
        for row in &rows {
            if !seen.contains(&(row.reduce, row.n)) {
                seen.push((row.reduce, row.n));
            }
        }
        seen
    };
    for (reduce, n) in labels {
        let group: Vec<&BenchRow> = rows
            .iter()
            .filter(|r| r.reduce == reduce && r.n == n)
            .collect();
        for row in &group[1..] {
            if row.findings != group[0].findings || row.truncated != group[0].truncated {
                eprintln!(
                    "FINDINGS DIVERGED: reduce={reduce} n={n} threads={} reported {:?}, serial {:?}",
                    row.threads, row.findings, group[0].findings
                );
                fatal = true;
            }
            if row.states != group[0].states {
                eprintln!(
                    "STATES DIVERGED: reduce={reduce} n={n} threads={} visited {} states, serial {}",
                    row.threads, row.states, group[0].states
                );
                fatal = true;
            }
        }
    }
    // Ownership gate: the headline scope fits its depth budget, so the
    // walk must never cut to the serial fallback there. `--profile` rows
    // carry the flag already; otherwise probe the top-thread rows once.
    let fallbacks: Vec<(&'static str, bool)> = if profile {
        rows.iter()
            .filter(|r| r.threads == sweep_top && r.n == N)
            .map(|r| {
                (
                    r.reduce,
                    r.flight.as_ref().expect("--profile fills every row").fallback,
                )
            })
            .collect()
    } else {
        [("none", ExploreOpts::default()), ("all", ExploreOpts::reduced())]
            .into_iter()
            .map(|(reduce, base)| {
                let (_, prof) = explore_flight(
                    &space.roots,
                    N,
                    S,
                    space.scope.max_depth,
                    ExploreOpts {
                        threads: sweep_top,
                        ..base
                    },
                    &mut NullRecorder,
                    &FlightOpts::profiled(),
                );
                let prof = prof.expect("FlightOpts::profiled() always yields a profile");
                (reduce, prof.fallback)
            })
            .collect()
    };
    for (reduce, fell_back) in fallbacks {
        if fell_back {
            eprintln!(
                "FALLBACK: reduce={reduce} at {sweep_top} threads cut to the serial explorer \
                 on the headline scope — the ownership walk must cover it"
            );
            fatal = true;
        }
    }
    if skewed {
        // A 1-core runner oversubscribing an 8-thread sweep measures
        // context-switch overhead, not scaling; say so loudly and keep
        // the speedup gate quiet rather than crying wolf.
        println!(
            "\nSKEWED: host reports {host_threads} hardware thread(s) but the sweep requests \
             up to {sweep_top}; speedup rows measure oversubscription, not scaling, and the \
             speedup gate is skipped (DESIGN.md §15)."
        );
    } else {
        // Fatal on capable hosts: the ownership explorer exists to scale,
        // and a sub-2x curve at 8 threads means it does not.
        for row in rows.iter().filter(|r| r.threads == sweep_top && r.n == N) {
            if row.speedup < SPEEDUP_FLOOR {
                eprintln!(
                    "SPEEDUP GATE: reduce={} speedup at {} threads is {:.2}x < {:.2}x on a \
                     {host_threads}-thread host",
                    row.reduce, row.threads, row.speedup, SPEEDUP_FLOOR
                );
                fatal = true;
            }
        }
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(
            &path,
            to_json(&rows, space.scope.max_depth, host_threads, skewed),
        ) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("\nwrote {}", path.display());
    }
    if fatal {
        std::process::exit(1);
    }
}
