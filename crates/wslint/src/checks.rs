//! The seven WSxxx checks over the lexed workspace.
//!
//! All checks operate on the comment-stripped token stream of non-test
//! code (`#[cfg(test)]` modules and `#[test]` fns are exempt from every
//! source discipline — a panic in a test *is* the failure report, and
//! test harnesses may use wall clocks and unbounded channels freely).
//! Findings are suppressed by `// wslint: allow(wsNNN): reason`
//! annotations on the offending line.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lexer::{Token, TokenKind};
use crate::report::{Finding, Report, WsCode};
use crate::source::{load, SourceFile};

/// Runs every check under `config` and returns the sorted report.
///
/// # Errors
///
/// Returns an error string when the root cannot be walked (registry
/// files that are absent merely leave their stats counters at zero —
/// the workspace self-test pins them nonzero).
pub fn run(config: &Config) -> Result<Report, String> {
    let mut report = Report::default();
    let files = walk_sources(&config.root)?;
    let mut sources = Vec::new();
    for path in files {
        let file = load(&config.root, path.clone())
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        sources.push(file);
    }
    report.stats.files_scanned = sources.len();
    for file in &sources {
        ws001_wall_clock(config, file, &mut report);
        ws002_unbounded_channel(file, &mut report);
        ws004_panic_path(config, file, &mut report);
    }
    ws003_lock_order(&sources, &mut report);
    ws005_ws006_lint_registry(config, &mut report)?;
    ws007_metric_registry(config, &sources, &mut report)?;
    report.sort();
    Ok(report)
}

/// Directory names never descended into: build output, vendored stubs,
/// and test-only trees (integration tests, fixtures, examples and
/// benches are exempt from the source disciplines wholesale).
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    "tests",
    "examples",
    "benches",
    "fixtures",
    "node_modules",
];

fn walk_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn is_punct(tok: Option<&Token>, text: &str) -> bool {
    tok.is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(tok: Option<&Token>, text: &str) -> bool {
    tok.is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn push_unless_allowed(
    file: &SourceFile,
    report: &mut Report,
    code: WsCode,
    line: u32,
    msg: String,
) {
    if file.allowed(code.lower(), line) {
        return;
    }
    report.findings.push(Finding {
        code,
        file: file.rel_path.clone(),
        line,
        message: msg,
    });
}

// ---------------------------------------------------------------- WS001

/// Wall-clock discipline: `Instant::now` / `SystemTime::now` only in the
/// allowlisted timing modules, so nominal-time recording (DESIGN.md §16)
/// cannot silently regress into measured-time recording.
fn ws001_wall_clock(config: &Config, file: &SourceFile, report: &mut Report) {
    if Config::matches(&file.rel_path, &config.wallclock_allow) {
        return;
    }
    let code: Vec<&Token> = file.non_test_code().collect();
    for i in 0..code.len() {
        let clock = match code[i].text.as_str() {
            "Instant" | "SystemTime" if code[i].kind == TokenKind::Ident => &code[i].text,
            _ => continue,
        };
        if is_punct(code.get(i + 1).copied(), ":")
            && is_punct(code.get(i + 2).copied(), ":")
            && is_ident(code.get(i + 3).copied(), "now")
        {
            let line = code[i].line;
            push_unless_allowed(
                file,
                report,
                WsCode::Ws001,
                line,
                format!(
                    "raw wall-clock read `{clock}::now` outside the allowlisted timing modules; \
                     record nominal time (DESIGN.md §16) or annotate with \
                     `// wslint: allow(ws001): <reason>`"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- WS002

/// Unbounded channels: `std::sync::mpsc::channel` (call *or* import) is
/// forbidden in non-test code — bounded `sync_channel` egress is the
/// service's backpressure discipline.
fn ws002_unbounded_channel(file: &SourceFile, report: &mut Report) {
    let code: Vec<&Token> = file.non_test_code().collect();
    for i in 0..code.len() {
        if is_ident(code.get(i).copied(), "mpsc")
            && is_punct(code.get(i + 1).copied(), ":")
            && is_punct(code.get(i + 2).copied(), ":")
            && is_ident(code.get(i + 3).copied(), "channel")
        {
            let line = code[i + 3].line;
            push_unless_allowed(
                file,
                report,
                WsCode::Ws002,
                line,
                "unbounded `mpsc::channel` in non-test code; use a bounded `sync_channel` \
                 (pick and document a capacity) so a slow consumer exerts backpressure \
                 instead of growing an unbounded queue"
                    .to_owned(),
            );
        }
    }
}

// ---------------------------------------------------------------- WS004

/// Panic-path audit: `unwrap`/`expect`/`panic!` in resident runtime code
/// requires an inline justification annotation.
fn ws004_panic_path(config: &Config, file: &SourceFile, report: &mut Report) {
    if !Config::matches(&file.rel_path, &config.panic_scope) {
        return;
    }
    let code: Vec<&Token> = file.non_test_code().collect();
    for i in 0..code.len() {
        let (line, what) = if is_punct(code.get(i).copied(), ".")
            && (is_ident(code.get(i + 1).copied(), "unwrap")
                || is_ident(code.get(i + 1).copied(), "expect"))
            && is_punct(code.get(i + 2).copied(), "(")
        {
            (code[i + 1].line, format!(".{}()", code[i + 1].text))
        } else if is_ident(code.get(i).copied(), "panic")
            && is_punct(code.get(i + 1).copied(), "!")
            && is_punct(code.get(i + 2).copied(), "(")
        {
            (code[i].line, "panic!".to_owned())
        } else {
            continue;
        };
        push_unless_allowed(
            file,
            report,
            WsCode::Ws004,
            line,
            format!(
                "`{what}` on a resident runtime path; return a typed error or justify with \
                 `// wslint: allow(ws004): <reason>`"
            ),
        );
    }
}

// ---------------------------------------------------------------- WS003

/// One lock acquisition while other guards are live.
#[derive(Debug, Clone)]
struct LockEdge {
    from: String,
    to: String,
    file: String,
    line: u32,
    note: String,
}

#[derive(Debug, Default)]
struct FnLocks {
    /// Locks this fn acquires directly: (name, representative line, file).
    direct: Vec<(String, u32, String)>,
    /// Calls made while holding locks: (held names, callee, line, file).
    calls: Vec<(Vec<String>, String, u32, String)>,
}

/// Lock-order analysis: builds a per-crate acquired-before graph from
/// per-function lock-acquisition scopes (guard liveness approximated at
/// the statement/block level), propagates acquisitions through the
/// intra-crate call graph by callee name, and reports every cycle as a
/// potential deadlock.
fn ws003_lock_order(sources: &[SourceFile], report: &mut Report) {
    // Group files per crate: the workspace's lock invariants are
    // per-subsystem, and per-crate call-graph matching by bare fn name
    // stays precise enough to be useful.
    let mut crates: BTreeMap<String, Vec<&SourceFile>> = BTreeMap::new();
    for file in sources {
        let crate_name = crate_of(&file.rel_path);
        crates.entry(crate_name).or_default().push(file);
    }
    for files in crates.values() {
        let mut fns: BTreeMap<String, FnLocks> = BTreeMap::new();
        let mut edges: Vec<LockEdge> = Vec::new();
        let mut annotated: BTreeSet<(String, u32)> = BTreeSet::new();
        for file in files {
            scan_file_locks(file, &mut fns, &mut edges);
            for ann in &file.annotations {
                if ann.code == "ws003" {
                    for &line in &ann.covers {
                        annotated.insert((file.rel_path.clone(), line));
                    }
                }
            }
        }
        // Transitive lock sets per fn (fixpoint over the call graph).
        let mut closure: BTreeMap<String, BTreeSet<String>> = fns
            .iter()
            .map(|(name, info)| {
                (
                    name.clone(),
                    info.direct.iter().map(|(l, _, _)| l.clone()).collect(),
                )
            })
            .collect();
        loop {
            let mut changed = false;
            for (name, info) in &fns {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for (_, callee, _, _) in &info.calls {
                    if let Some(locks) = closure.get(callee) {
                        add.extend(locks.iter().cloned());
                    }
                }
                let set = closure.entry(name.clone()).or_default();
                for lock in add {
                    changed |= set.insert(lock);
                }
            }
            if !changed {
                break;
            }
        }
        // Call-graph edges: held locks → everything the callee acquires.
        for info in fns.values() {
            for (held, callee, line, file) in &info.calls {
                let Some(acquired) = closure.get(callee) else {
                    continue;
                };
                for from in held {
                    for to in acquired {
                        if from != to {
                            edges.push(LockEdge {
                                from: from.clone(),
                                to: to.clone(),
                                file: file.clone(),
                                line: *line,
                                note: format!("via call to `{callee}`"),
                            });
                        }
                    }
                }
            }
        }
        report.stats.lock_edges += edges.len();
        report_cycles(&edges, &annotated, report);
    }
}

fn crate_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_owned();
        }
    }
    "(root)".to_owned()
}

/// Cycle detection over the acquired-before graph. Every distinct cycle
/// (as a canonical node set) is reported once, anchored on one of its
/// acquisition edges.
fn report_cycles(edges: &[LockEdge], annotated: &BTreeSet<(String, u32)>, report: &mut Report) {
    let mut adjacency: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for edge in edges {
        adjacency.entry(edge.from.as_str()).or_default().push(edge);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: BTreeSet<&str> = edges
        .iter()
        .flat_map(|e| [e.from.as_str(), e.to.as_str()])
        .collect();
    for &start in &nodes {
        // DFS from each node looking for a path back to it.
        let mut stack: Vec<(&str, Vec<&LockEdge>)> = vec![(start, Vec::new())];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for edge in adjacency.get(node).into_iter().flatten() {
                if edge.to == start {
                    let mut cycle_edges = path.clone();
                    cycle_edges.push(edge);
                    let mut key: Vec<String> = cycle_edges.iter().map(|e| e.from.clone()).collect();
                    key.sort();
                    if !reported.insert(key) {
                        continue;
                    }
                    if cycle_edges
                        .iter()
                        .any(|e| annotated.contains(&(e.file.clone(), e.line)))
                    {
                        continue;
                    }
                    let order: Vec<String> = cycle_edges
                        .iter()
                        .map(|e| e.from.clone())
                        .chain(std::iter::once(start.to_owned()))
                        .collect();
                    let spans: Vec<String> = cycle_edges
                        .iter()
                        .map(|e| {
                            let note = if e.note.is_empty() {
                                String::new()
                            } else {
                                format!(" ({})", e.note)
                            };
                            format!("`{}`→`{}` at {}:{}{}", e.from, e.to, e.file, e.line, note)
                        })
                        .collect();
                    report.findings.push(Finding {
                        code: WsCode::Ws003,
                        file: cycle_edges[0].file.clone(),
                        line: cycle_edges[0].line,
                        message: format!(
                            "lock-order cycle {} — potential deadlock; edges: {}",
                            order.join(" → "),
                            spans.join(", ")
                        ),
                    });
                } else if visited.insert(edge.to.as_str()) {
                    let mut next = path.clone();
                    next.push(edge);
                    stack.push((edge.to.as_str(), next));
                }
            }
        }
    }
}

/// Guard-liveness scopes for the per-function scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Dies at the end of the current statement.
    Stmt,
    /// Dies when the block opened at this depth closes.
    Block(usize),
    /// Acquired in an `if let`/`while let`/`match` header; becomes
    /// `Block` when the construct's brace opens.
    PendingBlock,
}

#[derive(Debug, Clone)]
struct Guard {
    name: String,
    path: String,
    var: Option<String>,
    scope: Scope,
}

/// Receivers whose `.lock()` is not a `Mutex` (std stream handles).
const NOT_A_MUTEX: &[&str] = &["stdin", "stdout", "stderr"];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "break", "continue", "let", "fn",
    "move", "in", "as", "ref", "mut", "use", "pub", "impl", "struct", "enum", "where", "unsafe",
];

fn scan_file_locks(
    file: &SourceFile,
    fns: &mut BTreeMap<String, FnLocks>,
    edges: &mut Vec<LockEdge>,
) {
    let code: Vec<&Token> = file.non_test_code().collect();
    let mut i = 0;
    while i < code.len() {
        if is_ident(code.get(i).copied(), "fn")
            && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let name = code[i + 1].text.clone();
            // The body starts at the first `{` after the signature.
            let mut j = i + 2;
            let mut body_start = None;
            while j < code.len() {
                match code[j].text.as_str() {
                    "{" if code[j].kind == TokenKind::Punct => {
                        body_start = Some(j);
                        break;
                    }
                    ";" if code[j].kind == TokenKind::Punct => break, // trait decl
                    _ => j += 1,
                }
            }
            let Some(start) = body_start else {
                i = j + 1;
                continue;
            };
            let mut depth = 0usize;
            let mut end = start;
            while end < code.len() {
                if code[end].kind == TokenKind::Punct {
                    match code[end].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                end += 1;
            }
            let info = fns.entry(name).or_default();
            scan_body(file, &code[start..=end.min(code.len() - 1)], info, edges);
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

#[allow(clippy::too_many_lines)]
fn scan_body(file: &SourceFile, body: &[&Token], info: &mut FnLocks, edges: &mut Vec<LockEdge>) {
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt_first: Option<String> = None; // first ident of the statement
    let mut let_var: Option<String> = None;
    let mut i = 0;
    while i < body.len() {
        let tok = body[i];
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "{" => {
                    depth += 1;
                    for g in &mut guards {
                        if g.scope == Scope::PendingBlock {
                            g.scope = Scope::Block(depth);
                        }
                    }
                    stmt_first = None;
                    let_var = None;
                }
                "}" => {
                    guards.retain(|g| match g.scope {
                        Scope::Block(d) => d < depth,
                        Scope::Stmt | Scope::PendingBlock => false,
                    });
                    depth = depth.saturating_sub(1);
                    stmt_first = None;
                    let_var = None;
                }
                ";" => {
                    guards.retain(|g| g.scope != Scope::Stmt);
                    stmt_first = None;
                    let_var = None;
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if tok.kind == TokenKind::Ident {
            if stmt_first.is_none() {
                stmt_first = Some(tok.text.clone());
            }
            if stmt_first.as_deref() == Some("let")
                && let_var.is_none()
                && tok.text != "let"
                && tok.text != "mut"
                && tok.text != "ref"
            {
                let_var = Some(tok.text.clone());
            }
            // `drop(guard)` releases early.
            if tok.text == "drop"
                && is_punct(body.get(i + 1).copied(), "(")
                && body.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                && is_punct(body.get(i + 3).copied(), ")")
            {
                let dropped = &body[i + 2].text;
                guards.retain(|g| g.var.as_deref() != Some(dropped.as_str()));
                i += 4;
                continue;
            }
            // Lock acquisition: `.lock()` / `.read()` / `.write()` with
            // empty parens (io::Read::read takes a buffer, so the empty
            // parens distinguish RwLock reads from stream reads).
            // `try_lock`/`try_read`/`try_write` never block and cannot
            // deadlock, so they are not acquisitions here.
            let is_acquire = matches!(tok.text.as_str(), "lock" | "read" | "write")
                && i >= 1
                && is_punct(body.get(i - 1).copied(), ".")
                && is_punct(body.get(i + 1).copied(), "(")
                && is_punct(body.get(i + 2).copied(), ")");
            if is_acquire {
                if let Some((name, path)) = receiver_of(body, i - 1) {
                    if !NOT_A_MUTEX.contains(&name.as_str()) {
                        let scope = match stmt_first.as_deref() {
                            Some("let") => Scope::Block(depth),
                            Some("if" | "while" | "match" | "for") => Scope::PendingBlock,
                            _ => Scope::Stmt,
                        };
                        for held in &guards {
                            // A self-edge is only a (re-entrancy) bug
                            // when it is literally the same lock path.
                            if held.name == name && held.path != path {
                                continue;
                            }
                            edges.push(LockEdge {
                                from: held.name.clone(),
                                to: name.clone(),
                                file: file.rel_path.clone(),
                                line: tok.line,
                                note: String::new(),
                            });
                        }
                        info.direct
                            .push((name.clone(), tok.line, file.rel_path.clone()));
                        guards.push(Guard {
                            name,
                            path,
                            var: if scope == Scope::Block(depth) {
                                let_var.clone()
                            } else {
                                None
                            },
                            scope,
                        });
                        i += 3;
                        continue;
                    }
                }
            }
            // A call while holding locks feeds the call-graph pass.
            // Macros (`name!(…)`) are not fns; skip them.
            if is_punct(body.get(i + 1).copied(), "(")
                && !KEYWORDS.contains(&tok.text.as_str())
                && !guards.is_empty()
            {
                let held: Vec<String> = guards.iter().map(|g| g.name.clone()).collect();
                info.calls
                    .push((held, tok.text.clone(), tok.line, file.rel_path.clone()));
            }
            if is_punct(body.get(i + 1).copied(), "!") {
                // skip macro bang so `name!(` is not seen as a call
                i += 2;
                continue;
            }
        }
        i += 1;
    }
}

/// Walks backwards from the `.` before `lock`/`read`/`write` to name the
/// receiver: the final field ident of a `a.b.c` chain, or the method
/// name of a `recv()`-style call. Returns `(name, full_path_text)`.
fn receiver_of(body: &[&Token], dot: usize) -> Option<(String, String)> {
    if dot == 0 {
        return None;
    }
    let mut j = dot - 1;
    let prev = body[j];
    match prev.kind {
        TokenKind::Ident => {
            // Walk the `a.b.c` chain backwards for the path text.
            let name = prev.text.clone();
            let mut parts = vec![prev.text.clone()];
            while j >= 2
                && is_punct(body.get(j - 1).copied(), ".")
                && body.get(j - 2).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                parts.push(body[j - 2].text.clone());
                j -= 2;
            }
            parts.reverse();
            Some((name, parts.join(".")))
        }
        TokenKind::Punct if prev.text == ")" => {
            // `self.stripe(key).lock()` — name the method.
            let mut depth = 0usize;
            loop {
                let t = body.get(j)?;
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                j = j.checked_sub(1)?;
            }
            let method = body.get(j.checked_sub(1)?)?;
            if method.kind == TokenKind::Ident {
                Some((method.text.clone(), format!("{}()", method.text)))
            } else {
                None
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------- WS005/WS006

/// Lint-code registry: every `LintCode` variant carries a stable SAxxx
/// mapping and a paper-section (§) doc reference (WS005), and every
/// SAxxx code has `saXXX_positive_*` / `saXXX_negative_*` tests (WS006).
/// Exact Rust ports of the awk/grep gates `static-analysis.sh` used to
/// carry (steps 3–4).
fn ws005_ws006_lint_registry(config: &Config, report: &mut Report) -> Result<(), String> {
    let diag_abs = config.root.join(&config.diag_path);
    if !diag_abs.is_file() {
        return Ok(()); // fixture root without a lint registry
    }
    let text = std::fs::read_to_string(&diag_abs)
        .map_err(|e| format!("reading {}: {e}", diag_abs.display()))?;
    let tokens = crate::lexer::lex(&text);
    // Variants of `pub enum LintCode`, with their doc comments.
    let mut variants: Vec<(String, u32, bool)> = Vec::new(); // (name, line, doc_has_section)
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident
            && tokens[i].text == "enum"
            && is_ident(tokens.get(i + 1), "LintCode")
        {
            // Find the opening brace, then idents followed by `,` at
            // depth 1 are the variants.
            let mut j = i + 2;
            while j < tokens.len() && !is_punct(tokens.get(j), "{") {
                j += 1;
            }
            let mut depth = 0usize;
            let mut doc_has_section = false;
            while j < tokens.len() {
                let t = &tokens[j];
                match t.kind {
                    TokenKind::LineComment if t.text.starts_with("///") && t.text.contains('§') => {
                        doc_has_section = true;
                    }
                    TokenKind::Punct => match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    },
                    TokenKind::Ident if depth == 1 => {
                        if t.text.chars().next().is_some_and(char::is_uppercase)
                            && is_punct(tokens.get(j + 1), ",")
                        {
                            variants.push((t.text.clone(), t.line, doc_has_section));
                        }
                        doc_has_section = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    // Mapping arms: `LintCode::V => "SAxxx"`.
    let code_tokens: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut mapped: BTreeMap<String, String> = BTreeMap::new(); // variant -> SAxxx
    for i in 0..code_tokens.len() {
        if is_ident(code_tokens.get(i).copied(), "LintCode")
            && is_punct(code_tokens.get(i + 1).copied(), ":")
            && is_punct(code_tokens.get(i + 2).copied(), ":")
            && code_tokens
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && is_punct(code_tokens.get(i + 4).copied(), "=")
            && is_punct(code_tokens.get(i + 5).copied(), ">")
            && code_tokens
                .get(i + 6)
                .is_some_and(|t| t.kind == TokenKind::Str && is_sa_code(&t.text))
        {
            mapped.insert(
                code_tokens[i + 3].text.clone(),
                code_tokens[i + 6].text.clone(),
            );
        }
    }
    report.stats.lint_variants = variants.len();
    for (variant, line, has_section) in &variants {
        if !mapped.contains_key(variant) {
            report.findings.push(Finding {
                code: WsCode::Ws005,
                file: config.diag_path.clone(),
                line: *line,
                message: format!(
                    "LintCode::{variant} has no stable SAxxx code-string mapping in code()"
                ),
            });
        }
        if !has_section {
            report.findings.push(Finding {
                code: WsCode::Ws005,
                file: config.diag_path.clone(),
                line: *line,
                message: format!(
                    "LintCode::{variant} lacks a paper-section (§) reference in its doc comment"
                ),
            });
        }
    }
    // WS006: positive+negative test fns per code.
    let codes: BTreeSet<&String> = mapped.values().collect();
    report.stats.registry_codes = codes.len();
    let mut test_fns: BTreeSet<String> = BTreeSet::new();
    for dir in &config.registry_test_dirs {
        let dir_abs = config.root.join(dir);
        if !dir_abs.is_dir() {
            continue;
        }
        for path in walk_all_rs(&dir_abs)? {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let toks = crate::lexer::lex(&text);
            for w in 0..toks.len().saturating_sub(1) {
                if toks[w].kind == TokenKind::Ident
                    && toks[w].text == "fn"
                    && toks[w + 1].kind == TokenKind::Ident
                {
                    test_fns.insert(toks[w + 1].text.clone());
                }
            }
        }
    }
    for code in codes {
        let lower = code.to_ascii_lowercase();
        for direction in ["positive", "negative"] {
            let prefix = format!("{lower}_{direction}");
            if !test_fns.iter().any(|f| f.starts_with(&prefix)) {
                report.findings.push(Finding {
                    code: WsCode::Ws006,
                    file: config.diag_path.clone(),
                    line: 0,
                    message: format!(
                        "{code} has no {direction} test (expected a fn named {prefix}_*)"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Walks *every* `.rs` file under `dir`, including tests directories
/// (WS006 must see the test fns the main walk deliberately skips).
fn walk_all_rs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn is_sa_code(text: &str) -> bool {
    text.len() == 5 && text.starts_with("SA") && text[2..].bytes().all(|b| b.is_ascii_digit())
}

// ---------------------------------------------------------------- WS007

/// Metric registry: every `METRIC_NAMES` entry must be documented in
/// DESIGN.md §15, and every `serve.*` string the service emits must be
/// registered in `METRIC_NAMES`. Exact-match port of static-analysis.sh
/// step 5 — the old `serve\.[a-z_]+` grep truncated digit-bearing names
/// (`serve.sessions_shed2` matched as `serve.sessions_shed` and passed
/// silently); the lexer compares whole string literals.
fn ws007_metric_registry(
    config: &Config,
    sources: &[SourceFile],
    report: &mut Report,
) -> Result<(), String> {
    let metrics_abs = config.root.join(&config.metrics_path);
    if !metrics_abs.is_file() {
        return Ok(()); // fixture root without a metric registry
    }
    let text = std::fs::read_to_string(&metrics_abs)
        .map_err(|e| format!("reading {}: {e}", metrics_abs.display()))?;
    let tokens = crate::lexer::lex(&text);
    let code_tokens: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut names: Vec<(String, u32)> = Vec::new();
    let mut i = 0;
    while i < code_tokens.len() {
        // Anchor on the declaration (`const METRIC_NAMES: &[&str] = &[…]`)
        // and skip past `=` before looking for `[` — otherwise the `[` in
        // the *type* annotation terminates the scan before any string.
        if is_ident(code_tokens.get(i).copied(), "const")
            && is_ident(code_tokens.get(i + 1).copied(), "METRIC_NAMES")
        {
            let mut j = i + 2;
            while j < code_tokens.len() && !is_punct(code_tokens.get(j).copied(), "=") {
                j += 1;
            }
            while j < code_tokens.len() && !is_punct(code_tokens.get(j).copied(), "[") {
                j += 1;
            }
            j += 1;
            while j < code_tokens.len() && !is_punct(code_tokens.get(j).copied(), "]") {
                if code_tokens[j].kind == TokenKind::Str {
                    names.push((code_tokens[j].text.clone(), code_tokens[j].line));
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    report.stats.metric_names = names.len();
    // Direction 1: every registered name documented in DESIGN.md §15.
    let design_abs = config.root.join(&config.design_path);
    let design = std::fs::read_to_string(&design_abs).unwrap_or_default();
    let section: String = {
        let mut in_section = false;
        let mut buf = String::new();
        for line in design.lines() {
            if line.starts_with("## 15.") {
                in_section = true;
                continue;
            }
            if in_section && line.starts_with("## ") {
                break;
            }
            if in_section {
                buf.push_str(line);
                buf.push('\n');
            }
        }
        buf
    };
    for (name, line) in &names {
        if !section.contains(&format!("`{name}`")) {
            report.findings.push(Finding {
                code: WsCode::Ws007,
                file: config.metrics_path.clone(),
                line: *line,
                message: format!(
                    "metric `{name}` is in METRIC_NAMES but not documented in {} §15",
                    config.design_path
                ),
            });
        }
    }
    // Direction 2: every emitted `serve.*` string is registered.
    let registered: BTreeSet<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
    let serve_prefix = format!("{}/", config.serve_src.trim_end_matches('/'));
    for file in sources {
        if !file.rel_path.starts_with(&serve_prefix) {
            continue;
        }
        let mut count = 0usize;
        for tok in file.non_test_code() {
            if tok.kind == TokenKind::Str && tok.text.starts_with("serve.") {
                count += 1;
                if !registered.contains(tok.text.as_str()) {
                    push_unless_allowed(
                        file,
                        report,
                        WsCode::Ws007,
                        tok.line,
                        format!(
                            "emitted metric `{}` is not registered in METRIC_NAMES ({})",
                            tok.text, config.metrics_path
                        ),
                    );
                }
            }
        }
        report.stats.serve_metrics_emitted += count;
    }
    Ok(())
}
