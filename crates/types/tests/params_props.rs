//! Property-based tests for the model-parameter types: the integer
//! logarithms behind Table 1's communication terms, and the per-model
//! validation of `KnownBounds`.

use proptest::prelude::*;
use session_types::{Dur, KnownBounds, SessionSpec, TimingModel};

proptest! {
    /// `⌊log_b n⌋` is the true integer logarithm: `b^log <= n < b^(log+1)`.
    #[test]
    fn log_b_n_floor_is_exact(n in 1usize..100_000, b in 2usize..12) {
        let spec = SessionSpec::new(1, n, b).unwrap();
        let log = spec.log_b_n_floor();
        let pow = (b as u128).pow(log);
        prop_assert!(pow <= n as u128, "b^{log} = {pow} > {n}");
        prop_assert!((b as u128).pow(log + 1) > n as u128);
    }

    /// `⌊log_{2b-1}(2n-1)⌋` likewise.
    #[test]
    fn contamination_depth_is_exact(n in 1usize..100_000, b in 2usize..12) {
        let spec = SessionSpec::new(1, n, b).unwrap();
        let depth = spec.contamination_depth();
        let base = (2 * b - 1) as u128;
        let target = (2 * n - 1) as u128;
        prop_assert!(base.pow(depth) <= target);
        prop_assert!(base.pow(depth + 1) > target);
    }

    /// Every valid constructor round-trips its constants, and
    /// `delay_uncertainty` is consistent.
    #[test]
    fn known_bounds_roundtrip(c1 in 1i128..10, extra in 0i128..10, d1 in 0i128..10, du in 0i128..10) {
        let c1d = Dur::from_int(c1);
        let c2d = Dur::from_int(c1 + extra);
        let d1d = Dur::from_int(d1);
        let d2d = Dur::from_int(d1 + du);

        let sync = KnownBounds::synchronous(c2d, d2d).unwrap();
        prop_assert_eq!(sync.c1(), Some(c2d));
        prop_assert_eq!(sync.c2(), Some(c2d));
        prop_assert_eq!(sync.delay_uncertainty(), Some(Dur::ZERO));

        let periodic = KnownBounds::periodic(d2d).unwrap();
        prop_assert_eq!(periodic.model(), TimingModel::Periodic);
        prop_assert_eq!(periodic.d2(), Some(d2d));

        let semi = KnownBounds::semi_synchronous(c1d, c2d, d2d).unwrap();
        prop_assert_eq!(semi.c1(), Some(c1d));
        prop_assert_eq!(semi.c2(), Some(c2d));
        prop_assert_eq!(semi.d1(), Some(Dur::ZERO));

        let sporadic = KnownBounds::sporadic(c1d, d1d, d2d).unwrap();
        prop_assert_eq!(sporadic.delay_uncertainty(), Some(Dur::from_int(du)));
        prop_assert_eq!(sporadic.c2(), None);
    }

    /// Invalid orderings are always rejected.
    #[test]
    fn inverted_windows_are_rejected(lo in 1i128..10, gap in 1i128..10) {
        let small = Dur::from_int(lo);
        let big = Dur::from_int(lo + gap);
        prop_assert!(KnownBounds::semi_synchronous(big, small, Dur::ZERO).is_err());
        prop_assert!(KnownBounds::sporadic(small, big, small).is_err());
    }
}
