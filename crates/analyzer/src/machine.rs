//! Cloneable state machines mirroring the engines, with an enumerated
//! branch menu at every state.
//!
//! The real engines ([`session_smm::SmEngine`], [`session_mpm::MpEngine`])
//! execute *one* schedule chosen by a [`session_sim::StepSchedule`]. The
//! checker instead needs, at every reachable state, the *set* of admissible
//! next transitions. [`SmMachine`] and [`MpMachine`] reimplement the
//! engines' exact step semantics (variable access and port tagging for
//! shared memory; delivery buffering, broadcast fan-out and event ordering
//! for message passing) over cloneable process values, exposing a flat
//! `0..choice_count()` menu whose entries enumerate: which eligible event
//! fires next (equal-time events may fire in any order), which admissible
//! gap the stepping process's *next* step is scheduled after, and — for a
//! broadcasting message-passing step — which admissible delay each
//! recipient's copy is assigned.
//!
//! Fidelity to the engines is not taken on faith: `replay` re-executes
//! counterexample paths through the real `SmEngine` and compares global
//! states, and the test suite runs differential machine-vs-engine checks.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use rustc_hash::FxHasher;

use session_adversary::naive::{NaiveMpPort, NaiveSmPort};
use session_core::algorithms::{
    AsyncMpPort, AsyncSmPort, PeriodicMpPort, PeriodicSmPort, SemiSyncMpPort, SemiSyncSmPort,
    SporadicMpPort, StepCountingMpPort, StepCountingSmPort, SyncMpPort, SyncSmPort,
};
use session_core::SessionMsg;
use session_mpm::{Envelope, MpProcess};
use session_smm::{Knowledge, RelayProcess, SmProcess, TreeSpec};
use session_types::{Dur, MsgId, PortId, ProcessId, Time, VarId};

/// Every shared-memory process the checker can host, as a cloneable value.
///
/// (The engines take `Box<dyn SmProcess>`, which cannot be cloned; the
/// checker needs cloning to fork a state per branch.)
#[derive(Clone, Debug)]
pub enum SmAlgo {
    /// `A(syn)`: `s` silent steps.
    Sync(SyncSmPort),
    /// `A(p)`: announce step counts, wait to hear everyone.
    Periodic(PeriodicSmPort),
    /// `A(ss)`: step counting or waves, whichever is cheaper.
    SemiSync(SemiSyncSmPort),
    /// `A(a)` (also the sporadic-model algorithm): the wave protocol.
    Async(AsyncSmPort),
    /// A tree-network relay (never idles).
    Relay(RelayProcess),
    /// The silent naive witness.
    Naive(NaiveSmPort),
    /// The step-counting witness with a cheated (halved) block constant.
    CheatStepCounting(StepCountingSmPort),
}

impl SmProcess<Knowledge> for SmAlgo {
    fn target(&self) -> VarId {
        match self {
            SmAlgo::Sync(p) => p.target(),
            SmAlgo::Periodic(p) => p.target(),
            SmAlgo::SemiSync(p) => p.target(),
            SmAlgo::Async(p) => p.target(),
            SmAlgo::Relay(p) => p.target(),
            SmAlgo::Naive(p) => p.target(),
            SmAlgo::CheatStepCounting(p) => p.target(),
        }
    }

    fn step(&mut self, value: &Knowledge) -> Knowledge {
        match self {
            SmAlgo::Sync(p) => p.step(value),
            SmAlgo::Periodic(p) => p.step(value),
            SmAlgo::SemiSync(p) => p.step(value),
            SmAlgo::Async(p) => p.step(value),
            SmAlgo::Relay(p) => p.step(value),
            SmAlgo::Naive(p) => p.step(value),
            SmAlgo::CheatStepCounting(p) => p.step(value),
        }
    }

    fn is_idle(&self) -> bool {
        match self {
            SmAlgo::Sync(p) => p.is_idle(),
            SmAlgo::Periodic(p) => p.is_idle(),
            SmAlgo::SemiSync(p) => p.is_idle(),
            SmAlgo::Async(p) => p.is_idle(),
            SmAlgo::Relay(p) => p.is_idle(),
            SmAlgo::Naive(p) => p.is_idle(),
            SmAlgo::CheatStepCounting(p) => p.is_idle(),
        }
    }
}

/// Every message-passing process the checker can host, as a cloneable
/// value.
#[derive(Clone, Debug)]
pub enum MpAlgo {
    /// `A(syn)`: `s` silent steps.
    Sync(SyncMpPort),
    /// `A(p)`: announce step counts, wait to hear everyone.
    Periodic(PeriodicMpPort),
    /// `A(ss)`: step counting or the wave protocol.
    SemiSync(SemiSyncMpPort),
    /// `A(sp)`: freshness evidence with the waiting constant `B`.
    Sporadic(SporadicMpPort),
    /// `A(a)`: the wave protocol.
    Async(AsyncMpPort),
    /// The silent naive witness.
    Naive(NaiveMpPort),
    /// The silent step-counting arm on its own.
    StepCounting(StepCountingMpPort),
}

impl MpProcess<SessionMsg> for MpAlgo {
    fn step(&mut self, inbox: Vec<Envelope<SessionMsg>>) -> Option<SessionMsg> {
        match self {
            MpAlgo::Sync(p) => p.step(inbox),
            MpAlgo::Periodic(p) => p.step(inbox),
            MpAlgo::SemiSync(p) => p.step(inbox),
            MpAlgo::Sporadic(p) => p.step(inbox),
            MpAlgo::Async(p) => p.step(inbox),
            MpAlgo::Naive(p) => p.step(inbox),
            MpAlgo::StepCounting(p) => p.step(inbox),
        }
    }

    fn is_idle(&self) -> bool {
        match self {
            MpAlgo::Sync(p) => p.is_idle(),
            MpAlgo::Periodic(p) => p.is_idle(),
            MpAlgo::SemiSync(p) => p.is_idle(),
            MpAlgo::Sporadic(p) => p.is_idle(),
            MpAlgo::Async(p) => p.is_idle(),
            MpAlgo::Naive(p) => p.is_idle(),
            MpAlgo::StepCounting(p) => p.is_idle(),
        }
    }
}

impl MpAlgo {
    /// The number of sessions this process *claims* have happened, when the
    /// algorithm maintains such a counter (`A(sp)`'s `session` variable).
    /// The `SA003` invariant: the claim may never exceed the sessions the
    /// independent counter has actually observed (Lemma 6.3).
    pub fn claimed_sessions(&self) -> Option<u64> {
        match self {
            MpAlgo::Sporadic(p) => Some(p.session()),
            _ => None,
        }
    }

    /// Whether this process's state mentions no process identities: its
    /// fingerprint is then invariant under renaming the *other* processes,
    /// and renaming it moves its whole local state unchanged to the new
    /// slot. This is the soundness gate for symmetry reduction — processes
    /// that remember *who* they heard from (`A(p)`'s done-set, `A(a)`'s
    /// knowledge, `A(sp)`'s evidence) break the permutation automorphism,
    /// because their stored ids would need rewriting inside an opaque
    /// fingerprint.
    pub(crate) fn id_free(&self) -> bool {
        match self {
            MpAlgo::Sync(_) | MpAlgo::Naive(_) | MpAlgo::StepCounting(_) => true,
            MpAlgo::SemiSync(p) => matches!(
                p.strategy(),
                session_core::algorithms::MpStrategy::StepCounting
            ),
            MpAlgo::Periodic(_) | MpAlgo::Sporadic(_) | MpAlgo::Async(_) => false,
        }
    }
}

/// How step gaps are chosen.
#[derive(Clone, Debug)]
pub enum GapMode {
    /// Each step independently picks any gap from the scope menu
    /// (synchronous/semi-synchronous/sporadic/asynchronous models; the
    /// synchronous menu has one entry, so the choice is forced).
    PerStep(Vec<Dur>),
    /// Every process was assigned one fixed period at the root of the
    /// exploration (the periodic model: gaps must be one constant per
    /// process).
    FixedPerProcess(Vec<Dur>),
}

impl GapMode {
    fn menu_len(&self) -> usize {
        match self {
            GapMode::PerStep(menu) => menu.len(),
            GapMode::FixedPerProcess(_) => 1,
        }
    }

    fn gap(&self, process: usize, index: usize) -> Dur {
        match self {
            GapMode::PerStep(menu) => menu[index],
            GapMode::FixedPerProcess(periods) => periods[process],
        }
    }
}

/// One schedulable event as the zone walker ([`crate::zones`]) identifies
/// it: *which* event fires, with no concrete firing time — the symbolic
/// walker keeps times in a DBM instead of in the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ZoneEvent {
    /// Process `p`'s (unique) next step.
    Step(usize),
    /// The in-flight delivery with pending sequence `seq`, addressed to
    /// `to`. Sender and payload ride along so the walker can key its memo
    /// on which message each clock tracks (`seq` itself is an enumeration
    /// artifact and must stay out of state identity).
    Deliver {
        /// The pending-queue sequence number identifying the delivery.
        seq: u64,
        /// The recipient.
        to: usize,
        /// The sender.
        from: usize,
        /// The message payload value.
        value: u64,
    },
}

/// What one applied transition did, for the explorer's session counter and
/// lint rules.
#[derive(Clone, Debug)]
pub struct StepInfo {
    /// When the event fired.
    pub time: Time,
    /// The process that stepped (or received the delivery).
    pub process: ProcessId,
    /// The port tag of the step, exactly as the engine's trace would tag
    /// it (`None` for relays and deliveries).
    pub port: Option<PortId>,
    /// Whether the process was idle before the event.
    pub was_idle: bool,
    /// Whether the process is idle after the event.
    pub idle_after: bool,
    /// `true` for a process step, `false` for a delivery.
    pub is_process_step: bool,
    /// A shared-variable fan-in violation (`SA002`): more than `b` distinct
    /// processes have now accessed this variable.
    pub b_violation: Option<VarId>,
}

/// The per-exploration-root immutable configuration of an [`SmMachine`],
/// shared by every state forked from that root. Forking a state must not
/// copy any of this — it rides along behind one `Arc`.
#[derive(Debug)]
struct SmStatics {
    gaps: GapMode,
    b: usize,
    n_ports: usize,
}

/// The exhaustive shared-memory machine: mirrors [`session_smm::SmEngine`]
/// over cloneable [`SmAlgo`] processes.
///
/// Every component a transition does *not* touch is interned behind an
/// `Arc`: cloning the machine to fork a branch bumps refcounts instead of
/// deep-copying process states, variable values and accessor sets, and
/// `apply` copies-on-write only the cells it actually mutates
/// ([`Arc::make_mut`]).
#[derive(Clone, Debug)]
pub struct SmMachine {
    algos: Vec<Arc<SmAlgo>>,
    memory: Vec<Arc<Knowledge>>,
    /// Lifetime accessor set per variable (the `b`-bound is on *distinct
    /// processes ever accessing* a variable, as in `SharedMemory`).
    accessors: Vec<Arc<BTreeSet<usize>>>,
    /// Next pending step time per process (each process always has exactly
    /// one pending step).
    due: Vec<Time>,
    statics: Arc<SmStatics>,
}

impl SmMachine {
    /// Builds the machine over the standard tree-network layout (port
    /// process `i` ↔ variable `i` ↔ port `i`, as `build_sm_system` wires
    /// it). `first_steps` are the initial step times (branched over at the
    /// exploration root); `num_vars` is the tree's node count.
    pub fn new(
        algos: Vec<SmAlgo>,
        num_vars: usize,
        b: usize,
        n_ports: usize,
        gaps: GapMode,
        first_steps: Vec<Time>,
    ) -> SmMachine {
        assert_eq!(algos.len(), first_steps.len());
        let empty_value = Arc::new(Knowledge::new());
        let empty_accessors = Arc::new(BTreeSet::new());
        SmMachine {
            memory: vec![empty_value; num_vars],
            accessors: vec![empty_accessors; num_vars],
            due: first_steps,
            algos: algos.into_iter().map(Arc::new).collect(),
            statics: Arc::new(SmStatics { gaps, b, n_ports }),
        }
    }

    /// The processes, for rebuilding a real engine in replay.
    pub fn algos(&self) -> &[Arc<SmAlgo>] {
        &self.algos
    }

    /// Current variable values (replay compares these against the real
    /// engine's global state).
    pub fn memory(&self) -> &[Arc<Knowledge>] {
        &self.memory
    }

    /// Per-process fingerprints, comparable with the engine's.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.algos.iter().map(|a| a.fingerprint()).collect()
    }

    /// The fan-in bound `b`.
    pub fn b(&self) -> usize {
        self.statics.b
    }

    /// The number of ports.
    pub fn n_ports(&self) -> usize {
        self.statics.n_ports
    }

    fn t_min(&self) -> Time {
        *self.due.iter().min().expect("machine has >= 1 process")
    }

    fn eligible(&self) -> Vec<usize> {
        let t = self.t_min();
        (0..self.due.len()).filter(|&p| self.due[p] == t).collect()
    }

    /// The processes whose next step is due at the current instant, in the
    /// order `apply` enumerates them (for the ample-set selector).
    pub(crate) fn eligible_processes(&self) -> Vec<usize> {
        self.eligible()
    }

    /// Gap choices per step (each eligible process's block width in the
    /// flat choice menu).
    pub(crate) fn menu_len(&self) -> usize {
        self.statics.gaps.menu_len()
    }

    /// The variable process `p` will access on its next step.
    pub(crate) fn current_target(&self, p: usize) -> usize {
        self.algos[p].target().index()
    }

    /// Every port process idle (relays never are, and never count).
    pub fn is_quiescent(&self) -> bool {
        (0..self.statics.n_ports).all(|p| self.algos[p].is_idle())
    }

    /// The number of admissible transitions from this state.
    pub fn choice_count(&self) -> usize {
        self.eligible().len() * self.statics.gaps.menu_len()
    }

    /// The step body shared by [`SmMachine::apply`] and the zone walker's
    /// time-free stepping: access the target variable, step the process,
    /// write the result back. Leaves `due` untouched so both callers can
    /// schedule (or symbolically constrain) the next step their own way.
    fn perform_step(&mut self, p: usize, now: Time) -> (StepInfo, VarId) {
        let was_idle = self.algos[p].is_idle();
        let var = self.algos[p].target();
        Arc::make_mut(&mut self.accessors[var.index()]).insert(p);
        let b_violation = (self.accessors[var.index()].len() > self.statics.b).then_some(var);
        let new_value = Arc::make_mut(&mut self.algos[p]).step(&self.memory[var.index()]);
        self.memory[var.index()] = Arc::new(new_value);
        let idle_after = self.algos[p].is_idle();

        // Port tag, exactly as the engine computes it: the access counts as
        // a port step only when the variable is a port *and* the stepping
        // process is its bound port process.
        let port = (var.index() < self.statics.n_ports && p == var.index())
            .then(|| PortId::new(var.index()));

        let info = StepInfo {
            time: now,
            process: ProcessId::new(p),
            port,
            was_idle,
            idle_after,
            is_process_step: true,
            b_violation,
        };
        (info, var)
    }

    /// Applies transition `choice` (must be `< choice_count()`). When
    /// `trace` is given, records the step exactly as the engine would.
    pub fn apply(&mut self, choice: usize, trace: Option<&mut session_sim::Trace>) -> StepInfo {
        let now = self.t_min();
        let per = self.statics.gaps.menu_len();
        let eligible = self.eligible();
        let p = eligible[choice / per];
        let gap_index = choice % per;

        let (info, var) = self.perform_step(p, now);
        self.due[p] = now + self.statics.gaps.gap(p, gap_index);

        if let Some(trace) = trace {
            trace.push(session_sim::TraceEvent {
                time: now,
                process: ProcessId::new(p),
                kind: session_sim::StepKind::VarAccess {
                    var,
                    port: info.port,
                },
                idle_after: info.idle_after,
            });
        }

        info
    }

    /// The initial scheduling windows at the exploration root: each
    /// process's first step fires exactly at its concrete `first_steps`
    /// time (the root already branched over the first-step menu).
    pub(crate) fn initial_windows(&self) -> Vec<(ZoneEvent, Dur, Dur)> {
        self.due
            .iter()
            .enumerate()
            .map(|(p, &t)| (ZoneEvent::Step(p), t.since_origin(), t.since_origin()))
            .collect()
    }

    /// The window (relative to the firing instant) within which process
    /// `p`'s *next* step must fire: the hull of the gap menu, or the
    /// process's fixed period.
    pub(crate) fn gap_window(&self, p: usize) -> (Dur, Dur) {
        match &self.statics.gaps {
            GapMode::PerStep(menu) => {
                let lo = menu
                    .iter()
                    .copied()
                    .reduce(Dur::min)
                    .expect("nonempty menu");
                let hi = menu
                    .iter()
                    .copied()
                    .reduce(Dur::max)
                    .expect("nonempty menu");
                (lo, hi)
            }
            GapMode::FixedPerProcess(periods) => (periods[p], periods[p]),
        }
    }

    /// Fires process `p`'s step for the zone walker: identical discrete
    /// semantics to [`SmMachine::apply`] (shared body), but no concrete
    /// time and no `due` bookkeeping — the walker's DBM carries the
    /// schedule. The returned events are the clocks to (re)schedule: the
    /// stepping process's own next step.
    pub(crate) fn zone_apply(&mut self, ev: ZoneEvent) -> (StepInfo, Vec<ZoneEvent>) {
        let ZoneEvent::Step(p) = ev else {
            unreachable!("shared-memory machines have no deliveries");
        };
        (self.perform_step(p, Time::ZERO).0, vec![ZoneEvent::Step(p)])
    }

    /// A hash of the discrete control state only: [`SmMachine::state_hash`]
    /// minus the `due` times. This is the common currency between the
    /// explicit explorer and the zone walker (the SA012 cross-check
    /// compares reachable control-hash sets), and part of the zone memo
    /// key.
    pub(crate) fn control_hash(&self) -> u64 {
        let mut hasher = FxHasher::default();
        for algo in &self.algos {
            algo.fingerprint().hash(&mut hasher);
        }
        for value in &self.memory {
            value.hash(&mut hasher);
        }
        for set in &self.accessors {
            set.hash(&mut hasher);
        }
        if let GapMode::FixedPerProcess(periods) = &self.statics.gaps {
            periods.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// A hash of the machine state with times made relative to the next
    /// event, so states that differ only by a time shift coincide.
    pub fn state_hash(&self) -> u64 {
        let mut hasher = FxHasher::default();
        let t = self.t_min();
        for algo in &self.algos {
            algo.fingerprint().hash(&mut hasher);
        }
        for value in &self.memory {
            value.hash(&mut hasher);
        }
        for set in &self.accessors {
            set.hash(&mut hasher);
        }
        for &due in &self.due {
            (due - t).hash(&mut hasher);
        }
        if let GapMode::FixedPerProcess(periods) = &self.statics.gaps {
            periods.hash(&mut hasher);
        }
        hasher.finish()
    }
}

/// The standard tree-network shared-memory system for `n` ports with
/// fan-in `b`: the given port algorithms (one per port) plus the tree's
/// relay processes, exactly as `session_core::system::build_sm_system`
/// assembles it. Returns the machine's process list and the node count.
pub fn sm_system_algos(port_algos: Vec<SmAlgo>, n: usize, b: usize) -> (Vec<SmAlgo>, usize) {
    assert_eq!(port_algos.len(), n);
    let tree = TreeSpec::build(n, b);
    let mut algos = port_algos;
    for relay in tree.relay_processes() {
        algos.push(SmAlgo::Relay(relay));
    }
    (algos, tree.num_nodes())
}

/// One pending message-passing event, mirroring the engine's queue entry.
#[derive(Clone, Debug)]
struct Pending {
    time: Time,
    /// Insertion sequence — only used to keep enumeration order stable
    /// (the engine's FIFO tie-break is itself one of the branched orders).
    seq: u64,
    kind: PendingKind,
}

#[derive(Clone, Debug)]
enum PendingKind {
    Step(usize),
    Deliver {
        to: usize,
        from: usize,
        value: u64,
        /// The trace message id, assigned in send order during replay so
        /// deliveries can be recorded against the right send.
        msg: Option<MsgId>,
    },
}

/// One eligible event of an [`MpMachine`], as the ample-set selector sees
/// it: the event kind plus the width of its contiguous block in the flat
/// choice menu.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EligibleEvent {
    /// What fires.
    pub(crate) kind: EligibleKind,
    /// How many flat choices the event owns (gap × delay-combo fan-out
    /// for broadcasting steps).
    pub(crate) weight: usize,
}

/// The kind of an eligible MP event.
#[derive(Clone, Copy, Debug)]
pub(crate) enum EligibleKind {
    /// Process `process` takes its step (`broadcasts` when that step will
    /// send with the current inbox).
    Step {
        /// The stepping process.
        process: usize,
        /// Whether the step broadcasts.
        broadcasts: bool,
    },
    /// A buffered message is delivered to `to`'s inbox.
    Deliver {
        /// The recipient.
        to: usize,
    },
}

/// The per-exploration-root immutable configuration of an [`MpMachine`],
/// shared by every state forked from that root (see [`SmStatics`]).
#[derive(Debug)]
struct MpStatics {
    gaps: GapMode,
    delays: Vec<Dur>,
    /// The shared empty inbox value: consuming an inbox swaps this in, so
    /// the steady state ("most inboxes empty most of the time") costs no
    /// allocation per step.
    empty_inbox: Arc<Vec<Envelope<SessionMsg>>>,
}

/// The exhaustive message-passing machine: mirrors
/// [`session_mpm::MpEngine`] over cloneable [`MpAlgo`] processes. All `n`
/// processes are port processes (`p`'s buffer is port `p`), as
/// `build_mp_system` wires it.
///
/// Like [`SmMachine`], per-process states and inboxes are interned behind
/// `Arc`s: forking a branch is refcount traffic, and `apply` copies only
/// the one process (and one inbox) the event touches.
#[derive(Clone, Debug)]
pub struct MpMachine {
    algos: Vec<Arc<MpAlgo>>,
    inboxes: Vec<Arc<Vec<Envelope<SessionMsg>>>>,
    pending: Vec<Pending>,
    next_seq: u64,
    statics: Arc<MpStatics>,
    n: usize,
}

impl MpMachine {
    /// Builds the machine; `first_steps` are the initial step times
    /// (branched over at the exploration root).
    pub fn new(
        algos: Vec<MpAlgo>,
        gaps: GapMode,
        delays: Vec<Dur>,
        first_steps: Vec<Time>,
    ) -> MpMachine {
        assert!(!delays.is_empty(), "delay menu must be nonempty");
        let n = algos.len();
        assert_eq!(n, first_steps.len());
        let pending = first_steps
            .iter()
            .enumerate()
            .map(|(p, &time)| Pending {
                time,
                seq: p as u64,
                kind: PendingKind::Step(p),
            })
            .collect();
        let empty_inbox = Arc::new(Vec::new());
        MpMachine {
            inboxes: vec![Arc::clone(&empty_inbox); n],
            pending,
            next_seq: n as u64,
            algos: algos.into_iter().map(Arc::new).collect(),
            statics: Arc::new(MpStatics {
                gaps,
                delays,
                empty_inbox,
            }),
            n,
        }
    }

    /// Per-process fingerprints.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.algos.iter().map(|a| a.fingerprint()).collect()
    }

    /// The largest session count any process currently claims, if any
    /// process maintains one.
    pub fn claimed_sessions_max(&self) -> Option<u64> {
        self.algos.iter().filter_map(|a| a.claimed_sessions()).max()
    }

    /// Every (port) process idle.
    pub fn is_quiescent(&self) -> bool {
        self.algos.iter().all(|a| a.is_idle())
    }

    fn t_min(&self) -> Time {
        self.pending
            .iter()
            .map(|e| e.time)
            .min()
            .expect("each process always has a pending step")
    }

    /// Indices into `pending` of the events eligible to fire now, in
    /// **canonical event order**: sorted by the same `(kind, process,
    /// from, value)` tuple [`MpMachine::state_hash`] canonicalizes
    /// pending events with (every eligible event fires at `t_min`, so
    /// time never discriminates), with the insertion `seq` as the final
    /// tie-break between byte-identical duplicates — which are
    /// interchangeable, so the resulting menu order is a function of the
    /// canonical state, not of the queue history that produced this
    /// representative. That is what lets the memo (and the ownership
    /// explorer's routing) use `state_hash` as a *graph-determining* key:
    /// two machines with equal hashes enumerate identical choice menus
    /// and therefore expand to identical successor lists, so it does not
    /// matter which representative of the equivalence class gets
    /// expanded. With an insertion-order tie-break instead, equal-hash
    /// representatives could present the same events in different menu
    /// orders, and anything order-sensitive downstream (POR's ample
    /// ranges, depth-budget truncation, witness choice paths) would
    /// depend on which representative happened to be reached first.
    fn eligible(&self) -> Vec<usize> {
        let t = self.t_min();
        let mut indices: Vec<usize> = (0..self.pending.len())
            .filter(|&i| self.pending[i].time == t)
            .collect();
        indices.sort_by_key(|&i| {
            let e = &self.pending[i];
            match e.kind {
                PendingKind::Step(p) => (0u8, p, 0, 0u64, e.seq),
                PendingKind::Deliver {
                    to, from, value, ..
                } => (1u8, to, from, value, e.seq),
            }
        });
        indices
    }

    fn delay_combos(&self) -> usize {
        self.statics.delays.len().pow(self.n as u32)
    }

    /// Whether stepping `p` with its current inbox would broadcast
    /// (determines how many delay choices the step carries). Probed on a
    /// scratch clone; `apply` then performs the step for real.
    fn would_broadcast(&self, p: usize) -> bool {
        let mut scratch = (*self.algos[p]).clone();
        scratch.step((*self.inboxes[p]).clone()).is_some()
    }

    fn event_weight(&self, pending_index: usize) -> usize {
        match self.pending[pending_index].kind {
            PendingKind::Deliver { .. } => 1,
            PendingKind::Step(p) => {
                let gaps = self.statics.gaps.menu_len();
                if self.would_broadcast(p) {
                    gaps * self.delay_combos()
                } else {
                    gaps
                }
            }
        }
    }

    /// The number of admissible transitions from this state.
    pub fn choice_count(&self) -> usize {
        self.eligible().iter().map(|&i| self.event_weight(i)).sum()
    }

    /// The eligible events in `apply`'s enumeration order, with each
    /// event's block width in the flat choice menu (for the ample-set
    /// selector: one event owns one contiguous choice range).
    pub(crate) fn eligible_events(&self) -> Vec<EligibleEvent> {
        self.eligible()
            .into_iter()
            .map(|i| {
                let weight = self.event_weight(i);
                let kind = match self.pending[i].kind {
                    PendingKind::Step(p) => EligibleKind::Step {
                        process: p,
                        broadcasts: self.would_broadcast(p),
                    },
                    PendingKind::Deliver { to, .. } => EligibleKind::Deliver { to },
                };
                EligibleEvent { kind, weight }
            })
            .collect()
    }

    /// Whether the delay menu contains zero — a broadcast can then enable
    /// same-instant deliveries.
    pub(crate) fn has_zero_delay(&self) -> bool {
        self.statics.delays.iter().any(|d| d.is_zero())
    }

    /// Number of processes.
    pub(crate) fn num_processes(&self) -> usize {
        self.n
    }

    /// Whether every hosted process is identity-free, so the whole system
    /// is invariant under process permutation (the gate for symmetry
    /// reduction; see [`MpAlgo::id_free`]).
    pub(crate) fn symmetric(&self) -> bool {
        self.algos.iter().all(|a| a.id_free())
    }

    /// Hashes the state as it would look after renaming process `i` to
    /// `sigma[i]` — the same normalization as [`MpMachine::state_hash`]
    /// (relative times, inbox multisets, canonical pending order), with
    /// every process index routed through `sigma`. `sigma = identity`
    /// hashes the same information as `state_hash` does.
    pub(crate) fn hash_permuted<H: Hasher>(&self, sigma: &[usize], hasher: &mut H) {
        debug_assert_eq!(sigma.len(), self.n);
        let mut inverse = vec![0usize; self.n];
        for (old, &new) in sigma.iter().enumerate() {
            inverse[new] = old;
        }
        let t = self.t_min();
        for &old in &inverse {
            self.algos[old].fingerprint().hash(hasher);
        }
        for &old in &inverse {
            let mut entries: Vec<(usize, u64)> = self.inboxes[old]
                .iter()
                .map(|env| (sigma[env.from.index()], env.payload.value))
                .collect();
            entries.sort_unstable();
            entries.hash(hasher);
        }
        let mut canonical: Vec<(Dur, u8, usize, usize, u64)> = self
            .pending
            .iter()
            .map(|e| match e.kind {
                PendingKind::Step(p) => (e.time - t, 0u8, sigma[p], 0, 0),
                PendingKind::Deliver {
                    to, from, value, ..
                } => (e.time - t, 1u8, sigma[to], sigma[from], value),
            })
            .collect();
        canonical.sort();
        canonical.hash(hasher);
        if let GapMode::FixedPerProcess(periods) = &self.statics.gaps {
            for &old in &inverse {
                periods[old].hash(hasher);
            }
        }
    }

    /// The step body shared by [`MpMachine::apply`] and the zone walker's
    /// time-free stepping: consume the inbox (swapping the shared empty
    /// value in — sibling branches usually share pre-consumption inboxes,
    /// in which case the contents are cloned out) and step the process.
    /// Scheduling the resulting deliveries and the next step stays with
    /// the caller. Returns `(received, was_idle, idle_after, outgoing)`.
    fn perform_step(&mut self, p: usize) -> (usize, bool, bool, Option<SessionMsg>) {
        let inbox_cell =
            std::mem::replace(&mut self.inboxes[p], Arc::clone(&self.statics.empty_inbox));
        let inbox = Arc::try_unwrap(inbox_cell).unwrap_or_else(|shared| (*shared).clone());
        let received = inbox.len();
        let was_idle = self.algos[p].is_idle();
        let outgoing = Arc::make_mut(&mut self.algos[p]).step(inbox);
        let idle_after = self.algos[p].is_idle();
        (received, was_idle, idle_after, outgoing)
    }

    /// Applies transition `choice` (must be `< choice_count()`). When
    /// `trace` is given, records the event exactly as the engine would
    /// (sends in recipient order before the step event, delivery records
    /// on arrival).
    pub fn apply(&mut self, choice: usize, mut trace: Option<&mut session_sim::Trace>) -> StepInfo {
        let now = self.t_min();
        let (pending_index, sub) = {
            let mut remaining = choice;
            let mut found = None;
            for i in self.eligible() {
                let weight = self.event_weight(i);
                if remaining < weight {
                    found = Some((i, remaining));
                    break;
                }
                remaining -= weight;
            }
            found.expect("choice < choice_count()")
        };

        match self.pending[pending_index].kind {
            PendingKind::Deliver {
                to,
                from,
                value,
                msg,
            } => {
                self.pending.swap_remove(pending_index);
                Arc::make_mut(&mut self.inboxes[to])
                    .push(Envelope::new(ProcessId::new(from), SessionMsg::new(value)));
                let idle = self.algos[to].is_idle();
                if let Some(trace) = trace.as_deref_mut() {
                    let msg = msg.expect("traced replay assigns message ids at send time");
                    trace.record_delivery(msg, now);
                    trace.push(session_sim::TraceEvent {
                        time: now,
                        process: ProcessId::new(to),
                        kind: session_sim::StepKind::Deliver { msg },
                        idle_after: idle,
                    });
                }
                StepInfo {
                    time: now,
                    process: ProcessId::new(to),
                    port: None,
                    was_idle: idle,
                    idle_after: idle,
                    is_process_step: false,
                    b_violation: None,
                }
            }
            PendingKind::Step(p) => {
                let gaps_len = self.statics.gaps.menu_len();
                let (gap_index, combo) = if self.would_broadcast(p) {
                    (sub / self.delay_combos(), sub % self.delay_combos())
                } else {
                    (sub, 0)
                };
                self.pending.swap_remove(pending_index);
                let (received, was_idle, idle_after, outgoing) = self.perform_step(p);
                debug_assert!(gap_index < gaps_len);

                // Deliveries are enqueued before the process's own next
                // step, in recipient order — the engine's exact order.
                if let Some(payload) = outgoing {
                    let mut combo_rest = combo;
                    for q in 0..self.n {
                        let delay = self.statics.delays[combo_rest % self.statics.delays.len()];
                        combo_rest /= self.statics.delays.len();
                        let msg = trace
                            .as_deref_mut()
                            .map(|t| t.record_send(ProcessId::new(p), ProcessId::new(q), now));
                        self.pending.push(Pending {
                            time: now + delay,
                            seq: self.next_seq,
                            kind: PendingKind::Deliver {
                                to: q,
                                from: p,
                                value: payload.value,
                                msg,
                            },
                        });
                        self.next_seq += 1;
                    }
                }
                if let Some(trace) = trace {
                    trace.push(session_sim::TraceEvent {
                        time: now,
                        process: ProcessId::new(p),
                        kind: session_sim::StepKind::MpStep {
                            received,
                            broadcast: outgoing.is_some(),
                        },
                        idle_after,
                    });
                }
                self.pending.push(Pending {
                    time: now + self.statics.gaps.gap(p, gap_index),
                    seq: self.next_seq,
                    kind: PendingKind::Step(p),
                });
                self.next_seq += 1;

                StepInfo {
                    time: now,
                    process: ProcessId::new(p),
                    port: Some(PortId::new(p)),
                    was_idle,
                    idle_after,
                    is_process_step: true,
                    b_violation: None,
                }
            }
        }
    }

    /// A hash of the machine state with times made relative to the next
    /// event. Pending events are hashed in canonical order (their
    /// insertion sequence is an enumeration artifact, not state).
    /// Because [`MpMachine::eligible`] enumerates the choice menu in the
    /// same canonical order, equal hashes mean equal menus — the hash is
    /// graph-determining, which the ownership explorer's routing relies
    /// on.
    pub fn state_hash(&self) -> u64 {
        let mut hasher = FxHasher::default();
        let t = self.t_min();
        for algo in &self.algos {
            algo.fingerprint().hash(&mut hasher);
        }
        // Inboxes are hashed as multisets: every hosted algorithm consumes
        // its inbox as a commutative join (set inserts / lattice joins), so
        // arrival-order permutations are semantically equivalent states.
        // Hashing them apart would make delivery interleavings that
        // converge semantically never converge in the memo.
        for inbox in &self.inboxes {
            let mut entries: Vec<(usize, u64)> = inbox
                .iter()
                .map(|env| (env.from.index(), env.payload.value))
                .collect();
            entries.sort_unstable();
            entries.hash(&mut hasher);
        }
        let mut canonical: Vec<(Dur, u8, usize, usize, u64)> = self
            .pending
            .iter()
            .map(|e| match e.kind {
                PendingKind::Step(p) => (e.time - t, 0u8, p, 0, 0),
                PendingKind::Deliver {
                    to, from, value, ..
                } => (e.time - t, 1u8, to, from, value),
            })
            .collect();
        canonical.sort();
        canonical.hash(&mut hasher);
        if let GapMode::FixedPerProcess(periods) = &self.statics.gaps {
            periods.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// The initial scheduling windows at the exploration root: every
    /// pending event (at the root, each process's first step) fires
    /// exactly at its concrete scheduled time.
    pub(crate) fn initial_windows(&self) -> Vec<(ZoneEvent, Dur, Dur)> {
        self.pending
            .iter()
            .map(|e| {
                let ev = match e.kind {
                    PendingKind::Step(p) => ZoneEvent::Step(p),
                    PendingKind::Deliver {
                        to, from, value, ..
                    } => ZoneEvent::Deliver {
                        seq: e.seq,
                        to,
                        from,
                        value,
                    },
                };
                (ev, e.time.since_origin(), e.time.since_origin())
            })
            .collect()
    }

    /// The window (relative to the firing instant) within which process
    /// `p`'s *next* step must fire: the hull of the gap menu, or the
    /// process's fixed period.
    pub(crate) fn gap_window(&self, p: usize) -> (Dur, Dur) {
        match &self.statics.gaps {
            GapMode::PerStep(menu) => {
                let lo = menu
                    .iter()
                    .copied()
                    .reduce(Dur::min)
                    .expect("nonempty menu");
                let hi = menu
                    .iter()
                    .copied()
                    .reduce(Dur::max)
                    .expect("nonempty menu");
                (lo, hi)
            }
            GapMode::FixedPerProcess(periods) => (periods[p], periods[p]),
        }
    }

    /// The window (relative to the send instant) within which any
    /// in-flight message must be delivered: the hull of the delay menu.
    pub(crate) fn delay_window(&self) -> (Dur, Dur) {
        let delays = &self.statics.delays;
        let lo = delays
            .iter()
            .copied()
            .reduce(Dur::min)
            .expect("nonempty menu");
        let hi = delays
            .iter()
            .copied()
            .reduce(Dur::max)
            .expect("nonempty menu");
        (lo, hi)
    }

    /// Fires `ev` for the zone walker: identical discrete semantics to
    /// [`MpMachine::apply`] (shared step body, same delivery-then-own-step
    /// scheduling order), but no concrete times — pending entries get
    /// placeholder times, and the returned [`ZoneEvent`]s tell the walker
    /// which clocks to schedule (deliveries in recipient order, then the
    /// stepping process's next step).
    pub(crate) fn zone_apply(&mut self, ev: ZoneEvent) -> (StepInfo, Vec<ZoneEvent>) {
        match ev {
            ZoneEvent::Deliver { seq, to, .. } => {
                let idx = self
                    .pending
                    .iter()
                    .position(|e| e.seq == seq)
                    .expect("zone event is pending");
                let PendingKind::Deliver {
                    to: t, from, value, ..
                } = self.pending[idx].kind
                else {
                    unreachable!("delivery sequence numbers identify deliveries");
                };
                debug_assert_eq!(to, t);
                self.pending.swap_remove(idx);
                Arc::make_mut(&mut self.inboxes[to])
                    .push(Envelope::new(ProcessId::new(from), SessionMsg::new(value)));
                let idle = self.algos[to].is_idle();
                let info = StepInfo {
                    time: Time::ZERO,
                    process: ProcessId::new(to),
                    port: None,
                    was_idle: idle,
                    idle_after: idle,
                    is_process_step: false,
                    b_violation: None,
                };
                (info, Vec::new())
            }
            ZoneEvent::Step(p) => {
                let idx = self
                    .pending
                    .iter()
                    .position(|e| matches!(e.kind, PendingKind::Step(q) if q == p))
                    .expect("every process always has a pending step");
                self.pending.swap_remove(idx);
                let (_received, was_idle, idle_after, outgoing) = self.perform_step(p);

                let mut scheduled = Vec::new();
                if let Some(payload) = outgoing {
                    for q in 0..self.n {
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        self.pending.push(Pending {
                            time: Time::ZERO,
                            seq,
                            kind: PendingKind::Deliver {
                                to: q,
                                from: p,
                                value: payload.value,
                                msg: None,
                            },
                        });
                        scheduled.push(ZoneEvent::Deliver {
                            seq,
                            to: q,
                            from: p,
                            value: payload.value,
                        });
                    }
                }
                self.pending.push(Pending {
                    time: Time::ZERO,
                    seq: self.next_seq,
                    kind: PendingKind::Step(p),
                });
                self.next_seq += 1;
                scheduled.push(ZoneEvent::Step(p));

                let info = StepInfo {
                    time: Time::ZERO,
                    process: ProcessId::new(p),
                    port: Some(PortId::new(p)),
                    was_idle,
                    idle_after,
                    is_process_step: true,
                    b_violation: None,
                };
                (info, scheduled)
            }
        }
    }

    /// A hash of the discrete control state only: [`MpMachine::state_hash`]
    /// minus every pending time (see [`SmMachine::control_hash`]). The
    /// pending *set* — which deliveries are in flight, as a multiset —
    /// remains part of control.
    pub(crate) fn control_hash(&self) -> u64 {
        let mut hasher = FxHasher::default();
        for algo in &self.algos {
            algo.fingerprint().hash(&mut hasher);
        }
        for inbox in &self.inboxes {
            let mut entries: Vec<(usize, u64)> = inbox
                .iter()
                .map(|env| (env.from.index(), env.payload.value))
                .collect();
            entries.sort_unstable();
            entries.hash(&mut hasher);
        }
        let mut canonical: Vec<(u8, usize, usize, u64)> = self
            .pending
            .iter()
            .map(|e| match e.kind {
                PendingKind::Step(p) => (0u8, p, 0, 0),
                PendingKind::Deliver {
                    to, from, value, ..
                } => (1u8, to, from, value),
            })
            .collect();
        canonical.sort_unstable();
        canonical.hash(&mut hasher);
        if let GapMode::FixedPerProcess(periods) = &self.statics.gaps {
            periods.hash(&mut hasher);
        }
        hasher.finish()
    }
}

/// All `menu.len()^k` assignment vectors of menu entries to `k` slots —
/// the root branches for first-step times and for periodic period
/// assignments.
pub fn assignments(menu: &[Dur], k: usize) -> Vec<Vec<Dur>> {
    let mut out = vec![Vec::new()];
    for _ in 0..k {
        out = out
            .into_iter()
            .flat_map(|prefix| {
                menu.iter().map(move |&d| {
                    let mut next = prefix.clone();
                    next.push(d);
                    next
                })
            })
            .collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignments_enumerate_the_cartesian_power() {
        let menu = [Dur::from_int(1), Dur::from_int(2)];
        let all = assignments(&menu, 3);
        assert_eq!(all.len(), 8);
        let distinct: BTreeSet<Vec<Dur>> = all.into_iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    fn sync_sm_machine(n: usize, s: u64) -> SmMachine {
        let ports: Vec<SmAlgo> = (0..n)
            .map(|i| SmAlgo::Sync(SyncSmPort::new(VarId::new(i), s)))
            .collect();
        let (algos, num_vars) = sm_system_algos(ports, n, 2);
        let k = algos.len();
        let gap = Dur::from_int(1);
        SmMachine::new(
            algos,
            num_vars,
            2,
            n,
            GapMode::PerStep(vec![gap]),
            vec![Time::ZERO + gap; k],
        )
    }

    #[test]
    fn sm_machine_steps_and_quiesces() {
        let mut machine = sync_sm_machine(2, 1);
        assert!(!machine.is_quiescent());
        // One gap, all processes due together: one choice per process.
        assert_eq!(machine.choice_count(), machine.algos().len());
        let info = machine.apply(0, None);
        assert!(info.is_process_step);
        assert_eq!(info.port, Some(PortId::new(0)));
        assert!(info.idle_after, "s = 1: one step and the port idles");
        let info = machine.apply(0, None);
        assert_eq!(info.port, Some(PortId::new(1)));
        assert!(machine.is_quiescent(), "both ports idle");
    }

    #[test]
    fn sm_relay_steps_are_not_port_steps() {
        let mut machine = sync_sm_machine(2, 1);
        let relay_choice = machine
            .eligible()
            .iter()
            .position(|&p| p >= 2)
            .expect("tree has a relay");
        let info = machine.apply(relay_choice, None);
        assert_eq!(info.port, None);
        assert!(!info.idle_after, "relays never idle");
    }

    #[test]
    fn sm_state_hash_is_time_shift_invariant() {
        let a = sync_sm_machine(2, 2);
        let mut b = sync_sm_machine(2, 2);
        for due in &mut b.due {
            *due += Dur::from_int(5);
        }
        assert_eq!(a.state_hash(), b.state_hash());
    }

    fn sporadic_mp_machine(s: u64) -> MpMachine {
        let c1 = Dur::from_int(1);
        let algos: Vec<MpAlgo> = (0..2)
            .map(|i| {
                MpAlgo::Sporadic(
                    SporadicMpPort::new(ProcessId::new(i), s, 2, c1, Dur::ZERO, Dur::from_int(2))
                        .expect("valid params"),
                )
            })
            .collect();
        MpMachine::new(
            algos,
            GapMode::PerStep(vec![c1, Dur::from_int(7)]),
            vec![Dur::ZERO, Dur::from_int(2)],
            vec![Time::ZERO + c1; 2],
        )
    }

    #[test]
    fn mp_broadcasting_step_fans_out_gap_and_delay_choices() {
        let machine = sporadic_mp_machine(3);
        // Both processes due at t=1, each broadcasts: 2 gaps × 2² delay
        // combos = 8 choices each.
        assert_eq!(machine.choice_count(), 16);
    }

    #[test]
    fn mp_apply_creates_deliveries_then_next_step() {
        let mut machine = sporadic_mp_machine(3);
        let info = machine.apply(0, None);
        assert!(info.is_process_step);
        assert_eq!(info.port, Some(PortId::new(0)));
        // p0 stepped and broadcast to both: 2 deliveries + p0's next step
        // + p1's pending first step.
        assert_eq!(machine.pending.len(), 4);
        assert_eq!(machine.claimed_sessions_max(), Some(0));
    }

    #[test]
    fn mp_delivery_fills_inbox() {
        let mut machine = sporadic_mp_machine(3);
        // Fire p0's step with delay combo 0 (both deliveries at delay 0,
        // i.e. due immediately).
        let _ = machine.apply(0, None);
        let deliveries: Vec<usize> = machine
            .eligible()
            .into_iter()
            .filter(|&i| matches!(machine.pending[i].kind, PendingKind::Deliver { .. }))
            .collect();
        assert_eq!(deliveries.len(), 2, "delay 0 deliveries due at once");
        // Flat choice for the first delivery: skip past the weights of the
        // eligible events before it (p1's own first step broadcasts, so it
        // carries 2 gaps × 4 delay combos = 8 choices).
        let first_delivery = machine
            .eligible()
            .into_iter()
            .take_while(|&i| !matches!(machine.pending[i].kind, PendingKind::Deliver { .. }))
            .map(|i| machine.event_weight(i))
            .sum::<usize>();
        let info = machine.apply(first_delivery, None);
        assert!(!info.is_process_step);
        assert_eq!(machine.inboxes.iter().map(|i| i.len()).sum::<usize>(), 1);
    }

    #[test]
    fn mp_state_hash_ignores_insertion_sequence() {
        let mut a = sporadic_mp_machine(3);
        let mut b = sporadic_mp_machine(3);
        let _ = a.apply(0, None);
        let _ = b.apply(0, None);
        // Renumber b's sequences: the hash must not change.
        for pending in &mut b.pending {
            pending.seq += 1000;
        }
        assert_eq!(a.state_hash(), b.state_hash());
    }
}
