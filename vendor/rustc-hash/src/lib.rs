//! Offline stand-in for the `rustc-hash` crate.
//!
//! This workspace builds without network access, so instead of the registry
//! crate this vendored copy provides the same API surface the workspace
//! uses: [`FxHasher`] (the firefox/rustc "Fx" multiply-rotate hash) and the
//! [`FxHashMap`]/[`FxHashSet`] aliases over [`BuildHasherDefault`].
//!
//! The hash function matches upstream's word-at-a-time scheme: each input
//! word is rotated into the running state and multiplied by a fixed odd
//! constant. It is *not* collision-resistant against adversarial keys —
//! the analyzer only feeds it already-mixed 64-bit fingerprints and small
//! trusted keys, where its single-multiply mixing is the entire point:
//! SipHash's per-lookup setup cost dominates the explorer's hot memo path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Multiplicative constant from upstream rustc-hash (a random odd 64-bit
/// number with roughly half its bits set, chosen for multiply mixing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic, word-at-a-time hasher.
///
/// State updates fold each word in with a rotate + xor + multiply:
/// `state = (state.rotate_left(5) ^ word).wrapping_mul(SEED)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, rest) = bytes.split_at(8);
            let word = u64::from_le_bytes(head.try_into().expect("split_at(8) yields 8 bytes"));
            self.add_to_hash(word);
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            // Fold the byte count in so "ab" + "" and "a" + "b" differ.
            self.add_to_hash(u64::from_le_bytes(tail) ^ (bytes.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&0xdead_beef_u64), hash_of(&0xdead_beef_u64));
        assert_eq!(hash_of(&"session"), hash_of(&"session"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1_u64), hash_of(&2_u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        assert_ne!(hash_of(&[1_u8, 2]), hash_of(&[2_u8, 1]));
    }

    #[test]
    fn byte_stream_tail_lengths_differ() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh");
        let mut b = FxHasher::default();
        b.write(b"abcdefg");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u64, usize> = FxHashMap::default();
        map.insert(42, 1);
        assert_eq!(map.get(&42), Some(&1));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
    }
}
