//! The `session-cli stats` subcommand: run one configuration with the
//! in-memory recorder attached and print everything the instrumentation
//! layer observed — per-process step counts, engine counters and gauges,
//! and histogram summaries.
//!
//! ```text
//! session-cli stats model=periodic comm=mp s=3 n=3
//! session-cli stats model=sync comm=sm s=2 n=2 json=stats.json
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use session_core::analysis::analyze;
use session_core::system::port_of;
use session_obs::InMemoryRecorder;
use session_sim::process_stats;
use session_types::{Error, Result};

use crate::cli::CliConfig;

/// A fully parsed `stats` command line.
#[derive(Clone, Debug)]
pub struct StatsConfig {
    /// The run configuration (everything `session-cli` itself accepts).
    pub run: CliConfig,
    /// Where to also write the metrics snapshot as JSON, if requested.
    pub json: Option<PathBuf>,
}

impl StatsConfig {
    /// The usage string printed on parse errors.
    pub const USAGE: &'static str = "\
usage: session-cli stats [key=value ...]
  json=PATH    also write the metrics snapshot as JSON
plus every `session-cli` run option (model=, comm=, s=, n=, schedule=,
delay=, seed=, max-steps=, ...).";

    /// Parses the arguments after the `stats` keyword.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] (carrying a usage hint) when a run
    /// option is malformed.
    pub fn parse<I, S>(args: I) -> Result<StatsConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut json = None;
        let mut run_args: Vec<String> = Vec::new();
        for arg in args {
            let arg = arg.as_ref();
            match arg.split_once('=') {
                Some(("json", path)) => json = Some(PathBuf::from(path)),
                _ => run_args.push(arg.to_string()),
            }
        }
        let run = CliConfig::parse(&run_args)
            .map_err(|err| Error::invalid_params(format!("{err}\n{}", StatsConfig::USAGE)))?;
        Ok(StatsConfig { run, json })
    }

    /// Runs the configuration and renders the report plus the recorded
    /// metrics, returning the printable report and the snapshot JSON.
    ///
    /// # Errors
    ///
    /// Propagates parameter and engine errors from the run.
    pub fn render(&self) -> Result<(String, String)> {
        let mut recorder = InMemoryRecorder::new();
        let (report, _bounds) = self.run.run_recorded(&mut recorder)?;
        let snapshot = recorder.into_snapshot();
        let spec = self.run.spec;

        let mut out = String::new();
        let _ = writeln!(out, "{} / {} — {}", self.run.model, self.run.comm, spec);
        let _ = writeln!(
            out,
            "terminated: {}   sessions: {}/{}   steps: {}",
            report.terminated,
            report.sessions,
            spec.s(),
            report.steps
        );

        let analysis = analyze(&report.trace, spec.n(), port_of(&spec));
        let ports = self.run.port_labels(report.trace.num_processes());
        // `process_stats` only tags shared-memory port steps; recount via
        // the port map so message-passing rows are right too.
        let events = report.trace.events();
        let mut port_steps = vec![0usize; report.trace.num_processes()];
        for (i, _port) in report.trace.port_steps(port_of(&spec)) {
            port_steps[events[i].process.index()] += 1;
        }
        let _ = writeln!(out, "\n## per process\n");
        let _ = writeln!(out, "| process | port | steps | port steps | idle at |");
        let _ = writeln!(out, "|---|---|---:|---:|---|");
        for (pid, stats) in process_stats(&report.trace) {
            let port = ports
                .get(pid.index())
                .and_then(|p| p.map(|p| p.to_string()))
                .unwrap_or_else(|| "-".into());
            let idle = stats.idle_at.map_or_else(|| "-".into(), |t| t.to_string());
            let _ = writeln!(
                out,
                "| {pid} | {port} | {} | {} | {idle} |",
                stats.steps,
                port_steps.get(pid.index()).copied().unwrap_or(0)
            );
        }
        let _ = writeln!(
            out,
            "\nmessages: {} sent, {} delivered   sessions closed: {}",
            analysis.messages_sent,
            analysis.messages_delivered,
            analysis.session_close_times.len()
        );
        let _ = writeln!(out, "\n## recorded metrics\n");
        out.push_str(&snapshot.to_markdown());
        Ok((out, snapshot.to_json()))
    }

    /// Runs the configuration, writes the JSON snapshot if requested, and
    /// returns the printable report.
    ///
    /// # Errors
    ///
    /// Propagates run errors and I/O errors (as [`Error::InvalidParams`]
    /// naming the path).
    pub fn execute(&self) -> Result<String> {
        let (mut out, json) = self.render()?;
        if let Some(path) = &self.json {
            std::fs::write(path, &json).map_err(|err| {
                Error::invalid_params(format!("cannot write {}: {err}", path.display()))
            })?;
            let _ = writeln!(out, "\nwrote {}", path.display());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_obs::json;

    #[test]
    fn bad_run_options_carry_the_stats_usage() {
        let err = StatsConfig::parse(["model=quantum"]).unwrap_err();
        assert!(err.to_string().contains("usage: session-cli stats"));
    }

    #[test]
    fn mp_stats_report_counters_and_per_process_table() {
        let config = StatsConfig::parse([
            "model=periodic",
            "comm=mp",
            "s=3",
            "n=3",
            "d2=8",
            "schedule=uniform:2",
            "delay=const:8",
        ])
        .unwrap();
        let (out, snapshot_json) = config.render().unwrap();
        // Every step of a message-passing port process is a port step, so
        // the steps and port-steps columns must match (7 each here).
        assert!(out.contains("| p0 | y0 | 7 | 7 |"), "{out}");
        assert!(out.contains("| p2 | y2 | 7 | 7 |"), "{out}");
        assert!(out.contains("mp.steps"), "{out}");
        assert!(out.contains("mp.messages_delivered"), "{out}");
        assert!(out.contains("mp.buffer_occupancy"), "{out}");
        assert!(out.contains("run.sessions_closed"), "{out}");
        json::validate(&snapshot_json).expect("snapshot must be valid JSON");
        assert!(
            snapshot_json.contains("\"mp.messages_sent\""),
            "{snapshot_json}"
        );
    }

    #[test]
    fn sm_stats_report_sm_counters() {
        let config = StatsConfig::parse(["model=sync", "comm=sm", "s=2", "n=2"]).unwrap();
        let (out, _json) = config.render().unwrap();
        assert!(out.contains("sm.steps"), "{out}");
        assert!(out.contains("sm.port_steps"), "{out}");
        assert!(out.contains("sched.steps_scheduled"), "{out}");
    }
}
