//! A minimal client for the service, used by the integration tests, the
//! CLI selftest, and `bench_serve`.
//!
//! The client splits its connection: the caller's thread writes frames
//! (batched through a `BufWriter`), a reader thread decodes server
//! frames into a bounded channel the caller drains at its own pace.
//! That shape lets one client keep tens of thousands of opens in
//! flight without the request/response lockstep that would serialize
//! the benchmark on round-trip latency, while the channel bound keeps a
//! caller that stops draining from growing the event queue without
//! limit — the reader blocks, TCP backpressure does the rest.

use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::mpsc::Receiver;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use session_types::TimingModel;

use crate::wire::{datagram, undatagram, write_frame, ClientFrame, ServerFrame, MAX_PAYLOAD};

/// Decoded server frames buffered between the reader thread and the
/// caller. Sized for the worst bench pattern — `bench_serve` ramps
/// ~27.5k opens per client before draining a single event — with ~2×
/// headroom. When the buffer fills, the reader thread blocks and TCP
/// flow control pushes the backpressure to the server, whose writers
/// already drop-and-score on a full egress queue.
const EVENT_BUFFER: usize = 1 << 16;

/// A TCP client connection.
#[derive(Debug)]
pub struct ServeClient {
    out: BufWriter<TcpStream>,
    events: Receiver<ServerFrame>,
    reader: Option<JoinHandle<()>>,
}

impl ServeClient {
    /// Connects to `addr` and starts the reader thread.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let (tx, rx) = std::sync::mpsc::sync_channel(EVENT_BUFFER);
        let reader = std::thread::Builder::new()
            .name("serve-client-reader".to_owned())
            .spawn(move || {
                let mut stream = read_half;
                let mut acc: Vec<u8> = Vec::new();
                let mut tmp = [0u8; 8192];
                loop {
                    match stream.read(&mut tmp) {
                        Ok(0) | Err(_) => break,
                        Ok(k) => acc.extend_from_slice(&tmp[..k]),
                    }
                    let mut start = 0usize;
                    while acc.len() - start >= 4 {
                        let len_bytes: [u8; 4] = acc[start..start + 4].try_into().expect("4 bytes"); // wslint: allow(ws004): slice length is checked by the loop condition
                        let len = u32::from_le_bytes(len_bytes) as usize;
                        if len == 0 || len > MAX_PAYLOAD {
                            return; // server never sends these
                        }
                        if acc.len() - start < 4 + len {
                            break;
                        }
                        let payload = &acc[start + 4..start + 4 + len];
                        start += 4 + len;
                        let Ok(frame) = ServerFrame::decode(payload) else {
                            return;
                        };
                        if tx.send(frame).is_err() {
                            return;
                        }
                    }
                    acc.drain(..start);
                }
            })?;
        Ok(ServeClient {
            out: BufWriter::new(stream),
            events: rx,
            reader: Some(reader),
        })
    }

    /// Sends one frame (buffered; see [`ServeClient::flush`]).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, frame: &ClientFrame) -> io::Result<()> {
        write_frame(&mut self.out, &frame.encode())
    }

    /// Flushes buffered frames to the socket.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Sends `Hello` and waits for the reply.
    ///
    /// # Errors
    ///
    /// Fails on write errors, a non-`HelloOk` reply, or timeout.
    pub fn hello(&mut self, token: u64, timeout: Duration) -> io::Result<u64> {
        self.send(&ClientFrame::Hello { token })?;
        self.flush()?;
        match self.recv_timeout(timeout) {
            Some(ServerFrame::HelloOk { capacity }) => Ok(capacity),
            Some(other) => Err(io::Error::other(format!("expected HelloOk, got {other:?}"))),
            None => Err(io::Error::other("timed out waiting for HelloOk")),
        }
    }

    /// Sends an `Open` (buffered — call [`ServeClient::flush`]).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn open(
        &mut self,
        req: u64,
        model: TimingModel,
        s: u32,
        n: u32,
        unit_us: u32,
        seed: u64,
    ) -> io::Result<()> {
        self.send(&ClientFrame::Open {
            req,
            model,
            s,
            n,
            unit_us,
            seed,
        })
    }

    /// The next server frame, or `None` on timeout/disconnect.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<ServerFrame> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Drains any already-received frames without blocking.
    pub fn drain(&self) -> Vec<ServerFrame> {
        let mut out = Vec::new();
        while let Ok(frame) = self.events.try_recv() {
            out.push(frame);
        }
        out
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        let _ = self.out.flush();
        if let Ok(stream) = self.out.get_ref().try_clone() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// A UDP client: one frame per datagram, same byte format as TCP.
#[derive(Debug)]
pub struct UdpServeClient {
    socket: UdpSocket,
    server: SocketAddr,
}

impl UdpServeClient {
    /// Binds an ephemeral local socket aimed at `server`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn connect(server: SocketAddr) -> io::Result<UdpServeClient> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        Ok(UdpServeClient { socket, server })
    }

    /// Sends one frame as a datagram.
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn send(&self, frame: &ClientFrame) -> io::Result<()> {
        self.socket
            .send_to(&datagram(&frame.encode()), self.server)
            .map(|_| ())
    }

    /// Receives the next server frame, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<ServerFrame> {
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 512];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((len, from)) if from == self.server => {
                    if let Ok(frame) = undatagram(&buf[..len]).and_then(ServerFrame::decode) {
                        return Some(frame);
                    }
                }
                Ok(_) => {}
                Err(_) => {}
            }
            if Instant::now() >= deadline {
                return None;
            }
        }
    }
}
