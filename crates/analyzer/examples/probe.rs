//! Scope-tuning probe: times each target's exploration separately.
//!
//! Usage: `cargo run --release -p session-analyzer --example probe [name]`

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    for name in session_analyzer::TARGET_NAMES {
        if let Some(f) = &filter {
            if f != name {
                continue;
            }
        }
        let start = std::time::Instant::now();
        let report = session_analyzer::analyze_target(name).expect("known target");
        let elapsed = start.elapsed();
        let codes: Vec<String> = report.findings.iter().map(|d| d.code.to_string()).collect();
        println!(
            "{name}: states={} findings=[{}] elapsed={elapsed:?}",
            report.targets[0].states,
            codes.join(", ")
        );
    }
}
