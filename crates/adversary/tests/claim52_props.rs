//! Claim 5.2 as a standalone property: *every* total order of a
//! computation's steps consistent with the dependency partial order `≤_β`
//! is itself a computation that leaves the system in the same global
//! state. We record real computations, sample random linear extensions of
//! `≤_β`, re-execute them, and compare global states.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use session_adversary::naive::naive_sm_system;
use session_adversary::retime::DependencyGraph;
use session_core::system::build_sm_system;
use session_sim::{FixedPeriods, RunLimits};
use session_smm::{Knowledge, SmEngine};
use session_types::{Dur, KnownBounds, ProcessId, Result, SessionSpec, Time};

/// Samples a uniform-ish random linear extension of the dependency order by
/// repeatedly drawing a random minimal element.
fn random_linear_extension(deps: &DependencyGraph, len: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    // indegree over generator edges is not enough (transitivity), but for
    // a linear extension generator edges suffice: a topological order of
    // the generator DAG is consistent with its transitive closure.
    let mut indegree = vec![0usize; len];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); len];
    for (a, out) in succs.iter_mut().enumerate() {
        for &b in deps.direct_successors(a) {
            if a != b {
                out.push(b);
                indegree[b] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..len).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(len);
    while !ready.is_empty() {
        let pick = rng.random_range(0..ready.len());
        let node = ready.swap_remove(pick);
        order.push(node);
        for &next in &succs[node] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                ready.push(next);
            }
        }
    }
    assert_eq!(order.len(), len, "generator DAG must be acyclic");
    order
}

fn record_and_replay<F>(factory: F, rounds_period: Dur, seed: u64) -> Result<(bool, usize)>
where
    F: Fn() -> Result<SmEngine<Knowledge>>,
{
    let mut recorder = factory()?;
    let num = recorder.num_processes();
    let mut sched = FixedPeriods::uniform(num, rounds_period)?;
    let outcome = recorder.run(&mut sched, RunLimits::default())?;
    let events = outcome.trace.events();
    let deps = DependencyGraph::new(events)?;
    let order = random_linear_extension(&deps, events.len(), seed);
    let script: Vec<(Time, ProcessId)> = order
        .iter()
        .enumerate()
        .map(|(pos, &i)| (Time::from_int(pos as i128 + 1), events[i].process))
        .collect();
    let mut replayer = factory()?;
    let _ = replayer.run_scripted(&script)?;
    let same = recorder.global_state() == replayer.global_state();
    Ok((same, events.len()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random linear extensions of the silent witness's computation reach
    /// the same global state.
    #[test]
    fn linear_extensions_preserve_state_for_the_witness(
        s in 1u64..4,
        n in 2usize..8,
        seed in any::<u64>(),
    ) {
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let (same, steps) = record_and_replay(
            || naive_sm_system(&spec, spec.s()),
            Dur::ONE,
            seed,
        )
        .unwrap();
        prop_assert!(steps > 0);
        prop_assert!(same, "state diverged for s={s}, n={n}");
    }

    /// Random linear extensions of the *communicating* asynchronous
    /// algorithm's computation also reach the same global state — the
    /// knowledge lattice makes every interleaving converge.
    #[test]
    fn linear_extensions_preserve_state_for_the_async_algorithm(
        s in 1u64..3,
        n in 2usize..6,
        seed in any::<u64>(),
    ) {
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let bounds = KnownBounds::asynchronous();
        let (same, _) = record_and_replay(
            || build_sm_system(&spec, &bounds),
            Dur::ONE,
            seed,
        )
        .unwrap();
        prop_assert!(same, "state diverged for s={s}, n={n}");
    }
}
