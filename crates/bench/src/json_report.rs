//! Machine-readable (`--json`) output shared by every benchmark binary.
//!
//! Two layers:
//!
//! * [`JsonReport`] — the generic shape: the same section/header/row data a
//!   binary prints as markdown, collected and serialized as JSON, so every
//!   sweep binary gets `--json [PATH]` for free.
//! * [`table1_json`] — the rich Table 1 schema (`BENCH_table1.json`): per
//!   row, the numeric measured value and paper bound, their ratio, host
//!   wall-clock, and the engine counters recorded during the run. The
//!   schema is documented in `DESIGN.md` §10.
//!
//! Serialization uses `session_obs::json` — no external dependencies.

use std::path::PathBuf;

use session_obs::json::JsonWriter;

use crate::format::Row;
use crate::measure::RowMeasurement;

/// The version tag written into every report.
pub const SCHEMA_TABLE1: &str = "session-bench/table1/v1";
/// The version tag for the generic section-table reports.
pub const SCHEMA_SECTIONS: &str = "session-bench/sections/v1";

/// Parses a `--json [PATH]` flag out of a binary's argument list.
///
/// Returns `None` when the flag is absent; `Some(default_path)` for a bare
/// `--json`; `Some(path)` when a path follows the flag. All other
/// arguments are ignored (the benchmark binaries take none).
pub fn json_flag<I, S>(args: I, default_path: &str) -> Option<PathBuf>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg.as_ref() == "--json" {
            let path = match args.next() {
                Some(next) if !next.as_ref().starts_with('-') => next.as_ref().to_owned(),
                _ => default_path.to_owned(),
            };
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// A collected report: the same sections a binary prints as markdown.
#[derive(Clone, Debug)]
pub struct JsonReport {
    title: String,
    sections: Vec<(String, Vec<String>, Vec<Row>)>,
}

impl JsonReport {
    /// Starts an empty report.
    pub fn new(title: &str) -> JsonReport {
        JsonReport {
            title: title.to_owned(),
            sections: Vec::new(),
        }
    }

    /// Adds one section: a title, column headers, and the table rows.
    pub fn section(&mut self, title: &str, headers: &[&str], rows: &[Row]) {
        self.sections.push((
            title.to_owned(),
            headers.iter().map(|&h| h.to_owned()).collect(),
            rows.to_vec(),
        ));
    }

    /// Serializes the report: each row becomes an object keyed by the
    /// section's column headers.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", SCHEMA_SECTIONS);
        w.field_str("title", &self.title);
        w.key("sections");
        w.begin_array();
        for (title, headers, rows) in &self.sections {
            w.begin_object();
            w.field_str("title", title);
            w.key("rows");
            w.begin_array();
            for row in rows {
                w.begin_object();
                for (header, cell) in headers.iter().zip(&row.cells) {
                    w.field_str(header, cell);
                }
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Serializes measured Table 1 rows as `BENCH_table1.json`.
///
/// Per row: the markdown cells verbatim (`params`, `paper_bound`,
/// `measured`, `ok`) plus the numeric telemetry — `bound_value` /
/// `measured_value` in `unit`, their `ratio` (measured ÷ bound, null when
/// either side is non-numeric), `wall_clock_secs`, and the engine
/// `counters` recorded during the run.
pub fn table1_json(rows: &[RowMeasurement]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SCHEMA_TABLE1);
    w.key("rows");
    w.begin_array();
    for row in rows {
        w.begin_object();
        w.field_str("model", row.model);
        w.field_str("comm", row.comm);
        w.field_str("kind", row.kind.label());
        w.field_str("params", &row.params);
        w.field_str("paper_bound", &row.paper_bound);
        w.field_str("measured", &row.measured);
        w.field_bool("ok", row.ok);
        w.field_str("unit", row.unit);
        w.key("bound_value");
        match row.bound_value {
            Some(v) => w.value_f64(v),
            None => w.value_null(),
        }
        w.key("measured_value");
        match row.measured_value {
            Some(v) => w.value_f64(v),
            None => w.value_null(),
        }
        w.key("ratio");
        match ratio(row) {
            Some(v) => w.value_f64(v),
            None => w.value_null(),
        }
        w.field_f64("wall_clock_secs", row.wall_clock_secs);
        w.key("counters");
        w.begin_object();
        for &(name, value) in &row.counters {
            w.field_u64(name, value);
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Measured ÷ bound, when both sides are numeric and the bound is nonzero.
pub fn ratio(row: &RowMeasurement) -> Option<f64> {
    match (row.measured_value, row.bound_value) {
        (Some(m), Some(b)) if b != 0.0 => Some(m / b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_obs::json;

    #[test]
    fn json_flag_variants() {
        assert_eq!(json_flag(Vec::<String>::new(), "d.json"), None);
        assert_eq!(
            json_flag(["--json"], "d.json"),
            Some(PathBuf::from("d.json"))
        );
        assert_eq!(
            json_flag(["--json", "out.json"], "d.json"),
            Some(PathBuf::from("out.json"))
        );
        assert_eq!(
            json_flag(["other", "--json"], "d.json"),
            Some(PathBuf::from("d.json"))
        );
    }

    #[test]
    fn sections_report_round_trips_headers() {
        let mut report = JsonReport::new("FIG-T");
        report.section(
            "n = 8",
            &["x", "y"],
            &[Row::new(["1", "2"]), Row::new(["3", "4"])],
        );
        let out = report.to_json();
        json::validate(&out).expect("valid JSON");
        assert!(out.contains("\"schema\":\"session-bench/sections/v1\""));
        assert!(out.contains("\"x\":\"1\""), "{out}");
        assert!(out.contains("\"y\":\"4\""), "{out}");
    }

    #[test]
    fn table1_json_matches_the_markdown_rows() {
        // One cheap real row rather than the full table: the full-table
        // consistency test already lives in `measure`.
        let rows = vec![crate::measure::sync_sm(2, 4, session_types::Dur::from_int(3)).unwrap()];
        let out = table1_json(&rows);
        json::validate(&out).expect("valid JSON");
        assert!(out.contains("\"schema\":\"session-bench/table1/v1\""));
        // s·c2 = 6, measured exactly at the bound: ratio 1.
        assert!(out.contains("\"bound_value\":6"), "{out}");
        assert!(out.contains("\"measured_value\":6"), "{out}");
        assert!(out.contains("\"ratio\":1"), "{out}");
        assert!(out.contains("\"sm.steps\""), "{out}");
        let md = crate::measure::table1_markdown_of(&rows);
        assert!(md.contains("s·c2 = 6"), "{md}");
        assert!(md.contains("6 (2 sessions)"), "{md}");
    }
}
