//! Symbolic-engine size benchmark: walk every registry target's zone
//! graph next to the mirror explicit exploration and record how the two
//! state counts compare, then sweep the headline refinement experiment —
//! `PeriodicMp` at the analyzer's headline scope (n = 3, s = 3) with the
//! delay menu sampled ever more finely inside the same `[0, 1]` window.
//! The zone walker only keeps the window's hull as a DBM bound, so its
//! graph is *invariant* under refinement, while the explicit explorer
//! enumerates one remaining-delay value per menu entry per in-flight
//! message and blows up — that widening gap is the point of the symbolic
//! engine.
//!
//! ```text
//! cargo run --release -p session-bench --bin bench_symbolic
//! cargo run --release -p session-bench --bin bench_symbolic -- --json
//! cargo run --release -p session-bench --bin bench_symbolic -- --json out.json
//! ```
//!
//! Report schema: `session-bench/symbolic/v1` — a per-target table
//! (zone/explicit state counts, control-state counts, zone findings,
//! truncation) and the headline refinement rows.
//!
//! Exit status: `0` on success, `1` when the headline row's
//! explicit/zone ratio falls below the acceptance threshold (10×) —
//! state counts are deterministic, so unlike a throughput threshold this
//! gate is host-independent.

use std::time::Instant;

use session_analyzer::zones::{explicit_control_reach, zone_walk};
use session_analyzer::{periodic_mp_space_with_delays, symbolic_depth, target_space, TARGET_NAMES};
use session_bench::json_report::json_flag;
use session_obs::json::JsonWriter;
use session_types::{Dur, Ratio};

/// The version tag written into every symbolic-bench report.
const SCHEMA: &str = "session-bench/symbolic/v1";

/// The headline refinement experiment: `PeriodicMp` at the analyzer
/// bench's scope, delay window `[0, 1]` sampled at `k + 1` points.
const HEADLINE_TARGET: &str = "PeriodicMp";
const HEADLINE_N: usize = 3;
const HEADLINE_S: u64 = 3;

/// Denominators of the refinement sweep: `k = 1` is the registry menu
/// `{0, 1}`, `k = 2` adds the midpoint, and so on.
const REFINEMENTS: [i128; 2] = [1, 2];

/// The acceptance threshold on the finest refinement row.
const MIN_RATIO: f64 = 10.0;

struct SizeRow {
    label: String,
    depth: usize,
    zone_states: u64,
    zone_secs: f64,
    explicit_states: u64,
    explicit_secs: f64,
    zone_controls: u64,
    explicit_controls: u64,
    ratio: f64,
    findings: Vec<String>,
    truncated: bool,
}

/// Walks one space with both engines at the same depth budget and
/// tabulates the sizes.
fn measure(label: String, space: &session_analyzer::TargetSpace, depth: usize) -> SizeRow {
    let mut scope = space.scope.clone();
    scope.max_depth = depth;
    let start = Instant::now();
    let walk = zone_walk(&space.roots, &scope, &space.bounds);
    let zone_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let reach = explicit_control_reach(&space.roots, &scope);
    let explicit_secs = start.elapsed().as_secs_f64();
    let mut findings: Vec<String> = walk
        .findings
        .iter()
        .map(|(code, _)| code.code().to_owned())
        .collect();
    findings.sort();
    #[allow(clippy::cast_precision_loss)]
    let ratio = reach.states as f64 / walk.zone_states.max(1) as f64;
    SizeRow {
        label,
        depth,
        zone_states: walk.zone_states,
        zone_secs,
        explicit_states: reach.states,
        explicit_secs,
        zone_controls: walk.controls.len() as u64,
        explicit_controls: reach.controls.len() as u64,
        ratio,
        findings,
        truncated: walk.truncated || reach.truncated,
    }
}

/// The headline space: `PeriodicMp` with the `[0, 1]` delay window
/// sampled at `k + 1` evenly spaced points.
fn refined_space(k: i128) -> session_analyzer::TargetSpace {
    let delays: Vec<Dur> = (0..=k).map(|i| Dur::from_ratio(Ratio::new(i, k))).collect();
    periodic_mp_space_with_delays(HEADLINE_N, HEADLINE_S, &delays)
}

fn row_json(w: &mut JsonWriter, row: &SizeRow, samples: Option<u64>) {
    w.begin_object();
    w.field_str("label", &row.label);
    if let Some(samples) = samples {
        w.field_u64("delay_samples", samples);
    }
    w.field_u64("depth", row.depth as u64);
    w.field_u64("zone_states", row.zone_states);
    w.field_f64("zone_secs", row.zone_secs);
    w.field_u64("explicit_states", row.explicit_states);
    w.field_f64("explicit_secs", row.explicit_secs);
    w.field_u64("zone_controls", row.zone_controls);
    w.field_u64("explicit_controls", row.explicit_controls);
    w.field_f64("explicit_over_zone", row.ratio);
    w.key("findings");
    w.begin_array();
    for code in &row.findings {
        w.value_str(code);
    }
    w.end_array();
    w.field_bool("truncated", row.truncated);
    w.end_object();
}

fn to_json(targets: &[SizeRow], headline: &[(u64, SizeRow)]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SCHEMA);
    w.key("targets");
    w.begin_array();
    for row in targets {
        row_json(&mut w, row, None);
    }
    w.end_array();
    w.key("headline");
    w.begin_object();
    w.field_str("target", HEADLINE_TARGET);
    w.field_u64("n", HEADLINE_N as u64);
    w.field_u64("s", HEADLINE_S);
    w.field_f64("min_ratio", MIN_RATIO);
    w.key("rows");
    w.begin_array();
    for (samples, row) in headline {
        row_json(&mut w, row, Some(*samples));
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

fn print_row(row: &SizeRow) {
    println!(
        "| {} | {} | {} | {:.2} s | {} | {:.2} s | {:.2}x | {} | {} |",
        row.label,
        row.depth,
        row.zone_states,
        row.zone_secs,
        row.explicit_states,
        row.explicit_secs,
        row.ratio,
        if row.findings.is_empty() {
            "-".to_owned()
        } else {
            row.findings.join("+")
        },
        row.truncated
    );
}

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_symbolic.json");
    println!("# Symbolic engine size — zone graph vs explicit state count\n");
    println!("| target | depth | zones | zone wall | explicit | explicit wall | explicit/zone | zone findings | truncated |");
    println!("|---|---:|---:|---:|---:|---:|---:|---|---|");
    let mut targets = Vec::new();
    for name in TARGET_NAMES {
        let space = target_space(name).expect("registry target");
        let depth = symbolic_depth(name, &space.scope);
        let row = measure(name.to_owned(), &space, depth);
        print_row(&row);
        targets.push(row);
    }
    println!(
        "\n## Refinement sweep — {HEADLINE_TARGET} n = {HEADLINE_N}, s = {HEADLINE_S}, \
         delay window [0, 1] sampled at k + 1 points\n"
    );
    println!("| samples | depth | zones | zone wall | explicit | explicit wall | explicit/zone | zone findings | truncated |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---|---|");
    let mut headline = Vec::new();
    for &k in &REFINEMENTS {
        let space = refined_space(k);
        let samples = u64::try_from(k).expect("small k") + 1;
        let row = measure(format!("{samples} samples"), &space, space.scope.max_depth);
        print_row(&row);
        headline.push((samples, row));
    }
    let finest = &headline.last().expect("sweep is non-empty").1;
    println!(
        "\nheadline ratio at {} delay samples: {:.2}x (threshold {MIN_RATIO}x) — the zone \
         graph is invariant under refinement, the explicit explorer is not",
        headline.last().expect("sweep is non-empty").0,
        finest.ratio
    );
    let failed = finest.ratio < MIN_RATIO;
    if failed {
        eprintln!(
            "RATIO BELOW THRESHOLD: explicit/zone = {:.2} < {MIN_RATIO} on {HEADLINE_TARGET} \
             n={HEADLINE_N} s={HEADLINE_S}",
            finest.ratio
        );
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, to_json(&targets, &headline)) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("\nwrote {}", path.display());
    }
    if failed {
        std::process::exit(1);
    }
}
