//! `SA006 infeasible-timing`: static validation of MP timing parameters.
//!
//! A real-clock pacer (`session-net`) must *realize* the timing model: pick
//! actual step gaps inside `[c1, c2]` and actual message delays inside
//! `[d1, d2]`. Parameter combinations with empty windows — `c2 < c1`,
//! `d2 < d1` — or a zero-width sporadic minimum separation (`c1 = 0`, which
//! collapses the sporadic model's defining constraint) admit no admissible
//! real execution at all, so they are rejected *before* any thread is
//! spawned. The simulator CLI shares the same check: a configuration that
//! cannot run on real clocks is flagged identically when simulated.

use session_types::{Dur, Error, Result, TimingModel};

use crate::diag::{Diagnostic, LintCode};

/// The timing parameters a configuration proposes, before they are turned
/// into [`session_types::KnownBounds`] (whose constructors would reject
/// some of these outright — this check exists to give every front end the
/// same `SA006`-coded diagnosis first).
#[derive(Clone, Copy, Debug)]
pub struct TimingParams {
    /// Proposed timing model.
    pub model: TimingModel,
    /// Lower step bound / sporadic minimum separation.
    pub c1: Dur,
    /// Upper step bound (ignored by models that have none).
    pub c2: Dur,
    /// Lower delay bound.
    pub d1: Dur,
    /// Upper delay bound.
    pub d2: Dur,
}

/// Checks `params` for real-clock feasibility, returning one `SA006`
/// diagnostic per violated condition (empty means feasible).
///
/// Conditions, per model:
///
/// * every model with delays: `d1 <= d2` and `d1 >= 0`;
/// * models with a step window (synchronous, semi-synchronous, and the
///   pacer windows of periodic/asynchronous runs): `0 < c1 <= c2`;
/// * sporadic: `c1 > 0` — a zero minimum separation is a zero-width
///   sporadic constraint, indistinguishable from the asynchronous model
///   and impossible to pace on a real timer.
pub fn check_timing(params: &TimingParams) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut flag = |message: String| {
        findings.push(Diagnostic {
            code: LintCode::InfeasibleTiming,
            target: params.model.to_string(),
            message,
            scope: format!(
                "c1={} c2={} d1={} d2={}",
                params.c1, params.c2, params.d1, params.d2
            ),
            repro: String::new(),
            counterexample: String::new(),
        });
    };
    if params.d1.is_negative() {
        flag(format!("negative delay lower bound d1 = {}", params.d1));
    }
    if params.d2 < params.d1 {
        flag(format!(
            "empty delay window: d2 = {} < d1 = {}",
            params.d2, params.d1
        ));
    }
    match params.model {
        TimingModel::Sporadic => {
            if !params.c1.is_positive() {
                flag(format!(
                    "zero-width sporadic separation: c1 = {} (must be > 0)",
                    params.c1
                ));
            }
        }
        TimingModel::Synchronous
        | TimingModel::Periodic
        | TimingModel::SemiSynchronous
        | TimingModel::Asynchronous => {
            if !params.c1.is_positive() {
                flag(format!(
                    "pacer step window needs c1 > 0, got c1 = {}",
                    params.c1
                ));
            }
            if params.c2 < params.c1 {
                flag(format!(
                    "empty step window: c2 = {} < c1 = {}",
                    params.c2, params.c1
                ));
            }
        }
    }
    findings
}

/// [`check_timing`] as a hard gate: `Err` with an `SA006`-prefixed message
/// naming every violation, for config validation paths (the `session-cli`
/// simulator front end and `session-net::RealConfig`).
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] when any feasibility condition fails.
pub fn require_feasible(params: &TimingParams) -> Result<()> {
    let findings = check_timing(params);
    if findings.is_empty() {
        return Ok(());
    }
    let detail: Vec<String> = findings
        .iter()
        .map(|d| format!("{}: {} [{}]", d.code, d.message, d.scope))
        .collect();
    Err(Error::invalid_params(detail.join("; ")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(model: TimingModel, c1: i128, c2: i128, d1: i128, d2: i128) -> TimingParams {
        TimingParams {
            model,
            c1: Dur::from_int(c1),
            c2: Dur::from_int(c2),
            d1: Dur::from_int(d1),
            d2: Dur::from_int(d2),
        }
    }

    #[test]
    fn feasible_configs_pass_every_model() {
        for model in session_types::TimingModel::ALL {
            let p = params(model, 1, 4, 0, 8);
            assert!(check_timing(&p).is_empty(), "{model} flagged: {p:?}");
            assert!(require_feasible(&p).is_ok());
        }
    }

    #[test]
    fn inverted_delay_window_is_flagged() {
        let p = params(TimingModel::Periodic, 1, 4, 5, 2);
        let findings = check_timing(&p);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, LintCode::InfeasibleTiming);
        assert!(findings[0].message.contains("d2 = 2 < d1 = 5"));
        let err = require_feasible(&p).unwrap_err().to_string();
        assert!(err.contains("SA006 infeasible-timing"), "{err}");
    }

    #[test]
    fn inverted_step_window_is_flagged() {
        let p = params(TimingModel::SemiSynchronous, 4, 1, 0, 8);
        let findings = check_timing(&p);
        assert!(findings
            .iter()
            .any(|d| d.message.contains("c2 = 1 < c1 = 4")));
    }

    #[test]
    fn zero_sporadic_separation_is_flagged() {
        let p = params(TimingModel::Sporadic, 0, 0, 0, 8);
        let findings = check_timing(&p);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("zero-width sporadic"));
        // A positive separation is fine even with no upper step bound.
        assert!(check_timing(&params(TimingModel::Sporadic, 1, 0, 0, 8)).is_empty());
    }

    #[test]
    fn negative_d1_is_flagged() {
        let p = params(TimingModel::Asynchronous, 1, 2, -1, 8);
        assert!(check_timing(&p)
            .iter()
            .any(|d| d.message.contains("negative delay lower bound")));
    }

    #[test]
    fn multiple_violations_all_reported() {
        let p = params(TimingModel::Sporadic, 0, 0, 6, 2);
        let findings = check_timing(&p);
        assert_eq!(findings.len(), 2);
        let err = require_feasible(&p).unwrap_err().to_string();
        assert!(err.contains("empty delay window") && err.contains("zero-width"));
    }
}
