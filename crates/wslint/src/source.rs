//! Per-file source model: the token stream split into code and comment
//! channels, `#[cfg(test)]` / `#[test]` region detection, and the
//! `wslint:` annotation scanner.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// The annotation grammar (DESIGN.md §17):
///
/// ```text
/// // wslint: allow(ws004): <non-empty reason>
/// ```
///
/// One code per annotation; the reason is mandatory — a reason-less
/// `allow` does not suppress anything (fail closed). The annotation
/// covers the line it sits on (trailing form) or, when the comment is
/// alone on its line, the next line that carries code.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Lower-case code, e.g. `ws004`.
    pub code: String,
    /// Justification text after the second colon.
    pub reason: String,
    /// Line(s) the annotation suppresses findings on.
    pub covers: Vec<u32>,
}

/// One lexed-and-classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, with `/` separators.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Code tokens only (comments stripped), in source order.
    pub code: Vec<Token>,
    /// Parsed `wslint:` annotations.
    pub annotations: Vec<Annotation>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
    /// items.
    test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `text` into the file model.
    pub fn parse(rel_path: String, abs_path: PathBuf, text: &str) -> SourceFile {
        let tokens = lex(text);
        let code: Vec<Token> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .cloned()
            .collect();
        let test_regions = find_test_regions(&code);
        let annotations = find_annotations(&tokens, &code);
        SourceFile {
            rel_path,
            abs_path,
            code,
            annotations,
            test_regions,
        }
    }

    /// Whether `line` lies inside a `#[cfg(test)]` module or `#[test]`
    /// function — i.e. is test code the source-level disciplines exempt.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether a finding of `code` (lower-case, e.g. `ws002`) at `line`
    /// is suppressed by an annotation.
    pub fn allowed(&self, code: &str, line: u32) -> bool {
        self.annotations
            .iter()
            .any(|a| a.code == code && a.covers.contains(&line))
    }

    /// Code tokens that are *not* inside test regions.
    pub fn non_test_code(&self) -> impl Iterator<Item = &Token> {
        self.code.iter().filter(|t| !self.in_test_code(t.line))
    }
}

/// Finds `#[cfg(test)]`- and `#[test]`-gated items and returns their
/// line ranges. Works on the comment-stripped token stream: an attribute
/// whose `cfg(...)` argument mentions the `test` ident (covering
/// `cfg(test)`, `cfg(all(test, …))`, `cfg(any(…, test))`) gates the next
/// item; the item's extent is everything to its closing `}` (or `;` for
/// brace-less items).
fn find_test_regions(code: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !is_punct(code.get(i), "#") || !is_punct(code.get(i + 1), "[") {
            i += 1;
            continue;
        }
        // Collect the attribute's balanced [...] contents. The `test`
        // ident gates the next item (`#[test]`, `#[cfg(test)]`,
        // `#[cfg(all(test, …))]`) — unless it sits under `not(…)`:
        // `#[cfg(not(test))]` marks *production* code.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut gated = false;
        let mut not_depths: Vec<usize> = Vec::new();
        let mut last_ident = String::new();
        while j < code.len() {
            let t = &code[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "(" => {
                        depth += 1;
                        if last_ident == "not" {
                            not_depths.push(depth);
                        }
                    }
                    "]" | ")" => {
                        if not_depths.last() == Some(&depth) {
                            not_depths.pop();
                        }
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                last_ident.clear();
            } else if t.kind == TokenKind::Ident {
                if t.text == "test" && depth >= 1 && not_depths.is_empty() {
                    gated = true;
                }
                last_ident.clone_from(&t.text);
            } else {
                last_ident.clear();
            }
            j += 1;
        }
        if !gated {
            i = j + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = j + 1;
        while is_punct(code.get(k), "#") && is_punct(code.get(k + 1), "[") {
            let mut d = 0usize;
            while k < code.len() {
                if code[k].kind == TokenKind::Punct {
                    match code[k].text.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
            k += 1;
        }
        // The gated item runs to its closing brace (tracking nesting) or
        // to the first `;` before any `{`.
        let mut brace = 0usize;
        let mut entered = false;
        let mut end = k;
        while end < code.len() {
            let t = &code[end];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        brace += 1;
                        entered = true;
                    }
                    "}" => {
                        brace = brace.saturating_sub(1);
                        if entered && brace == 0 {
                            break;
                        }
                    }
                    ";" if !entered => break,
                    _ => {}
                }
            }
            end += 1;
        }
        let end_line = code
            .get(end)
            .or_else(|| code.last())
            .map_or(code[attr_start].line, |t| t.line);
        regions.push((code[attr_start].line, end_line));
        i = end + 1;
    }
    regions
}

/// Parses `wslint: allow(wsNNN): reason` comments. `all_tokens` is the
/// full stream (comments included); `code` is used to resolve which line
/// a standalone comment covers.
fn find_annotations(all_tokens: &[Token], code: &[Token]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for tok in all_tokens {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(ann) = parse_annotation_text(&tok.text) else {
            continue;
        };
        // The annotation covers its own line (trailing form) plus the
        // next code-bearing line (standalone form).
        let mut covers = vec![tok.line];
        if let Some(next) = code.iter().find(|t| t.line > tok.line) {
            covers.push(next.line);
        }
        out.push(Annotation {
            code: ann.0,
            reason: ann.1,
            covers,
        });
    }
    out
}

/// Extracts `(code, reason)` from one comment's text, or `None` when the
/// comment is not a (well-formed) annotation. Reasons must be non-empty.
fn parse_annotation_text(comment: &str) -> Option<(String, String)> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim();
    let rest = body.strip_prefix("wslint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let (code, rest) = rest.split_once(')')?;
    let code = code.trim().to_ascii_lowercase();
    if code.len() != 5 || !code.starts_with("ws") || !code[2..].bytes().all(|b| b.is_ascii_digit())
    {
        return None;
    }
    let reason = rest.trim_start().strip_prefix(':')?.trim();
    if reason.is_empty() {
        return None;
    }
    Some((code, reason.to_string()))
}

fn is_punct(tok: Option<&Token>, text: &str) -> bool {
    tok.is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Loads and parses one file from disk.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be read.
pub fn load(root: &Path, abs_path: PathBuf) -> std::io::Result<SourceFile> {
    let text = std::fs::read_to_string(&abs_path)?;
    let rel = abs_path
        .strip_prefix(root)
        .unwrap_or(&abs_path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(SourceFile::parse(rel, abs_path, &text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("x.rs".into(), PathBuf::from("x.rs"), src)
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let f = parse(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn live2() {}\n",
        );
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_all_test_gates_too() {
        let f = parse("#[cfg(all(test, feature = \"x\"))]\nmod t {\n    fn f() {}\n}\n");
        assert!(f.in_test_code(3));
    }

    #[test]
    fn test_attribute_gates_one_fn() {
        let f = parse("#[test]\nfn check() {\n    body();\n}\nfn live() {}\n");
        assert!(f.in_test_code(3));
        assert!(!f.in_test_code(5));
    }

    #[test]
    fn cfg_not_test_marks_production_code() {
        let f = parse("#[cfg(not(test))]\nfn f() {\n    body();\n}\n");
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn cfg_feature_does_not_gate() {
        let f = parse("#[cfg(feature = \"slow\")]\nfn f() {\n    body();\n}\n");
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn trailing_annotation_covers_its_line() {
        let f = parse("let x = v.unwrap(); // wslint: allow(ws004): startup only\n");
        assert!(f.allowed("ws004", 1));
        assert!(!f.allowed("ws002", 1));
    }

    #[test]
    fn standalone_annotation_covers_next_code_line() {
        let f =
            parse("// wslint: allow(ws001): pacing is wall-clock by design\n\nlet t = now();\n");
        assert!(f.allowed("ws001", 3));
    }

    #[test]
    fn reasonless_annotation_fails_closed() {
        let f = parse("let x = v.unwrap(); // wslint: allow(ws004):\n");
        assert!(!f.allowed("ws004", 1));
        let f = parse("let x = v.unwrap(); // wslint: allow(ws004)\n");
        assert!(!f.allowed("ws004", 1));
    }

    #[test]
    fn nested_test_mod_braces_do_not_end_the_region_early() {
        let f = parse(
            "#[cfg(test)]\nmod tests {\n    fn a() { if x { y(); } }\n    fn b() {}\n}\nfn live() {}\n",
        );
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }
}
