//! Coverage for the mapped codes so only WS005 fires in this fixture.
fn sa001_positive_interleaving() {}
fn sa001_negative_serial() {}
fn sa002_positive_basic() {}
fn sa002_negative_basic() {}
