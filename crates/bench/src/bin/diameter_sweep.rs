//! EXT-DIAM: restoring the point-to-point formulation of \[4\].
//!
//! The paper converts Attiya–Mavronicolas's results by letting `d2` subsume
//! the network diameter (Table 1 conversion note (1)). This sweep undoes
//! the conversion: the asynchronous algorithm runs over explicit topologies
//! where a message takes `hops · per_hop`, and the measured running time
//! exhibits the diameter factor directly.
//!
//! ```text
//! cargo run -p session-bench --bin diameter_sweep
//! cargo run -p session-bench --bin diameter_sweep -- --json   # BENCH_diameter_sweep.json
//! ```

use session_bench::format::{section, Row};
use session_bench::json_report::{json_flag, JsonReport};
use session_core::report::{run_mp, MpConfig};
use session_sim::{FixedPeriods, HopDelay, RunLimits};
use session_types::{Dur, KnownBounds, SessionSpec, Time, TimingModel};

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_diameter_sweep.json");
    let s = 6u64;
    let n = 8usize;
    let per_hop = Dur::from_int(5);
    let period = Dur::from_int(1);
    let spec = SessionSpec::new(s, n, 2).expect("valid spec");

    println!("# EXT-DIAM — the diameter factor of point-to-point networks\n");
    let topologies: Vec<(&str, HopDelay)> = vec![
        ("complete", HopDelay::complete(n, per_hop).unwrap()),
        ("star", HopDelay::star(n, per_hop).unwrap()),
        ("ring", HopDelay::ring(n, per_hop).unwrap()),
        ("line", HopDelay::line(n, per_hop).unwrap()),
    ];
    let mut rows = Vec::new();
    for (name, mut topology) in topologies {
        let diameter = topology.diameter();
        let d2 = topology.max_delay();
        let mut sched = FixedPeriods::uniform(n, period).expect("valid schedule");
        let report = run_mp(
            MpConfig {
                model: TimingModel::Asynchronous,
                spec,
                bounds: KnownBounds::asynchronous(),
            },
            &mut sched,
            &mut topology,
            RunLimits::default(),
        )
        .expect("run succeeds");
        assert!(report.solves(&spec), "{name} failed");
        let gamma = report.gamma;
        let bound = (d2 + gamma) * (s as i128 - 1) + gamma;
        let measured = report.running_time.expect("terminated") - Time::ZERO;
        rows.push(Row::new([
            name.to_owned(),
            diameter.to_string(),
            d2.to_string(),
            measured.to_string(),
            bound.to_string(),
        ]));
    }
    let headers = [
        "topology",
        "diameter",
        "effective d2",
        "measured",
        "(s−1)(d2+γ)+γ",
    ];
    let title = format!("asynchronous MP, s = {s}, n = {n}, per_hop = {per_hop}, step = {period}");
    print!("{}", section(&title, &headers, &rows));
    println!(
        "The measured column scales with the diameter column — the factor the\n\
         paper folded into d2."
    );
    if let Some(path) = json_path {
        let mut report =
            JsonReport::new("EXT-DIAM — the diameter factor of point-to-point networks");
        report.section(&title, &headers, &rows);
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}
