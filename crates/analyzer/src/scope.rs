//! Small-scope definitions: system size, timing menus and exploration
//! budgets.
//!
//! Small-scope model checking replaces the continuum of admissible timed
//! executions with a finite menu of step gaps and message delays, chosen so
//! that every menu element is admissible under the target's
//! [`KnownBounds`] and the menus still contain the adversarial extremes the
//! lower-bound proofs use (slowest-allowed process, widest delay spread).
//! Exploring *all* interleavings over those menus is then exhaustive for
//! the chosen scope.

use session_types::{Dur, TimingModel};

/// One analysis scope: the system size and the finite timing menus.
#[derive(Clone, Debug)]
pub struct Scope {
    /// Number of ports (= number of port processes).
    pub n: usize,
    /// Required sessions.
    pub s: u64,
    /// Shared-variable fan-in bound (shared-memory targets only).
    pub b: usize,
    /// The timing model the menus were derived from.
    pub model: TimingModel,
    /// Admissible step gaps a process may choose at each step. For the
    /// periodic model these are the *candidate periods*: each process picks
    /// one per run and sticks to it.
    pub gaps: Vec<Dur>,
    /// Admissible per-recipient message delays (message-passing targets
    /// only; empty for shared memory).
    pub delays: Vec<Dur>,
    /// Exploration stops along any path after this many events; correct
    /// algorithms must quiesce strictly sooner on every path, so hitting
    /// the budget is reported as `SA005`.
    pub max_depth: usize,
}

impl Scope {
    /// Renders the scope as a single diagnostic line, so every finding is
    /// reproducible from its report alone.
    pub fn describe(&self) -> String {
        let gaps: Vec<String> = self.gaps.iter().map(|d| format!("{d}")).collect();
        let delays: Vec<String> = self.delays.iter().map(|d| format!("{d}")).collect();
        format!(
            "model={:?} n={} s={} b={} gaps=[{}] delays=[{}] max_depth={}",
            self.model,
            self.n,
            self.s,
            self.b,
            gaps.join(","),
            delays.join(","),
            self.max_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_deterministic_and_complete() {
        let scope = Scope {
            n: 2,
            s: 2,
            b: 2,
            model: TimingModel::Sporadic,
            gaps: vec![Dur::from_int(1), Dur::from_int(7)],
            delays: vec![Dur::ZERO, Dur::from_int(2)],
            max_depth: 40,
        };
        let line = scope.describe();
        assert!(line.contains("model=Sporadic"));
        assert!(line.contains("n=2 s=2 b=2"));
        assert!(line.contains("gaps=[1,7]"));
        assert!(line.contains("delays=[0,2]"));
        assert!(line.contains("max_depth=40"));
        assert_eq!(line, scope.describe());
    }
}
