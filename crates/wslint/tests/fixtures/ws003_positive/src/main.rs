//! Positive: two functions acquire the same pair of locks in opposite
//! orders — a classic AB/BA deadlock.
use std::sync::Mutex;

pub struct State {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

impl State {
    pub fn forward(&self) {
        if let Ok(ga) = self.a.lock() {
            if let Ok(gb) = self.b.lock() {
                let _ = (ga, gb);
            }
        }
    }

    pub fn backward(&self) {
        if let Ok(gb) = self.b.lock() {
            if let Ok(ga) = self.a.lock() {
                let _ = (ga, gb);
            }
        }
    }
}

fn main() {}
