//! The sharded session service: the session problem as a network
//! service multiplexing ≥100k concurrent `(s, n)`-session instances.
//!
//! `crates/net` runs exactly one real-clock execution at a time, with
//! one OS thread per process. This crate is the scale-out layer above
//! it: N shard threads each own a [time wheel](wheel::TimeWheel) that
//! drives the nominal clocks of tens of thousands of co-located session
//! instances, while per-connection reader/writer threads carry a small
//! [length-prefixed wire protocol](wire) over TCP or UDP. The pieces:
//!
//! - [`wire`]: the frame format shared by both transports.
//! - [`peer`]: bounded egress queues, `Open` token buckets, reputation
//!   scoring and address bans — a misbehaving or slow client must never
//!   stall an honest session.
//! - [`wheel`]: the hashed time wheel replacing thread-per-process
//!   pacing.
//! - [`session`]: one multiplexed instance — the same machines, gap
//!   rules ([`session_pacing`]) and nominal-time bookkeeping as
//!   `crates/net`, minus the threads.
//! - [`shard`]: the event loop; admission control load-sheds new
//!   sessions (`Reject{Busy}`) before degrading live ones.
//! - [`server`] / [`client`]: lifecycle, sockets and routing; a test
//!   and benchmark client.
//!
//! Correctness is spot-checked on-line: one in `sample_every` admitted
//! instances records full `ProcessLog`s and is replayed at close
//! through `net::verify_conformance`, proving the multiplexed execution
//! admissible for its timing model exactly as a dedicated `crates/net`
//! run would be. Telemetry flows through the `crates/obs` registry
//! under `serve.*` names (DESIGN.md §15/§16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod peer;
pub mod server;
pub mod session;
pub mod shard;
pub mod wheel;
pub mod wire;

pub use client::{ServeClient, UdpServeClient};
pub use config::{ServeConfig, ServeTransport};
pub use peer::{PeerHandle, PeerManager, TokenBucket};
pub use server::{ServeReport, Server};
pub use session::{bounds_for, SessionInstance};
pub use wheel::TimeWheel;
pub use wire::{ClientFrame, ConformanceVerdict, RejectCode, ServerFrame};
