//! End-to-end checks of every Table 1 algorithm: correctness (≥ s disjoint
//! sessions, counted independently from the trace), admissibility of the
//! generated computations, and running times within the upper-bound shapes.

use session_core::bounds;
use session_core::report::{run_mp, run_sm, MpConfig, RunReport, SmConfig};
use session_core::verify::check_admissible;
use session_sim::{ConstantDelay, FixedPeriods, RunLimits, SlowProcess, UniformDelay};
use session_smm::TreeSpec;
use session_types::{Dur, KnownBounds, ProcessId, SessionSpec, Time, TimingModel};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

fn spec(s: u64, n: usize, b: usize) -> SessionSpec {
    SessionSpec::new(s, n, b).unwrap()
}

fn assert_solves(report: &RunReport, spec: &SessionSpec, label: &str) {
    assert!(report.terminated, "{label}: did not terminate");
    assert!(
        report.sessions >= spec.s(),
        "{label}: only {} sessions, needed {}",
        report.sessions,
        spec.s()
    );
}

#[test]
fn synchronous_sm_exact_running_time() {
    for (s, n) in [(1, 2), (3, 4), (6, 9)] {
        let sp = spec(s, n, 2);
        let c2 = d(4);
        let bounds_k = KnownBounds::synchronous(c2, d(1)).unwrap();
        let tree = TreeSpec::build(n, 2);
        let mut sched = FixedPeriods::uniform(n + tree.num_relays(), c2).unwrap();
        let report = run_sm(
            SmConfig {
                model: TimingModel::Synchronous,
                spec: sp,
                bounds: bounds_k,
            },
            &mut sched,
            RunLimits::default(),
        )
        .unwrap();
        assert_solves(&report, &sp, "sync SM");
        check_admissible(&report.trace, &bounds_k).unwrap();
        let expected = Time::ZERO + bounds::sync_time(s, c2);
        assert_eq!(report.running_time, Some(expected), "s={s}, n={n}");
    }
}

#[test]
fn synchronous_mp_exact_running_time() {
    let sp = spec(5, 4, 2);
    let c2 = d(3);
    let bounds_k = KnownBounds::synchronous(c2, d(2)).unwrap();
    let mut sched = FixedPeriods::uniform(4, c2).unwrap();
    let mut delays = ConstantDelay::new(d(2)).unwrap();
    let report = run_mp(
        MpConfig {
            model: TimingModel::Synchronous,
            spec: sp,
            bounds: bounds_k,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
    )
    .unwrap();
    assert_solves(&report, &sp, "sync MP");
    check_admissible(&report.trace, &bounds_k).unwrap();
    assert_eq!(
        report.running_time,
        Some(Time::ZERO + bounds::sync_time(5, c2))
    );
}

#[test]
fn periodic_sm_heterogeneous_periods() {
    // Periods unknown to the algorithm; delays do not exist in SM.
    for (s, n, b) in [(2, 3, 2), (4, 6, 2), (3, 9, 3)] {
        let sp = spec(s, n, b);
        let bounds_k = KnownBounds::periodic(d(1)).unwrap();
        let tree = TreeSpec::build(n, b);
        let num = n + tree.num_relays();
        // Hidden periods 1..=num (port process i gets period i+1).
        let periods: Vec<Dur> = (0..num).map(|i| d(i as i128 % 5 + 1)).collect();
        let c_max = periods.iter().copied().fold(Dur::ZERO, Dur::max);
        let mut sched = FixedPeriods::new(periods).unwrap();
        let report = run_sm(
            SmConfig {
                model: TimingModel::Periodic,
                spec: sp,
                bounds: bounds_k,
            },
            &mut sched,
            RunLimits::default(),
        )
        .unwrap();
        assert_solves(&report, &sp, "periodic SM");
        check_admissible(&report.trace, &bounds_k).unwrap();
        // Shape check: s*c_max + (flood + slack)*c_max.
        let budget = c_max * (s as i128 + tree.flood_rounds_bound() as i128 + 3);
        let rt = report.running_time.unwrap() - Time::ZERO;
        assert!(
            rt <= budget,
            "periodic SM (s={s}, n={n}, b={b}): {rt} > {budget}"
        );
    }
}

#[test]
fn periodic_sm_survives_a_slowed_port_process() {
    // The Theorem 4.3 adversary schedule: one port process much slower.
    let sp = spec(3, 4, 2);
    let bounds_k = KnownBounds::periodic(d(1)).unwrap();
    let mut sched = SlowProcess::new(d(1), ProcessId::new(2), d(50)).unwrap();
    let report = run_sm(
        SmConfig {
            model: TimingModel::Periodic,
            spec: sp,
            bounds: bounds_k,
        },
        &mut sched,
        RunLimits::default(),
    )
    .unwrap();
    assert_solves(&report, &sp, "periodic SM with slow process");
    check_admissible(&report.trace, &bounds_k).unwrap();
    // The slow process dominates: at least s of its steps are needed.
    let rt = report.running_time.unwrap() - Time::ZERO;
    assert!(rt >= d(50) * 3, "must wait for the slow process: {rt}");
}

#[test]
fn periodic_mp_within_upper_bound_shape() {
    for (s, n) in [(1, 2), (4, 3), (6, 5)] {
        let sp = spec(s, n, 2);
        let d2 = d(20);
        let bounds_k = KnownBounds::periodic(d2).unwrap();
        let periods: Vec<Dur> = (0..n).map(|i| d(i as i128 + 2)).collect();
        let c_max = periods.iter().copied().fold(Dur::ZERO, Dur::max);
        let mut sched = FixedPeriods::new(periods).unwrap();
        let mut delays = ConstantDelay::new(d2).unwrap();
        let report = run_mp(
            MpConfig {
                model: TimingModel::Periodic,
                spec: sp,
                bounds: bounds_k,
            },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        )
        .unwrap();
        assert_solves(&report, &sp, "periodic MP");
        check_admissible(&report.trace, &bounds_k).unwrap();
        // Paper: s*c_max + d2; our variant takes up to two extra steps
        // (message pickup + the explicit extra port step).
        let budget = bounds::periodic_mp_upper(s, c_max, d2) + c_max * 2;
        let rt = report.running_time.unwrap() - Time::ZERO;
        assert!(rt <= budget, "periodic MP (s={s}, n={n}): {rt} > {budget}");
    }
}

#[test]
fn semisync_sm_step_counting_arm_is_exact() {
    // c2/c1 small => silent arm; running time is exactly steps * period
    // when the schedule runs every process at c2.
    let sp = spec(4, 4, 2);
    let c1 = d(2);
    let c2 = d(5);
    let bounds_k = KnownBounds::semi_synchronous(c1, c2, d(10)).unwrap();
    let tree = TreeSpec::build(4, 2);
    let mut sched = FixedPeriods::uniform(4 + tree.num_relays(), c2).unwrap();
    let report = run_sm(
        SmConfig {
            model: TimingModel::SemiSynchronous,
            spec: sp,
            bounds: bounds_k,
        },
        &mut sched,
        RunLimits::default(),
    )
    .unwrap();
    assert_solves(&report, &sp, "semisync SM");
    check_admissible(&report.trace, &bounds_k).unwrap();
    // B = floor(5/2)+1 = 3; steps = 3*3+1 = 10; at period c2 = 5: t = 50.
    let upper = bounds::semisync_sm_upper(4, c1, c2, tree.flood_rounds_bound());
    let rt = report.running_time.unwrap() - Time::ZERO;
    assert_eq!(rt, d(50));
    assert!(rt <= upper);
}

#[test]
fn semisync_sm_communicating_arm_solves() {
    // c2/c1 huge => communication arm through the tree.
    let sp = spec(3, 8, 2);
    let c1 = d(1);
    let c2 = d(1000);
    let bounds_k = KnownBounds::semi_synchronous(c1, c2, d(10)).unwrap();
    let tree = TreeSpec::build(8, 2);
    // Run everyone fast (c1): the communication arm should finish long
    // before the step-counting arm would have.
    let mut sched = FixedPeriods::uniform(8 + tree.num_relays(), c1).unwrap();
    let report = run_sm(
        SmConfig {
            model: TimingModel::SemiSynchronous,
            spec: sp,
            bounds: bounds_k,
        },
        &mut sched,
        RunLimits::default(),
    )
    .unwrap();
    assert_solves(&report, &sp, "semisync SM talking");
    check_admissible(&report.trace, &bounds_k).unwrap();
    let rt = report.running_time.unwrap() - Time::ZERO;
    // Far below the silent arm's (s-1)*(floor(c2/c1)+1)*c1 = 2002 steps.
    assert!(rt < d(2002), "communication arm should win: {rt}");
}

#[test]
fn semisync_mp_both_arms_within_bound() {
    let s = 4;
    let n = 3;
    let sp = spec(s, n, 2);
    // Arm 1: counting wins (d2 huge).
    let c1 = d(2);
    let c2 = d(4);
    let d2 = d(100);
    let bounds_k = KnownBounds::semi_synchronous(c1, c2, d2).unwrap();
    let mut sched = FixedPeriods::uniform(n, c2).unwrap();
    let mut delays = ConstantDelay::new(d2).unwrap();
    let report = run_mp(
        MpConfig {
            model: TimingModel::SemiSynchronous,
            spec: sp,
            bounds: bounds_k,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
    )
    .unwrap();
    assert_solves(&report, &sp, "semisync MP counting");
    check_admissible(&report.trace, &bounds_k).unwrap();
    let rt = report.running_time.unwrap() - Time::ZERO;
    assert!(rt <= bounds::semisync_mp_upper(s, c1, c2, d2));

    // Arm 2: communication wins (d2 tiny).
    let d2 = d(1);
    let bounds_k = KnownBounds::semi_synchronous(d(1), d(50), d2).unwrap();
    let mut sched = FixedPeriods::uniform(n, d(1)).unwrap();
    let mut delays = ConstantDelay::new(d2).unwrap();
    let report = run_mp(
        MpConfig {
            model: TimingModel::SemiSynchronous,
            spec: sp,
            bounds: bounds_k,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
    )
    .unwrap();
    assert_solves(&report, &sp, "semisync MP talking");
    check_admissible(&report.trace, &bounds_k).unwrap();
}

#[test]
fn sporadic_mp_constant_delay_runs() {
    for (s, n, d1v, d2v) in [(2, 2, 0, 8), (4, 3, 2, 8), (3, 4, 8, 8)] {
        let sp = spec(s, n, 2);
        let c1 = d(1);
        let bounds_k = KnownBounds::sporadic(c1, d(d1v), d(d2v)).unwrap();
        let mut sched = FixedPeriods::uniform(n, d(2)).unwrap(); // gaps 2 >= c1
        let mut delays = UniformDelay::new(d(d1v), d(d2v), 11).unwrap();
        let report = run_mp(
            MpConfig {
                model: TimingModel::Sporadic,
                spec: sp,
                bounds: bounds_k,
            },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        )
        .unwrap();
        assert_solves(&report, &sp, "sporadic MP");
        check_admissible(&report.trace, &bounds_k).unwrap();
        // Theorem 6.1 raw form: min{...}(s-2) + d2 + 2γ; allow the full
        // slack of the first session.
        let budget = bounds::sporadic_mp_upper(s, c1, d(d1v), d(d2v), report.gamma)
            + d(d2v)
            + report.gamma * 2;
        let rt = report.running_time.unwrap() - Time::ZERO;
        assert!(
            rt <= budget,
            "sporadic MP (s={s}, n={n}, d1={d1v}, d2={d2v}): {rt} > {budget}"
        );
    }
}

#[test]
fn async_sm_round_complexity() {
    for (s, n, b) in [(2, 4, 2), (4, 8, 2), (3, 9, 3)] {
        let sp = spec(s, n, b);
        let bounds_k = KnownBounds::asynchronous();
        let tree = TreeSpec::build(n, b);
        let mut sched = FixedPeriods::uniform(n + tree.num_relays(), d(1)).unwrap();
        let report = run_sm(
            SmConfig {
                model: TimingModel::Asynchronous,
                spec: sp,
                bounds: bounds_k,
            },
            &mut sched,
            RunLimits::default(),
        )
        .unwrap();
        assert_solves(&report, &sp, "async SM");
        // Round budget: one flood per wave plus slack.
        let budget = (s + 1) * tree.flood_rounds_bound() + 2;
        assert!(
            report.rounds <= budget,
            "async SM (s={s}, n={n}, b={b}): {} rounds > {budget}",
            report.rounds
        );
    }
}

#[test]
fn async_mp_within_upper_bound_shape() {
    for (s, n) in [(2, 2), (5, 4)] {
        let sp = spec(s, n, 2);
        let bounds_k = KnownBounds::asynchronous();
        let period = d(3);
        let d2 = d(7);
        let mut sched = FixedPeriods::uniform(n, period).unwrap();
        let mut delays = ConstantDelay::new(d2).unwrap();
        let report = run_mp(
            MpConfig {
                model: TimingModel::Asynchronous,
                spec: sp,
                bounds: bounds_k,
            },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        )
        .unwrap();
        assert_solves(&report, &sp, "async MP");
        // (s-1)(d2 + γ) + γ with γ = the actual max gap.
        let gamma = report.gamma;
        let budget = (d2 + gamma) * (s as i128 - 1) + gamma;
        let rt = report.running_time.unwrap() - Time::ZERO;
        assert!(rt <= budget, "async MP (s={s}, n={n}): {rt} > {budget}");
    }
}

#[test]
fn sporadic_sm_is_the_async_algorithm() {
    let sp = spec(3, 4, 2);
    let bounds_k = KnownBounds::sporadic(d(1), d(0), d(5)).unwrap();
    let tree = TreeSpec::build(4, 2);
    let mut sched = FixedPeriods::uniform(4 + tree.num_relays(), d(2)).unwrap();
    let report = run_sm(
        SmConfig {
            model: TimingModel::Sporadic,
            spec: sp,
            bounds: bounds_k,
        },
        &mut sched,
        RunLimits::default(),
    )
    .unwrap();
    assert_solves(&report, &sp, "sporadic SM");
    check_admissible(&report.trace, &bounds_k).unwrap();
}

#[test]
fn running_time_never_below_trivial_lower_bound() {
    // Every correct run needs at least s port steps from the slowest
    // process: running time >= s * (its period) for periodic schedules.
    let sp = spec(4, 3, 2);
    let bounds_k = KnownBounds::periodic(d(5)).unwrap();
    let mut sched = FixedPeriods::new(vec![d(2), d(3), d(7)]).unwrap();
    let mut delays = ConstantDelay::new(d(5)).unwrap();
    let report = run_mp(
        MpConfig {
            model: TimingModel::Periodic,
            spec: sp,
            bounds: bounds_k,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
    )
    .unwrap();
    assert_solves(&report, &sp, "periodic MP trivial lower bound");
    let rt = report.running_time.unwrap() - Time::ZERO;
    assert!(rt >= d(7) * 4, "{rt} < s * c_max");
}
