//! Counting disjoint sessions in a trace.
//!
//! A *session* is a minimal-length computation fragment containing at least
//! one port step for each of the `n` ports (§2.3). The maximum number of
//! disjoint sessions in a computation is computed greedily: scan the port
//! steps in time order, close a session as soon as every port has been seen,
//! and start over. Greedy is optimal for this minimal-fragment
//! decomposition: closing a session at the earliest possible point leaves
//! the longest possible suffix for the remaining sessions (certified against
//! a brute-force reference in the test suite).
//!
//! **Idle steps do not count.** Once a port process has entered an idle
//! state, its later steps no longer constitute port steps for counting
//! purposes. This is the reading required by the paper's lower-bound
//! arguments ("at least one port process ... is in an idle state, but `p'`
//! has not taken a step yet; thus the computation contains less than `s`
//! sessions"): if idle steps kept producing sessions, those arguments — and
//! the problem itself — would be vacuous.

use std::collections::BTreeSet;

use session_sim::Trace;
use session_types::{PortId, ProcessId};

/// The event indices at which each disjoint session closes, in order.
///
/// `port_of` maps a process to the port it realizes, for the
/// message-passing model where every (pre-idle) step of a port process is a
/// port step; shared-memory port steps are identified by the trace itself.
/// `n` is the number of ports that must all appear in each session.
pub fn session_boundaries<F>(trace: &Trace, n: usize, port_of: F) -> Vec<usize>
where
    F: Fn(ProcessId) -> Option<PortId>,
{
    let mut boundaries = Vec::new();
    if n == 0 {
        return boundaries;
    }
    let mut idle: BTreeSet<ProcessId> = BTreeSet::new();
    let mut covered: BTreeSet<PortId> = BTreeSet::new();
    // Pair each event index with its port (if it is a countable port step).
    let port_steps: Vec<(usize, ProcessId, PortId, bool)> = trace
        .events()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            let port = match &e.kind {
                session_sim::StepKind::VarAccess { port, .. } => *port,
                session_sim::StepKind::MpStep { .. } => port_of(e.process),
                session_sim::StepKind::Deliver { .. } => None,
            };
            port.map(|y| (i, e.process, y, e.idle_after))
        })
        .collect();
    for (i, process, port, idle_after) in port_steps {
        let was_idle = idle.contains(&process);
        if idle_after {
            idle.insert(process);
        }
        if was_idle {
            continue; // idle steps are not port steps
        }
        covered.insert(port);
        if covered.len() >= n {
            boundaries.push(i);
            covered.clear();
        }
    }
    boundaries
}

/// The maximum number of disjoint sessions in the trace.
///
/// # Examples
///
/// ```
/// use session_core::verify::count_sessions;
/// use session_sim::{StepKind, Trace, TraceEvent};
/// use session_types::{PortId, ProcessId, Time, VarId};
///
/// let mut trace = Trace::new(2);
/// for (t, p) in [(1, 0), (1, 1), (2, 1), (3, 0)] {
///     trace.push(TraceEvent {
///         time: Time::from_int(t),
///         process: ProcessId::new(p),
///         kind: StepKind::VarAccess { var: VarId::new(p), port: Some(PortId::new(p)) },
///         idle_after: false,
///     });
/// }
/// // {p0, p1} then {p1, p0}: two disjoint sessions over n = 2 ports.
/// assert_eq!(count_sessions(&trace, 2, |_| None), 2);
/// ```
pub fn count_sessions<F>(trace: &Trace, n: usize, port_of: F) -> u64
where
    F: Fn(ProcessId) -> Option<PortId>,
{
    session_boundaries(trace, n, port_of).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_sim::{StepKind, TraceEvent};
    use session_types::{Time, VarId};

    /// Builds an SM trace from (time, process, port, idle_after) tuples.
    fn sm_trace(n: usize, steps: &[(i128, usize, usize, bool)]) -> Trace {
        let mut trace = Trace::new(n);
        for &(t, p, y, idle) in steps {
            trace.push(TraceEvent {
                time: Time::from_int(t),
                process: ProcessId::new(p),
                kind: StepKind::VarAccess {
                    var: VarId::new(y),
                    port: Some(PortId::new(y)),
                },
                idle_after: idle,
            });
        }
        trace
    }

    #[test]
    fn empty_trace_has_no_sessions() {
        let trace = Trace::new(2);
        assert_eq!(count_sessions(&trace, 2, |_| None), 0);
    }

    #[test]
    fn single_full_coverage_is_one_session() {
        let trace = sm_trace(3, &[(1, 0, 0, false), (1, 1, 1, false), (1, 2, 2, false)]);
        assert_eq!(count_sessions(&trace, 3, |_| None), 1);
    }

    #[test]
    fn incomplete_coverage_is_zero_sessions() {
        let trace = sm_trace(3, &[(1, 0, 0, false), (1, 1, 1, false), (2, 0, 0, false)]);
        assert_eq!(count_sessions(&trace, 3, |_| None), 0);
    }

    #[test]
    fn greedy_closes_sessions_as_early_as_possible() {
        // p0 p1 | p1 p0 | p0 p1 -> 3 sessions over 2 ports.
        let trace = sm_trace(
            2,
            &[
                (1, 0, 0, false),
                (1, 1, 1, false),
                (2, 1, 1, false),
                (2, 0, 0, false),
                (3, 0, 0, false),
                (3, 1, 1, false),
            ],
        );
        let b = session_boundaries(&trace, 2, |_| None);
        assert_eq!(b, vec![1, 3, 5]);
    }

    #[test]
    fn repeated_steps_of_one_port_do_not_advance() {
        let trace = sm_trace(
            2,
            &[
                (1, 0, 0, false),
                (2, 0, 0, false),
                (3, 0, 0, false),
                (4, 1, 1, false),
            ],
        );
        assert_eq!(count_sessions(&trace, 2, |_| None), 1);
    }

    #[test]
    fn idle_steps_are_excluded() {
        // p1 idles at its first step; its later steps cannot form sessions.
        let trace = sm_trace(
            2,
            &[
                (1, 1, 1, true),  // p1's idling step still counts (pre-idle)
                (1, 0, 0, false), // closes session 1
                (2, 1, 1, true),  // idle: ignored
                (2, 0, 0, false),
                (3, 1, 1, true), // idle: ignored
                (3, 0, 0, false),
            ],
        );
        assert_eq!(count_sessions(&trace, 2, |_| None), 1);
    }

    #[test]
    fn the_idling_step_itself_counts() {
        // Both processes idle on their very first (and only) port step.
        let trace = sm_trace(2, &[(1, 0, 0, true), (1, 1, 1, true)]);
        assert_eq!(count_sessions(&trace, 2, |_| None), 1);
    }

    #[test]
    fn mp_steps_use_the_port_map() {
        let mut trace = Trace::new(2);
        for (t, p) in [(1, 0), (1, 1), (2, 0), (2, 1)] {
            trace.push(TraceEvent {
                time: Time::from_int(t),
                process: ProcessId::new(p),
                kind: StepKind::MpStep {
                    received: 0,
                    broadcast: false,
                },
                idle_after: false,
            });
        }
        let port_of = |p: ProcessId| Some(PortId::new(p.index()));
        assert_eq!(count_sessions(&trace, 2, port_of), 2);
        // Processes without a port contribute nothing.
        assert_eq!(count_sessions(&trace, 2, |_| None), 0);
    }

    #[test]
    fn deliveries_never_count() {
        let mut trace = Trace::new(2);
        let msg = trace.record_send(ProcessId::new(0), ProcessId::new(1), Time::ZERO);
        trace.push(TraceEvent {
            time: Time::from_int(1),
            process: ProcessId::new(1),
            kind: StepKind::Deliver { msg },
            idle_after: false,
        });
        assert_eq!(
            count_sessions(&trace, 1, |p| Some(PortId::new(p.index()))),
            0
        );
    }

    #[test]
    fn n_zero_yields_no_sessions() {
        let trace = sm_trace(1, &[(1, 0, 0, false)]);
        assert_eq!(count_sessions(&trace, 0, |_| None), 0);
    }

    /// Brute-force reference: maximum number of disjoint consecutive
    /// fragments, each containing all ports, trying *every* closing
    /// position for each session.
    fn brute_force(ports: &[usize], n: usize) -> u64 {
        fn go(ports: &[usize], n: usize, start: usize) -> u64 {
            let mut covered = BTreeSet::new();
            let mut best = 0;
            for (offset, &y) in ports[start..].iter().enumerate() {
                covered.insert(y);
                if covered.len() >= n {
                    // Close the session here (or anywhere later; closing
                    // later can only waste steps, but we try all anyway).
                    let rest = go(ports, n, start + offset + 1);
                    best = best.max(1 + rest);
                }
            }
            best
        }
        if n == 0 {
            return 0;
        }
        go(ports, n, 0)
    }

    #[test]
    fn greedy_matches_brute_force_on_exhaustive_small_inputs() {
        // All port sequences of length <= 7 over 2 ports, and length <= 5
        // over 3 ports.
        for n in [2usize, 3] {
            let max_len = if n == 2 { 7 } else { 5 };
            for len in 0..=max_len {
                let total = n.pow(len as u32);
                for code in 0..total {
                    let mut seq = Vec::with_capacity(len);
                    let mut c = code;
                    for _ in 0..len {
                        seq.push(c % n);
                        c /= n;
                    }
                    let steps: Vec<(i128, usize, usize, bool)> = seq
                        .iter()
                        .enumerate()
                        .map(|(i, &y)| (i as i128 + 1, y, y, false))
                        .collect();
                    let trace = sm_trace(n, &steps);
                    assert_eq!(
                        count_sessions(&trace, n, |_| None),
                        brute_force(&seq, n),
                        "sequence {seq:?} over {n} ports"
                    );
                }
            }
        }
    }
}
