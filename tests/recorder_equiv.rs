//! `JsonlRecorder` and `InMemoryRecorder` must observe identical event
//! sequences for the same recorded run: the streaming backend's lines,
//! aggregated, must reproduce exactly the in-memory backend's snapshot.
//! A deterministic configuration (fixed seed, fixed schedule) makes the
//! two runs bit-identical, so any divergence is a recorder bug, not
//! nondeterminism.

use std::collections::BTreeMap;

use session_problem::cli::CliConfig;
use session_problem::obs::{InMemoryRecorder, JsonlRecorder};

/// Counters summed, gauges last-write-wins, samples counted — the same
/// aggregation `InMemoryRecorder` performs.
#[derive(Debug, Default, PartialEq)]
struct Aggregated {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    sample_counts: BTreeMap<String, u64>,
}

/// Pulls `"key":value` out of a single-line JSON object emitted by
/// `JsonlRecorder` (its writer emits no spaces and no nesting).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

fn aggregate(jsonl: &str) -> Aggregated {
    let mut agg = Aggregated::default();
    for line in jsonl.lines() {
        let kind = field(line, "type").expect("typed line");
        let name = field(line, "name").expect("named line").to_string();
        match kind {
            "counter" => {
                let delta: u64 = field(line, "delta").unwrap().parse().unwrap();
                *agg.counters.entry(name).or_default() += delta;
            }
            "gauge" => {
                let value: f64 = field(line, "value").unwrap().parse().unwrap();
                agg.gauges.insert(name, value);
            }
            "sample" => {
                *agg.sample_counts.entry(name).or_default() += 1;
            }
            "span" => {}
            other => panic!("unknown line type `{other}`: {line}"),
        }
    }
    agg
}

fn deterministic_config(args: &[&str]) -> CliConfig {
    CliConfig::parse(args).expect("config parses")
}

fn assert_equivalent(args: &[&str]) {
    let config = deterministic_config(args);

    let mut jsonl = JsonlRecorder::new(Vec::new());
    let (report_a, _) = config.run_recorded(&mut jsonl).expect("jsonl run");
    let bytes = jsonl.finish().expect("no write errors");
    let streamed = aggregate(&String::from_utf8(bytes).expect("utf8"));

    let mut memory = InMemoryRecorder::new();
    let (report_b, _) = config.run_recorded(&mut memory).expect("memory run");
    let snapshot = memory.into_snapshot();

    // Same run at all: identical verified outcomes.
    assert_eq!(report_a.sessions, report_b.sessions, "{args:?}");
    assert_eq!(report_a.steps, report_b.steps, "{args:?}");

    // Identical event sequences: every aggregate the snapshot holds must
    // be reproduced by the stream, and vice versa.
    let mem_counters: BTreeMap<String, u64> = snapshot
        .counters()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    assert_eq!(streamed.counters, mem_counters, "{args:?}");

    let mem_gauges: BTreeMap<String, f64> = snapshot
        .gauges()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    assert_eq!(streamed.gauges, mem_gauges, "{args:?}");

    let mem_samples: BTreeMap<String, u64> = snapshot
        .histograms()
        .map(|(name, h)| (name.to_string(), h.count()))
        .collect();
    assert_eq!(streamed.sample_counts, mem_samples, "{args:?}");
}

#[test]
fn mp_runs_observe_identical_sequences() {
    assert_equivalent(&[
        "model=periodic",
        "comm=mp",
        "s=3",
        "n=3",
        "schedule=uniform:2",
        "delay=const:8",
        "seed=42",
    ]);
}

#[test]
fn sm_runs_observe_identical_sequences() {
    assert_equivalent(&["model=sync", "comm=sm", "s=2", "n=2", "seed=7"]);
}

#[test]
fn randomized_schedules_stay_equivalent_given_the_seed() {
    assert_equivalent(&[
        "model=sporadic",
        "comm=mp",
        "s=2",
        "n=3",
        "schedule=bursts",
        "delay=uniform",
        "seed=1234",
    ]);
}
