fn sa001_positive_interleaving() {}
