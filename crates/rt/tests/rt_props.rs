//! Property-based tests for the real-time substrate: the analytic
//! schedulability verdicts versus what the simulated processor actually
//! does, across random task sets.

use proptest::prelude::*;
use session_rt::sched::{simulate, Policy};
use session_rt::{analysis, PeriodicTask, TaskSet};
use session_types::{Dur, Ratio, Time};

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: i128, b: i128) -> i128 {
    a / gcd(a, b) * b
}

/// Random task sets over a small period menu so hyperperiods stay tiny.
fn task_sets() -> impl Strategy<Value = TaskSet> {
    let menu = [2i128, 3, 4, 5, 6, 8, 10, 12];
    proptest::collection::vec((0usize..menu.len(), 1i128..4), 1..5).prop_map(move |raw| {
        let tasks = raw
            .into_iter()
            .map(|(pi, c)| {
                let t = menu[pi];
                let c = c.min(t);
                PeriodicTask::new(Dur::from_int(t), Dur::from_int(c)).unwrap()
            })
            .collect();
        TaskSet::periodic(tasks).unwrap()
    })
}

fn hyperperiod(tasks: &TaskSet) -> i128 {
    tasks
        .iter()
        .map(|(_, t)| t.period().as_ratio().numer())
        .fold(1, lcm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// EDF is optimal: U <= 1 implies no deadline misses over two
    /// hyperperiods (and synchronous periodic behaviour repeats, so two
    /// hyperperiods decide forever).
    #[test]
    fn edf_meets_deadlines_iff_u_at_most_one(tasks in task_sets()) {
        let horizon = Time::from_int(2 * hyperperiod(&tasks));
        let outcome = simulate(&tasks, Policy::EdfPreemptive, horizon).unwrap();
        if tasks.utilization() <= Ratio::ONE {
            prop_assert!(outcome.all_deadlines_met(),
                "U = {} <= 1 but EDF missed {} deadlines", tasks.utilization(), outcome.misses);
        } else {
            prop_assert!(!outcome.all_deadlines_met(),
                "U = {} > 1 but EDF missed nothing over {horizon}", tasks.utilization());
        }
    }

    /// The exact response-time analysis agrees with the simulated
    /// rate-monotonic scheduler (critical instant at t = 0, D = T).
    #[test]
    fn rta_agrees_with_rm_simulation(tasks in task_sets()) {
        let horizon = Time::from_int(2 * hyperperiod(&tasks));
        let outcome = simulate(&tasks, Policy::RmPreemptive, horizon).unwrap();
        prop_assert_eq!(
            analysis::rm_schedulable(&tasks),
            outcome.all_deadlines_met(),
            "U = {} misses = {}", tasks.utilization(), outcome.misses
        );
    }

    /// The Liu–Layland bound is sound: sets under the bound are
    /// RM-schedulable both analytically and in simulation.
    #[test]
    fn liu_layland_bound_is_sound(tasks in task_sets()) {
        if analysis::rm_utilization_test(&tasks) {
            prop_assert!(analysis::rm_schedulable(&tasks));
            let horizon = Time::from_int(2 * hyperperiod(&tasks));
            let outcome = simulate(&tasks, Policy::RmPreemptive, horizon).unwrap();
            prop_assert!(outcome.all_deadlines_met());
        }
    }

    /// The Jeffay–Stanat–Martel conditions are sufficient for the
    /// simulated non-preemptive EDF scheduler.
    #[test]
    fn np_edf_conditions_are_sufficient(tasks in task_sets()) {
        if analysis::np_edf_schedulable(&tasks) {
            let horizon = Time::from_int(2 * hyperperiod(&tasks));
            let outcome = simulate(&tasks, Policy::EdfNonPreemptive, horizon).unwrap();
            prop_assert!(
                outcome.all_deadlines_met(),
                "JSM-feasible set missed {} deadlines (U = {})",
                outcome.misses, tasks.utilization()
            );
        }
    }

    /// Preemption never hurts EDF: if non-preemptive EDF meets all
    /// deadlines, so does preemptive EDF (U <= 1 by JSM condition 1 and
    /// EDF optimality).
    #[test]
    fn preemptive_edf_dominates_np_feasible_sets(tasks in task_sets()) {
        if analysis::np_edf_schedulable(&tasks) {
            let horizon = Time::from_int(2 * hyperperiod(&tasks));
            let p = simulate(&tasks, Policy::EdfPreemptive, horizon).unwrap();
            prop_assert!(p.all_deadlines_met());
        }
    }
}
