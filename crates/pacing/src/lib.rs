//! Transport-agnostic step pacing: per-model gap rules and the nominal
//! logical clock they drive.
//!
//! Two executors realize the paper's timing models on wall clocks: the
//! thread-per-process runtime (`session-net`, one OS thread sleeping per
//! process) and the sharded session service (`session-serve`, a time
//! wheel multiplexing tens of thousands of sessions per thread). Both
//! need exactly the same two ingredients, so they live here, below any
//! transport or scheduling choice:
//!
//! - [`GapRule`]: how one process's consecutive step gaps are chosen —
//!   constant for synchronous (always `c2`) and periodic (a per-process
//!   constant sampled once), freshly sampled from a window for
//!   semi-synchronous / sporadic / asynchronous, or replayed from a
//!   script (sporadic job-completion streams from `session-rt`).
//! - [`NominalClock`]: the fold of a gap rule into a monotone sequence of
//!   *nominal* step times. Nominal times are what runs record and what
//!   the conformance harness verifies: every gap is drawn inside the
//!   model's window, so a completed run is admissible by construction,
//!   while physical wake-up jitter is reported separately as lag.
//!
//! How nominal time maps onto wall-clock instants — one sleeping thread,
//! a time wheel, a simulator event queue — is the *caller's* concern;
//! nothing in this crate sleeps or owns a socket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use session_sim::ratio_in_range;
use session_types::{Dur, KnownBounds, Time, TimingModel};

/// Granularity for sampled gaps and delays: all sampled rationals have
/// denominator dividing 4, so long runs cannot overflow the exact-rational
/// arithmetic.
pub const GRANULARITY: u32 = 4;

/// How one process's consecutive step gaps are chosen.
#[derive(Clone, Debug)]
pub enum GapRule {
    /// Every gap is exactly this duration (synchronous `c2`; periodic uses
    /// a per-process constant sampled once at startup).
    Constant(Dur),
    /// Each gap is freshly sampled from `[lo, hi]`.
    Window {
        /// Smallest admissible gap.
        lo: Dur,
        /// Largest gap the pacer will choose.
        hi: Dur,
    },
    /// Gaps replay a script (e.g. a job-completion stream from
    /// `session-rt`), then repeat the final gap forever.
    Script(Vec<Dur>),
}

impl GapRule {
    /// The rule `model` prescribes for one process under `bounds`.
    ///
    /// `window` is the configured `[c1, c2]` fallback for the places the
    /// model itself has no bound (the periodic model's per-process period
    /// is sampled from it; the sporadic and asynchronous models pace
    /// inside it). `script`, when present, replays explicit gaps (only
    /// meaningful for the sporadic model — callers validate that).
    ///
    /// `rng` is consumed only by the periodic model, which samples each
    /// process's constant period once, here.
    pub fn for_model(
        model: TimingModel,
        bounds: &KnownBounds,
        window: (Dur, Dur),
        script: Option<&[Dur]>,
        rng: &mut StdRng,
    ) -> GapRule {
        match model {
            TimingModel::Synchronous => {
                // wslint: allow(ws004): model/bounds pairing is validated at construction
                GapRule::Constant(bounds.c2().expect("synchronous bounds have c2"))
            }
            TimingModel::Periodic => GapRule::Constant(sample(rng, window.0, window.1)),
            TimingModel::SemiSynchronous => GapRule::Window {
                lo: bounds.c1().expect("semi-synchronous bounds have c1"), // wslint: allow(ws004): model/bounds pairing is validated at construction
                hi: bounds.c2().expect("semi-synchronous bounds have c2"), // wslint: allow(ws004): model/bounds pairing is validated at construction
            },
            TimingModel::Sporadic => {
                if let Some(script) = script {
                    GapRule::Script(script.to_vec())
                } else {
                    GapRule::Window {
                        lo: window.0,
                        hi: window.1.max(window.0),
                    }
                }
            }
            TimingModel::Asynchronous => GapRule::Window {
                lo: window.0,
                hi: window.1,
            },
        }
    }
}

/// Draws a duration uniformly from the `GRANULARITY + 1` evenly spaced
/// points of `[lo, hi]`.
pub fn sample(rng: &mut StdRng, lo: Dur, hi: Dur) -> Dur {
    Dur::from_ratio(ratio_in_range(
        rng,
        lo.as_ratio(),
        hi.as_ratio(),
        GRANULARITY,
    ))
}

/// One process's nominal step clock: folds a [`GapRule`] into the monotone
/// sequence of logical step times, with no opinion about wall clocks.
///
/// The first step's gap is measured from time 0, matching the
/// admissibility checker.
#[derive(Clone, Debug)]
pub struct NominalClock {
    rule: GapRule,
    now: Time,
    steps_taken: usize,
}

impl NominalClock {
    /// A clock at nominal time 0.
    pub fn new(rule: GapRule) -> NominalClock {
        NominalClock {
            rule,
            now: Time::ZERO,
            steps_taken: 0,
        }
    }

    /// Advances to the next nominal step time and returns it.
    pub fn next(&mut self, rng: &mut StdRng) -> Time {
        let gap = match &self.rule {
            GapRule::Constant(c) => *c,
            GapRule::Window { lo, hi } => sample(rng, *lo, *hi),
            GapRule::Script(gaps) => {
                let i = self.steps_taken.min(gaps.len() - 1);
                gaps[i]
            }
        };
        self.steps_taken += 1;
        self.now += gap;
        self.now
    }

    /// The current nominal time (the last value [`NominalClock::next`]
    /// returned, or 0 before the first step).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_sim::seeded_rng;

    #[test]
    fn constant_rule_advances_exactly() {
        let mut clock = NominalClock::new(GapRule::Constant(Dur::from_int(2)));
        let mut rng = seeded_rng(1);
        assert_eq!(clock.next(&mut rng), Time::from_int(2));
        assert_eq!(clock.next(&mut rng), Time::from_int(4));
        assert_eq!(clock.next(&mut rng), Time::from_int(6));
        assert_eq!(clock.now(), Time::from_int(6));
        assert_eq!(clock.steps_taken(), 3);
    }

    #[test]
    fn window_rule_stays_in_bounds() {
        let lo = Dur::ONE;
        let hi = Dur::from_int(3);
        let mut clock = NominalClock::new(GapRule::Window { lo, hi });
        let mut rng = seeded_rng(7);
        let mut prev = Time::ZERO;
        for _ in 0..50 {
            let t = clock.next(&mut rng);
            let gap = t - prev;
            assert!(gap >= lo && gap <= hi, "gap {gap} outside [{lo}, {hi}]");
            prev = t;
        }
    }

    #[test]
    fn script_rule_replays_then_repeats_the_tail() {
        let mut clock = NominalClock::new(GapRule::Script(vec![Dur::from_int(3), Dur::ONE]));
        let mut rng = seeded_rng(1);
        assert_eq!(clock.next(&mut rng), Time::from_int(3));
        assert_eq!(clock.next(&mut rng), Time::from_int(4));
        assert_eq!(clock.next(&mut rng), Time::from_int(5));
        assert_eq!(clock.next(&mut rng), Time::from_int(6));
    }

    #[test]
    fn periodic_rule_is_constant_per_process_within_the_window() {
        let bounds = KnownBounds::periodic(Dur::from_int(4)).unwrap();
        let window = (Dur::ONE, Dur::from_int(2));
        let mut rng = seeded_rng(3);
        for _ in 0..4 {
            let rule = GapRule::for_model(TimingModel::Periodic, &bounds, window, None, &mut rng);
            let GapRule::Constant(period) = rule else {
                panic!("periodic rule must be constant");
            };
            assert!(period >= window.0 && period <= window.1);
        }
    }

    #[test]
    fn synchronous_rule_pins_the_gap_to_c2() {
        let bounds = KnownBounds::synchronous(Dur::from_int(2), Dur::from_int(4)).unwrap();
        let mut rng = seeded_rng(3);
        let rule = GapRule::for_model(
            TimingModel::Synchronous,
            &bounds,
            (Dur::ONE, Dur::from_int(2)),
            None,
            &mut rng,
        );
        let GapRule::Constant(gap) = rule else {
            panic!("synchronous rule must be constant");
        };
        assert_eq!(gap, Dur::from_int(2));
    }

    #[test]
    fn sporadic_script_takes_precedence_over_the_window() {
        let bounds = KnownBounds::sporadic(Dur::ONE, Dur::ZERO, Dur::from_int(4)).unwrap();
        let mut rng = seeded_rng(3);
        let script = [Dur::from_int(5), Dur::ONE];
        let rule = GapRule::for_model(
            TimingModel::Sporadic,
            &bounds,
            (Dur::ONE, Dur::from_int(2)),
            Some(&script),
            &mut rng,
        );
        let GapRule::Script(gaps) = rule else {
            panic!("scripted sporadic rule must replay the script");
        };
        assert_eq!(gaps, script.to_vec());
    }
}
