//! Partial-order reduction: a static independence relation over the step
//! alphabet driving an ample-set selector for the explorer.
//!
//! # The independence relation
//!
//! Two events co-enabled at the same instant are *independent* when firing
//! them in either order reaches the same joint (machine × session-counter)
//! state and neither order can fire a step-level lint the other cannot.
//! Because every machine fires events in global time order, only
//! same-instant events are ever co-enabled — timing-boundary steps never
//! commute across a round edge, and the selector never has to reason
//! about them. Concretely:
//!
//! * **Shared memory**: steps of distinct processes commute unless they
//!   touch the same b-bounded variable (the variable's value, its
//!   accessor set and the `SA002` trigger are all per-variable; `due`
//!   updates are per-process).
//! * **Message passing**: a delivery to `q` commutes with every event
//!   except `q`'s own step (inboxes are consumed as commutative joins, so
//!   deliveries to the same process commute with each other); steps of
//!   distinct processes commute unless a zero-delay broadcast of one can
//!   enqueue a same-instant delivery to the other.
//! * **Session counter**: non-port events are invisible to the counter.
//!   Port steps commute *as counter updates* whenever no session can
//!   close at the current instant — coverage inserts are then pure set
//!   unions. When a close is possible, the order of a closing step and a
//!   redundant re-cover changes which session window the re-cover lands
//!   in, so port steps are treated as dependent and the state is fully
//!   expanded.
//!
//! # The ample set
//!
//! [`select_ample`] returns the flat-choice range of a single event all of
//! whose co-enabled peers are independent of it (a *persistent* singleton
//! — one event together with every gap/delay parameterization of it).
//! Machines that maintain a session *claim* (`A(sp)`) never get a step
//! singleton: the `SA003` trigger compares the claim against the counter
//! at every edge, and postponing foreign port steps across a claiming
//! step could move the comparison past the violating window.
//!
//! The explorer adds the cycle proviso: if an ample successor closes a
//! cycle on the DFS stack, the remaining choices are expanded after all —
//! otherwise the pruned events could be postponed around that loop
//! forever. Together (C0/C1 via the singleton's independence, C3 via the
//! proviso) every maximal run of the full graph is Mazurkiewicz-equivalent
//! to an explored one, which is why the differential harness sees
//! identical verdicts with the reduction on and off.

use std::ops::Range;

use crate::explore::{AnyMachine, SessionCounter};
use crate::machine::{EligibleKind, MpMachine, SmMachine};

/// Picks an ample singleton for the state, as a contiguous range of the
/// flat choice menu (one event with all its gap/delay sub-choices), or
/// `None` when the state must be fully expanded.
pub(crate) fn select_ample(machine: &AnyMachine, counter: &SessionCounter) -> Option<Range<usize>> {
    match machine {
        AnyMachine::Sm(m) => select_sm(m, counter),
        AnyMachine::Mp(m) => select_mp(m, counter),
    }
}

/// Whether firing the current instant's visible port steps could close a
/// session: the covered set plus every eligible still-covering port can
/// reach `n`. Conservative in the safe direction (over-approximates).
fn close_possible(counter: &SessionCounter, visible_ports: impl Iterator<Item = usize>) -> bool {
    let fresh = visible_ports
        .filter(|&port| !counter.covers(port))
        .collect::<std::collections::BTreeSet<usize>>();
    fresh.len() >= counter.ports_missing()
}

fn select_sm(m: &SmMachine, counter: &SessionCounter) -> Option<Range<usize>> {
    let eligible = m.eligible_processes();
    if eligible.len() <= 1 {
        return None;
    }
    let per = m.menu_len();
    let targets: Vec<usize> = eligible.iter().map(|&p| m.current_target(p)).collect();
    let n_ports = m.n_ports();
    // Port tag exactly as `apply` computes it; visible to the counter only
    // while the counter has not marked the process idle.
    let is_visible_port = |pos: usize| {
        let p = eligible[pos];
        let var = targets[pos];
        var < n_ports && p == var && !counter.is_idle(p)
    };
    let closing = close_possible(
        counter,
        (0..eligible.len())
            .filter(|&pos| is_visible_port(pos))
            .map(|pos| targets[pos]),
    );
    for pos in 0..eligible.len() {
        let var = targets[pos];
        // Machine independence: no co-enabled step touches the same
        // variable.
        if targets
            .iter()
            .enumerate()
            .any(|(other, &v)| other != pos && v == var)
        {
            continue;
        }
        // Counter independence: a visible port step is only ample while no
        // session can close at this instant.
        if is_visible_port(pos) && closing {
            continue;
        }
        return Some(pos * per..(pos + 1) * per);
    }
    None
}

fn select_mp(m: &MpMachine, counter: &SessionCounter) -> Option<Range<usize>> {
    let events = m.eligible_events();
    if events.len() <= 1 {
        return None;
    }
    let mut offsets = Vec::with_capacity(events.len());
    let mut offset = 0usize;
    for event in &events {
        offsets.push(offset);
        offset += event.weight;
    }
    // A delivery is independent of everything except the recipient's own
    // step (and deliveries change neither claims nor the counter).
    for (i, event) in events.iter().enumerate() {
        let EligibleKind::Deliver { to } = event.kind else {
            continue;
        };
        let recipient_steps = events
            .iter()
            .any(|e| matches!(e.kind, EligibleKind::Step { process, .. } if process == to));
        if !recipient_steps {
            return Some(offsets[i]..offsets[i] + event.weight);
        }
    }
    // Step singletons are off the table for claim-tracking machines: the
    // SA003 edge check is order-sensitive in exactly the way the counter
    // commutation argument does not cover.
    if m.claimed_sessions_max().is_some() {
        return None;
    }
    let zero_delay = m.has_zero_delay();
    let closing = close_possible(
        counter,
        events.iter().filter_map(|e| match e.kind {
            EligibleKind::Step { process, .. } if !counter.is_idle(process) => Some(process),
            _ => None,
        }),
    );
    for (i, event) in events.iter().enumerate() {
        let EligibleKind::Step { process, .. } = event.kind else {
            continue;
        };
        // An eligible delivery to this process is dependent on its step.
        if events
            .iter()
            .any(|e| matches!(e.kind, EligibleKind::Deliver { to } if to == process))
        {
            continue;
        }
        // With a zero delay in the menu, a co-enabled broadcasting step
        // could enqueue a same-instant delivery to this process —
        // conservatively require exclusivity.
        if zero_delay
            && events.iter().enumerate().any(|(other, e)| {
                other != i
                    && matches!(
                        e.kind,
                        EligibleKind::Step {
                            broadcasts: true,
                            ..
                        }
                    )
            })
        {
            continue;
        }
        // Every MP step is a port step (port p ↔ process p); visible port
        // steps are only ample while no session can close right now.
        if !counter.is_idle(process) && closing {
            continue;
        }
        return Some(offsets[i]..offsets[i] + event.weight);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{sm_system_algos, GapMode, MpAlgo, SmAlgo};
    use session_core::algorithms::{SyncMpPort, SyncSmPort};
    use session_types::{Dur, Time, VarId};

    fn sync_sm(n: usize, s: u64) -> SmMachine {
        let ports: Vec<SmAlgo> = (0..n)
            .map(|i| SmAlgo::Sync(SyncSmPort::new(VarId::new(i), s)))
            .collect();
        let (algos, num_vars) = sm_system_algos(ports, n, 2);
        let k = algos.len();
        let gap = Dur::from_int(1);
        SmMachine::new(
            algos,
            num_vars,
            2,
            n,
            GapMode::PerStep(vec![gap]),
            vec![Time::ZERO + gap; k],
        )
    }

    fn sync_mp(n: usize, s: u64) -> MpMachine {
        let algos: Vec<MpAlgo> = (0..n).map(|_| MpAlgo::Sync(SyncMpPort::new(s))).collect();
        MpMachine::new(
            algos,
            GapMode::PerStep(vec![Dur::from_int(1)]),
            vec![Dur::from_int(1)],
            vec![Time::ZERO + Dur::from_int(1); n],
        )
    }

    #[test]
    fn sm_lockstep_ports_are_not_reduced_when_a_close_is_possible() {
        // All n ports plus relays due together, fresh counter: firing all
        // port steps closes a session, and every port variable is also a
        // relay's read target or distinct — the selector must at least
        // refuse port singletons. (A relay whose target collides with
        // nothing may still be ample.)
        let machine = sync_sm(2, 2);
        let counter = SessionCounter::new(2, 2);
        if let Some(range) = select_sm(&machine, &counter) {
            let per = machine.menu_len();
            let pos = range.start / per;
            let p = machine.eligible_processes()[pos];
            assert!(p >= 2, "only a relay may be ample here, got process {p}");
        }
    }

    #[test]
    fn mp_lockstep_steps_are_dependent_through_the_counter() {
        // n silent processes all due at once, 0 of n ports covered: any
        // step order can close a session, so no singleton is ample.
        let machine = sync_mp(3, 2);
        let counter = SessionCounter::new(3, 2);
        assert_eq!(select_mp(&machine, &counter), None);
    }

    #[test]
    fn mp_single_eligible_event_needs_no_reduction() {
        let machine = sync_mp(1, 2);
        let counter = SessionCounter::new(1, 2);
        assert_eq!(select_mp(&machine, &counter), None);
    }
}
