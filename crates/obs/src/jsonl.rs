//! The streaming JSONL backend.

use std::io::{self, Write};
use std::time::Instant;

use crate::json::JsonWriter;
use crate::recorder::Recorder;

/// Streams every recording as one JSON object per line to a writer.
///
/// Line shapes:
///
/// ```text
/// {"type":"counter","name":"mp.steps","delta":1}
/// {"type":"gauge","name":"run.sessions","value":3}
/// {"type":"sample","name":"mp.buffer_occupancy","value":2}
/// {"type":"span","name":"verify.admissibility","micros":41.2}
/// ```
///
/// Spans are emitted on close with their wall-clock elapsed time. Write
/// errors are sticky: the first error is kept and returned by
/// [`JsonlRecorder::finish`], and subsequent recordings are dropped (hot
/// paths cannot propagate I/O errors).
///
/// # Examples
///
/// ```
/// use session_obs::{JsonlRecorder, Recorder};
///
/// let mut rec = JsonlRecorder::new(Vec::new());
/// rec.counter("sm.steps", 2);
/// let bytes = rec.finish().unwrap();
/// assert_eq!(
///     String::from_utf8(bytes).unwrap(),
///     "{\"type\":\"counter\",\"name\":\"sm.steps\",\"delta\":2}\n"
/// );
/// ```
#[derive(Debug)]
pub struct JsonlRecorder<W: Write> {
    out: W,
    span_stack: Vec<(&'static str, Instant)>,
    error: Option<io::Error>,
}

impl<W: Write> JsonlRecorder<W> {
    /// Wraps `out` (pass a `BufWriter` for file targets — every recording
    /// is one `write_all` call).
    pub fn new(out: W) -> JsonlRecorder<W> {
        JsonlRecorder {
            out,
            span_stack: Vec::new(),
            error: None,
        }
    }

    fn emit(&mut self, line: String) {
        if self.error.is_some() {
            return;
        }
        let result = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"));
        if let Err(err) = result {
            self.error = Some(err);
        }
    }

    fn named_value(&mut self, kind: &str, name: &str, field: &str, value: f64) {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("type", kind);
        w.field_str("name", name);
        w.field_f64(field, value);
        w.end_object();
        self.emit(w.finish());
    }

    /// Flushes and returns the writer, or the first write error.
    ///
    /// # Errors
    ///
    /// Returns the first error hit while streaming (later recordings were
    /// dropped), or the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn counter(&mut self, name: &'static str, delta: u64) {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("type", "counter");
        w.field_str("name", name);
        w.field_u64("delta", delta);
        w.end_object();
        self.emit(w.finish());
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.named_value("gauge", name, "value", value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.named_value("sample", name, "value", value);
    }

    fn span_start(&mut self, name: &'static str) {
        self.span_stack.push((name, Instant::now()));
    }

    fn span_end(&mut self) {
        if let Some((name, started)) = self.span_stack.pop() {
            let micros = started.elapsed().as_secs_f64() * 1e6;
            self.named_value("span", name, "micros", micros);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(rec: JsonlRecorder<Vec<u8>>) -> Vec<String> {
        String::from_utf8(rec.finish().unwrap())
            .unwrap()
            .lines()
            .map(ToOwned::to_owned)
            .collect()
    }

    #[test]
    fn every_recording_is_one_line() {
        let mut rec = JsonlRecorder::new(Vec::new());
        rec.counter("c", 1);
        rec.gauge("g", 2.5);
        rec.observe("h", 3.0);
        rec.span_start("s");
        rec.span_end();
        let lines = lines(rec);
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], r#"{"type":"counter","name":"c","delta":1}"#);
        assert_eq!(lines[1], r#"{"type":"gauge","name":"g","value":2.5}"#);
        assert_eq!(lines[2], r#"{"type":"sample","name":"h","value":3}"#);
        assert!(lines[3].starts_with(r#"{"type":"span","name":"s","micros":"#));
    }

    /// A writer that fails after the first line.
    struct FailAfterOne {
        written: usize,
    }
    impl Write for FailAfterOne {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.written >= 2 {
                return Err(io::Error::other("disk full"));
            }
            self.written += 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_are_sticky_and_reported_by_finish() {
        let mut rec = JsonlRecorder::new(FailAfterOne { written: 0 });
        rec.counter("a", 1); // line + newline: ok
        rec.counter("b", 1); // fails, recorded
        rec.counter("c", 1); // dropped silently
        assert!(rec.finish().is_err());
    }
}
