//! Identifier newtypes.
//!
//! The paper's systems are finite sets of processes `P` and shared variables
//! `X` (§2.1); ports `Y ⊆ X` are distinguished variables (§2.3). Distinct
//! newtypes keep "the 3rd process" and "the 3rd variable" from being confused
//! at compile time.

use std::fmt;

/// Identifies a process within a system (dense, zero-based).
///
/// # Examples
///
/// ```
/// use session_types::ProcessId;
///
/// let p = ProcessId::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p2");
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

/// Identifies a shared variable within a shared-memory system (dense,
/// zero-based).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(usize);

/// Identifies a port: the `k`-th of the `n` distinguished ports of the
/// `(s, n)`-session problem (dense, zero-based).
///
/// In the shared-memory model a port maps to a [`VarId`]; in the
/// message-passing model it maps to a process's delivery buffer.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(usize);

/// Identifies a single (message, recipient) delivery in the message-passing
/// model; unique within one computation.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(u64);

macro_rules! impl_usize_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Creates the identifier with the given dense index.
            pub const fn new(index: usize) -> $ty {
                $ty(index)
            }

            /// The dense zero-based index.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $ty {
            fn from(index: usize) -> $ty {
                $ty(index)
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_usize_id!(ProcessId, "p");
impl_usize_id!(VarId, "x");
impl_usize_id!(PortId, "y");

impl MsgId {
    /// Creates the identifier with the given sequence number.
    pub const fn new(seq: u64) -> MsgId {
        MsgId(seq)
    }

    /// The sequence number.
    pub const fn seq(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn roundtrip_indices() {
        assert_eq!(ProcessId::new(7).index(), 7);
        assert_eq!(VarId::new(7).index(), 7);
        assert_eq!(PortId::new(7).index(), 7);
        assert_eq!(MsgId::new(7).seq(), 7);
    }

    #[test]
    fn from_usize() {
        assert_eq!(ProcessId::from(3), ProcessId::new(3));
        assert_eq!(VarId::from(3), VarId::new(3));
        assert_eq!(PortId::from(3), PortId::new(3));
    }

    #[test]
    fn display_prefixes_distinguish_kinds() {
        assert_eq!(ProcessId::new(1).to_string(), "p1");
        assert_eq!(VarId::new(1).to_string(), "x1");
        assert_eq!(PortId::new(1).to_string(), "y1");
        assert_eq!(MsgId::new(1).to_string(), "m1");
    }

    #[test]
    fn ordering_supports_sorted_collections() {
        let set: BTreeSet<ProcessId> = [2, 0, 1].into_iter().map(ProcessId::new).collect();
        let sorted: Vec<usize> = set.into_iter().map(ProcessId::index).collect();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
