//! Assembling runnable systems from an algorithm family, a problem spec and
//! the known timing constants.

use session_mpm::MpEngine;
use session_smm::{Knowledge, PortBinding, SmEngine, SmProcess, TreeSpec};
use session_types::{
    Error, KnownBounds, PortId, ProcessId, Result, SessionSpec, TimingModel, VarId,
};

use crate::algorithms::{
    AsyncMpPort, AsyncSmPort, PeriodicMpPort, PeriodicSmPort, SemiSyncMpPort, SemiSyncSmPort,
    SporadicMpPort, SyncMpPort, SyncSmPort,
};
use crate::msg::SessionMsg;

/// The process ids of the port processes: always `p0 .. p(n-1)` in systems
/// assembled by this module (relays, if any, come after).
pub fn port_processes(spec: &SessionSpec) -> impl Iterator<Item = ProcessId> {
    (0..spec.n()).map(ProcessId::new)
}

/// The port realized by a process in assembled systems: process `i` is port
/// process of port `i` for `i < n`.
pub fn port_of(spec: &SessionSpec) -> impl Fn(ProcessId) -> Option<PortId> {
    let n = spec.n();
    move |p: ProcessId| (p.index() < n).then(|| PortId::new(p.index()))
}

/// Builds the shared-memory system solving `spec` under the timing model of
/// `bounds`: `n` port processes of the model's algorithm on the leaves of
/// the §3 tree network, plus its relay processes.
///
/// Layout: variables `x0 .. x(n-1)` are the ports (tree leaves), followed
/// by the internal tree variables; processes `p0 .. p(n-1)` are the port
/// processes, followed by the relays.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if the model's required constants are
/// missing from `bounds` (cannot happen for bounds built via the
/// [`KnownBounds`] constructors) or invalid.
pub fn build_sm_system(spec: &SessionSpec, bounds: &KnownBounds) -> Result<SmEngine<Knowledge>> {
    let n = spec.n();
    let s = spec.s();
    let tree = TreeSpec::build(n, spec.b());
    let mut processes: Vec<Box<dyn SmProcess<Knowledge>>> = Vec::with_capacity(tree.num_nodes());
    for i in 0..n {
        let id = ProcessId::new(i);
        let var = tree.leaf_var(i);
        let process: Box<dyn SmProcess<Knowledge>> = match bounds.model() {
            TimingModel::Synchronous => Box::new(SyncSmPort::new(var, s)),
            TimingModel::Periodic => Box::new(PeriodicSmPort::new(id, var, s, n)),
            TimingModel::SemiSynchronous => {
                let c1 = bounds
                    .c1()
                    .ok_or_else(|| Error::invalid_params("semi-synchronous SM requires c1"))?;
                let c2 = bounds
                    .c2()
                    .ok_or_else(|| Error::invalid_params("semi-synchronous SM requires c2"))?;
                Box::new(SemiSyncSmPort::new(
                    id,
                    var,
                    s,
                    n,
                    c1,
                    c2,
                    tree.flood_rounds_bound(),
                )?)
            }
            // The sporadic SM model is the asynchronous SM model (§1).
            TimingModel::Sporadic | TimingModel::Asynchronous => {
                Box::new(AsyncSmPort::new(id, var, s, n))
            }
        };
        processes.push(process);
    }
    for relay in tree.relay_processes() {
        processes.push(Box::new(relay));
    }
    let bindings = (0..n)
        .map(|i| PortBinding {
            port: PortId::new(i),
            var: VarId::new(i),
            process: ProcessId::new(i),
        })
        .collect();
    SmEngine::new(
        vec![Knowledge::new(); tree.num_nodes()],
        processes,
        spec.b(),
        bindings,
    )
}

/// Builds the message-passing system solving `spec` under the timing model
/// of `bounds`: `n` port processes of the model's algorithm, each of whose
/// buffers is a port.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if the model's required constants are
/// missing from `bounds` or invalid.
pub fn build_mp_system(spec: &SessionSpec, bounds: &KnownBounds) -> Result<MpEngine<SessionMsg>> {
    let processes = build_mp_processes(spec, bounds)?;
    let ports = (0..spec.n())
        .map(|i| (ProcessId::new(i), PortId::new(i)))
        .collect();
    MpEngine::new(processes, ports)
}

/// Builds just the `n` port processes of the message-passing system for
/// `spec` under `bounds` — the piece shared by the simulator engine
/// ([`build_mp_system`]) and the real-clock runtime (`session-net`), which
/// runs each process on its own OS thread instead of an event queue.
///
/// # Errors
///
/// As for [`build_mp_system`].
pub fn build_mp_processes(
    spec: &SessionSpec,
    bounds: &KnownBounds,
) -> Result<Vec<Box<dyn session_mpm::MpProcess<SessionMsg>>>> {
    let n = spec.n();
    let s = spec.s();
    let mut processes: Vec<Box<dyn session_mpm::MpProcess<SessionMsg>>> = Vec::with_capacity(n);
    for i in 0..n {
        let id = ProcessId::new(i);
        let process: Box<dyn session_mpm::MpProcess<SessionMsg>> = match bounds.model() {
            TimingModel::Synchronous => Box::new(SyncMpPort::new(s)),
            TimingModel::Periodic => Box::new(PeriodicMpPort::new(s, n)),
            TimingModel::SemiSynchronous => {
                let c1 = bounds
                    .c1()
                    .ok_or_else(|| Error::invalid_params("semi-synchronous MP requires c1"))?;
                let c2 = bounds
                    .c2()
                    .ok_or_else(|| Error::invalid_params("semi-synchronous MP requires c2"))?;
                let d2 = bounds
                    .d2()
                    .ok_or_else(|| Error::invalid_params("semi-synchronous MP requires d2"))?;
                Box::new(SemiSyncMpPort::new(s, n, c1, c2, d2)?)
            }
            TimingModel::Sporadic => {
                let c1 = bounds
                    .c1()
                    .ok_or_else(|| Error::invalid_params("sporadic MP requires c1"))?;
                let d1 = bounds
                    .d1()
                    .ok_or_else(|| Error::invalid_params("sporadic MP requires d1"))?;
                let d2 = bounds
                    .d2()
                    .ok_or_else(|| Error::invalid_params("sporadic MP requires d2"))?;
                Box::new(SporadicMpPort::new(id, s, n, c1, d1, d2)?)
            }
            TimingModel::Asynchronous => Box::new(AsyncMpPort::new(s, n)),
        };
        processes.push(process);
    }
    Ok(processes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_types::Dur;

    fn spec(s: u64, n: usize, b: usize) -> SessionSpec {
        SessionSpec::new(s, n, b).unwrap()
    }

    #[test]
    fn sm_system_has_ports_plus_relays() {
        let sp = spec(3, 8, 2);
        let bounds = KnownBounds::periodic(Dur::from_int(5)).unwrap();
        let engine = build_sm_system(&sp, &bounds).unwrap();
        let tree = TreeSpec::build(8, 2);
        assert_eq!(engine.num_processes(), 8 + tree.num_relays());
        assert_eq!(engine.port_bindings().len(), 8);
        assert_eq!(engine.memory().len(), tree.num_nodes());
    }

    #[test]
    fn every_model_builds_in_both_substrates() {
        let sp = spec(2, 4, 2);
        let all_bounds = [
            KnownBounds::synchronous(Dur::from_int(2), Dur::from_int(5)).unwrap(),
            KnownBounds::periodic(Dur::from_int(5)).unwrap(),
            KnownBounds::semi_synchronous(Dur::from_int(1), Dur::from_int(3), Dur::from_int(5))
                .unwrap(),
            KnownBounds::sporadic(Dur::from_int(1), Dur::ZERO, Dur::from_int(5)).unwrap(),
            KnownBounds::asynchronous(),
        ];
        for bounds in &all_bounds {
            assert!(
                build_sm_system(&sp, bounds).is_ok(),
                "SM build failed for {:?}",
                bounds.model()
            );
            assert!(
                build_mp_system(&sp, bounds).is_ok(),
                "MP build failed for {:?}",
                bounds.model()
            );
        }
    }

    #[test]
    fn mp_system_is_ports_only() {
        let sp = spec(2, 5, 2);
        let engine = build_mp_system(&sp, &KnownBounds::asynchronous()).unwrap();
        assert_eq!(engine.num_processes(), 5);
        assert_eq!(engine.port_of(ProcessId::new(4)), Some(PortId::new(4)));
    }

    #[test]
    fn port_helpers_agree_with_layout() {
        let sp = spec(2, 3, 2);
        let ids: Vec<usize> = port_processes(&sp).map(ProcessId::index).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let f = port_of(&sp);
        assert_eq!(f(ProcessId::new(2)), Some(PortId::new(2)));
        assert_eq!(f(ProcessId::new(3)), None);
    }
}
