#!/usr/bin/env bash
# The workspace's static-analysis gate, run by CI and locally before
# merging:
#
#   1. rustfmt          -- formatting is canonical
#   2. clippy           -- the workspace lint policy, warnings are errors
#   3-5. session-wslint -- the workspace's own static analyzer
#      (crates/wslint, DESIGN.md §17): WS001 wall-clock discipline,
#      WS002 unbounded channels, WS003 lock-order cycles, WS004
#      panic-path audit, and the three registry gates this script used
#      to approximate with awk/grep -- WS005 (every LintCode variant
#      mapped to a stable SAxxx code and paper-§-referenced), WS006
#      (every SAxxx code has saXXX_positive_* / saXXX_negative_* tests),
#      WS007 (METRIC_NAMES ↔ DESIGN.md §15 ↔ emitted serve.* strings,
#      exact-match: the old `serve\.[a-z_]+` grep silently truncated
#      digit-bearing names)
#   6. analyzer (release tests) -- including the #[ignore]d large
#      explorations, the reduction differentials and the symbolic
#      zone/explicit differentials that are too slow under the debug
#      profile
#   7. session-cli analyze -- the ten paper algorithms must explore clean
#      (with and without the reduction layers), and the three naive
#      witnesses must be flagged with their exact codes and make the run
#      exit non-zero
#   8. session-cli analyze symbolic=on -- the ten paper algorithms must
#      also verify through the zone-graph engine with zero findings, and
#      the witnesses must be flagged by the symbolic engine too (each
#      deny line present twice: explicit + symbolic)
#
# Usage: scripts/static-analysis.sh
#
# `set -euo pipefail` + the ERR trap make every failure loud: the script
# stops at the first failing step and names it, instead of continuing and
# reporting a stale "OK".
set -Eeuo pipefail
cd "$(dirname "$0")/.."

current_step="(startup)"
trap 'echo "static-analysis: FAILED during: $current_step" >&2' ERR

current_step="rustfmt"
echo "== rustfmt =="
cargo fmt --all -- --check

current_step="clippy"
echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

current_step="session-wslint (workspace disciplines + registry gates)"
echo "== session-wslint: WS001-WS007 over the workspace sources =="
# Replaces the old awk/grep registry gates (steps 3-5) with exact
# token-level checks; the report's stats line proves the registries
# were actually scanned (nonzero variant/metric counts).
cargo run -q --release -p session-wslint

current_step="analyzer release tests"
echo "== analyzer test suite (release, including large explorations) =="
cargo test -p session-analyzer --release -- --include-ignored

current_step="building session-cli"
echo "== building session-cli =="
cargo build -q --release --bin session-cli

current_step="analyze (paper algorithms must be clean)"
echo "== analyze: the ten paper algorithms must be clean =="
./target/release/session-cli analyze \
    SyncSm PeriodicSm SemiSyncSm SporadicSm AsyncSm \
    SyncMp PeriodicMp SemiSyncMp SporadicMp AsyncMp \
    | tee /tmp/analyze-clean.md
grep -q "No findings." /tmp/analyze-clean.md

current_step="analyze reduce=all (same verdict, fewer states)"
echo "== analyze reduce=all: the reductions must agree =="
./target/release/session-cli analyze \
    SyncSm PeriodicSm SemiSyncSm SporadicSm AsyncSm \
    SyncMp PeriodicMp SemiSyncMp SporadicMp AsyncMp \
    reduce=all \
    | tee /tmp/analyze-reduced.md
grep -q "No findings." /tmp/analyze-reduced.md

current_step="analyze --all (witnesses must be flagged)"
echo "== analyze --all: the witnesses must be flagged and fail the run =="
# The full run must exit 1 (deny findings present) -- invert the check.
if ./target/release/session-cli analyze --all > /tmp/analyze-all.md; then
    echo "ERROR: analyze --all exited 0, the naive witnesses were not flagged" >&2
    exit 1
fi
grep -q "SA001 session-deficit | deny | NaivePeriodicSm" /tmp/analyze-all.md
grep -q "SA001 session-deficit | deny | NaiveSemiSyncSm" /tmp/analyze-all.md
grep -q "SA003 stale-evidence | deny | NaiveSporadicMp" /tmp/analyze-all.md

current_step="analyze symbolic=on (paper algorithms must verify symbolically)"
echo "== analyze symbolic=on: the ten paper algorithms must be clean =="
./target/release/session-cli analyze \
    SyncSm PeriodicSm SemiSyncSm SporadicSm AsyncSm \
    SyncMp PeriodicMp SemiSyncMp SporadicMp AsyncMp \
    symbolic=on \
    | tee /tmp/analyze-symbolic.md
grep -q "No findings." /tmp/analyze-symbolic.md
# The zone-graph engine actually ran: one "(symbolic)" summary per target.
[ "$(grep -c "(symbolic)" /tmp/analyze-symbolic.md)" -eq 10 ]

current_step="analyze --all symbolic=on (witnesses flagged symbolically)"
echo "== analyze --all symbolic=on: witnesses flagged by both engines =="
if ./target/release/session-cli analyze --all symbolic=on > /tmp/analyze-all-symbolic.md; then
    echo "ERROR: analyze --all symbolic=on exited 0, the witnesses were not flagged" >&2
    exit 1
fi
# Each witness deny line appears at least twice: once from the explicit
# explorer, once re-derived by the symbolic zone walk.
[ "$(grep -c "SA001 session-deficit | deny | NaivePeriodicSm" /tmp/analyze-all-symbolic.md)" -ge 2 ]
[ "$(grep -c "SA001 session-deficit | deny | NaiveSemiSyncSm" /tmp/analyze-all-symbolic.md)" -ge 2 ]
[ "$(grep -c "SA003 stale-evidence | deny | NaiveSporadicMp" /tmp/analyze-all-symbolic.md)" -ge 2 ]

echo "static analysis: OK"
