//! A minimal dependency-free JSON writer.
//!
//! The workspace builds without network access, so there is no serde;
//! this writer is the single JSON emitter shared by the trace exporters,
//! the JSONL recorder and the bench telemetry (`BENCH_*.json`). Output is
//! deterministic: field order is the call order, floats use Rust's
//! shortest-roundtrip formatting, and non-finite floats serialize as
//! `null` (JSON has no NaN/Infinity).
//!
//! # Examples
//!
//! ```
//! use session_obs::json::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.field_str("name", "p0");
//! w.field_u64("steps", 3);
//! w.key("delays");
//! w.begin_array();
//! w.value_f64(1.5);
//! w.value_f64(2.0);
//! w.end_array();
//! w.end_object();
//! assert_eq!(w.finish(), r#"{"name":"p0","steps":3,"delays":[1.5,2]}"#);
//! ```

/// Escapes `s` for use inside a JSON string literal (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON value (`null` when not finite).
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_owned()
    }
}

/// An incremental JSON writer over a growing string.
///
/// Commas are inserted automatically; the caller is responsible for
/// balancing `begin_*`/`end_*` and for writing exactly one top-level
/// value.
#[derive(Clone, Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Whether the next value/key at each nesting level needs a comma.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn before_value(&mut self) {
        if let Some(needs) = self.needs_comma.last_mut() {
            if *needs {
                self.buf.push(',');
            }
            *needs = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.buf.push('{');
        self.needs_comma.push(false);
    }

    /// Closes an object (`}`).
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.buf.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.buf.push('[');
        self.needs_comma.push(false);
    }

    /// Closes an array (`]`).
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.buf.push(']');
    }

    /// Writes an object key; the next write is its value.
    pub fn key(&mut self, name: &str) {
        self.before_value();
        self.buf.push('"');
        self.buf.push_str(&escape(name));
        self.buf.push_str("\":");
        // The value that follows must not be comma-separated from its key.
        if let Some(needs) = self.needs_comma.last_mut() {
            *needs = false;
        }
    }

    /// Writes a string value.
    pub fn value_str(&mut self, value: &str) {
        self.before_value();
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, value: u64) {
        self.before_value();
        self.buf.push_str(&value.to_string());
    }

    /// Writes a float value (`null` when not finite).
    pub fn value_f64(&mut self, value: f64) {
        self.before_value();
        self.buf.push_str(&number(value));
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, value: bool) {
        self.before_value();
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Writes a `null`.
    pub fn value_null(&mut self) {
        self.before_value();
        self.buf.push_str("null");
    }

    /// `key` + [`JsonWriter::value_str`].
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.key(name);
        self.value_str(value);
    }

    /// `key` + [`JsonWriter::value_u64`].
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.key(name);
        self.value_u64(value);
    }

    /// `key` + [`JsonWriter::value_f64`].
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.key(name);
        self.value_f64(value);
    }

    /// `key` + [`JsonWriter::value_bool`].
    pub fn field_bool(&mut self, name: &str, value: bool) {
        self.key(name);
        self.value_bool(value);
    }

    /// Returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Checks that `input` is exactly one well-formed JSON value.
///
/// A recursive-descent skimmer used by the exporter tests and the golden
/// tests to assert that generated output parses (the workspace has no
/// JSON parsing dependency). It validates structure, string escapes and
/// number syntax; it does not build a value tree.
///
/// # Errors
///
/// Returns a description with a byte offset for the first syntax error.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    skim_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", want as char, *pos))
    }
}

fn skim_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => skim_object(bytes, pos),
        Some(b'[') => skim_array(bytes, pos),
        Some(b'"') => skim_string(bytes, pos),
        Some(b't') => skim_literal(bytes, pos, "true"),
        Some(b'f') => skim_literal(bytes, pos, "false"),
        Some(b'n') => skim_literal(bytes, pos, "null"),
        Some(b'-' | b'0'..=b'9') => skim_number(bytes, pos),
        Some(&b) => Err(format!("unexpected {:?} at byte {}", b as char, *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn skim_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        skim_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        skim_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn skim_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        skim_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn skim_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'"')?;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match bytes.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = bytes.get(*pos + 2..*pos + 6);
                    if hex.is_some_and(|h| h.iter().all(u8::is_ascii_hexdigit)) {
                        *pos += 6;
                    } else {
                        return Err(format!("bad \\u escape at byte {}", *pos));
                    }
                }
                _ => return Err(format!("bad escape at byte {}", *pos)),
            },
            0x00..=0x1f => return Err(format!("raw control character at byte {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn skim_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {}", *pos))
    }
}

fn skim_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| -> bool {
        let before = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > before
    };
    if !digits(bytes, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

/// A parsed JSON value tree.
///
/// The counterpart of [`JsonWriter`] for the few places that *read* JSON
/// back (the happens-before trace analyzer ingesting JSONL streams).
/// Numbers are kept as `f64` — every number this workspace writes fits
/// (sequence numbers, small indices, millisecond floats); exact rational
/// times travel as strings and are re-parsed by their own types.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (keys are not deduplicated).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object (first occurrence); `None` for other
    /// value kinds.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a
    /// non-negative whole number.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0 && x <= 9e15).then_some(x as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses exactly one well-formed JSON value.
///
/// # Errors
///
/// Returns a description with a byte offset for the first syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => skim_literal(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => skim_literal(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => skim_literal(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            skim_number(bytes, pos)?;
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number"); // wslint: allow(ws004): skim_number only accepts ascii digit bytes
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        Some(&b) => Err(format!("unexpected {:?} at byte {}", b as char, *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    let mut fields = Vec::new();
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    let mut items = Vec::new();
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => match bytes.get(*pos + 1) {
                Some(b'"') => {
                    out.push('"');
                    *pos += 2;
                }
                Some(b'\\') => {
                    out.push('\\');
                    *pos += 2;
                }
                Some(b'/') => {
                    out.push('/');
                    *pos += 2;
                }
                Some(b'b') => {
                    out.push('\u{8}');
                    *pos += 2;
                }
                Some(b'f') => {
                    out.push('\u{c}');
                    *pos += 2;
                }
                Some(b'n') => {
                    out.push('\n');
                    *pos += 2;
                }
                Some(b'r') => {
                    out.push('\r');
                    *pos += 2;
                }
                Some(b't') => {
                    out.push('\t');
                    *pos += 2;
                }
                Some(b'u') => {
                    let hex = bytes
                        .get(*pos + 2..*pos + 6)
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                        .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                    // Surrogate pairs are not produced by this workspace's
                    // writer; map lone surrogates to the replacement char.
                    out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {}", *pos)),
            },
            Some(0x00..=0x1f) => return Err(format!("raw control character at byte {}", *pos)),
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let start = *pos;
                *pos += 1;
                while bytes.get(*pos).is_some_and(|&b| b & 0xc0 == 0x80) {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                );
            }
            None => return Err("unterminated string".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("π"), "π");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(2.0), "2");
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn nested_structures_get_commas_right() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("a", "1");
        w.key("b");
        w.begin_array();
        w.begin_object();
        w.field_u64("x", 1);
        w.end_object();
        w.begin_object();
        w.field_bool("y", false);
        w.end_object();
        w.end_array();
        w.key("c");
        w.value_null();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"a":"1","b":[{"x":1},{"y":false}],"c":null}"#
        );
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("empty");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"empty":[]}"#);
    }

    #[test]
    fn validate_accepts_well_formed_values() {
        for ok in [
            r#"{}"#,
            r#"[]"#,
            r#"{"a":[1,-2.5,3e4,"x\n",true,false,null],"b":{"c":"é"}}"#,
            " { \"k\" : [ 1 , 2 ] } ",
            "42",
            r#""lone string""#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{'a':1}"#,
            "01x",
            "1 2",
            r#""unterminated"#,
            r#""bad \q escape""#,
            "nul",
            "{\"a\":\"\u{1}\"}",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse(r#"{"a":[1,-2.5,"x\n",true,null],"b":{"c":"é"},"n":3}"#).unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("é")
        );
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[1].as_u64(), None, "negative numbers are not u64");
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4], JsonValue::Null);
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for bad in ["", "{", "[1,]", r#"{"a":}"#, "1 2", r#""bad \q""#] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", "a\"b\\c\nd π");
        w.field_f64("x", 3.5);
        w.key("arr");
        w.begin_array();
        w.value_u64(7);
        w.value_null();
        w.end_array();
        w.end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("a\"b\\c\nd π"));
        assert_eq!(v.get("x").and_then(JsonValue::as_f64), Some(3.5));
        assert_eq!(
            v.get("arr").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn writer_output_always_validates() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", "a\"b\\c\nd");
        w.field_f64("nan", f64::NAN);
        w.key("arr");
        w.begin_array();
        w.value_u64(0);
        w.end_array();
        w.end_object();
        validate(&w.finish()).unwrap();
    }
}
