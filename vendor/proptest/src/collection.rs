//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive range of collection sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        let (min, max) = range.into_inner();
        assert!(min <= max, "empty collection size range");
        SizeRange { min, max }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max)
    }
}

/// A strategy for `Vec`s whose length lies in `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = self.size.draw(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}

/// A strategy for `BTreeMap`s with up to `size` entries (duplicate keys
/// collapse, exactly as in real proptest).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord + fmt::Debug,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let len = self.size.draw(rng);
        let mut out = BTreeMap::new();
        for _ in 0..len {
            out.insert(self.keys.generate(rng)?, self.values.generate(rng)?);
        }
        Some(out)
    }
}
