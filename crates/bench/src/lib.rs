//! The benchmark harness: everything needed to regenerate the paper's
//! evaluation artifacts.
//!
//! * [`measure`] — one measurement function per Table 1 row (upper bounds:
//!   worst-case-oriented schedules, measured simulated running time vs the
//!   closed-form bound; lower bounds: the executable adversary experiments
//!   from `session-adversary`).
//! * [`sweeps`] — the derived figures: the semi-synchronous strategy
//!   crossover (FIG-A), the sporadic `d1 → d2` interpolation (FIG-B) and
//!   the periodic-vs-semi-synchronous dominance comparison (FIG-C).
//! * [`format`](mod@format) — markdown rendering shared by the `table1`, `crossover`,
//!   `sporadic_sweep` and `periodic_vs_semisync` binaries (whose outputs
//!   are recorded in `EXPERIMENTS.md`).
//! * [`json_report`] — the `--json` mode of every binary: the generic
//!   section-table serializer plus the rich `BENCH_table1.json` schema
//!   (numeric bounds, ratios, wall-clock, engine counters).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod json_report;
pub mod measure;
pub mod sweeps;
