//! The `session-cli run-real` subcommand: run one message-passing
//! configuration on real clocks — one OS thread per process, channel or
//! UDP-loopback transport — and verify simulator conformance: the recorded
//! execution must be an admissible timed computation of its model
//! achieving at least `s` sessions.
//!
//! ```text
//! session-cli run-real model=periodic comm=mp s=3 n=4 transport=chan
//! session-cli run-real model=sporadic s=2 n=3 transport=udp json=real.json
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use session_core::system::port_of;
use session_net::{run_real, verify_conformance, RealConfig, TransportKind};
use session_obs::export::{trace_jsonl, ExportMeta};
use session_obs::NullRecorder;
use session_types::{Dur, Error, ProcessId, Result, SessionSpec, TimingModel};

use crate::kv::{parse_timing_model, KvArgs};

/// A fully parsed `run-real` command line.
#[derive(Clone, Debug)]
pub struct RunRealConfig {
    /// The real-clock run configuration.
    pub real: RealConfig,
    /// Where to also write the run's metrics snapshot as JSON.
    pub json: Option<PathBuf>,
    /// Where to also write the reconstructed trace as an event-stream
    /// JSONL file (the `session-cli analyze trace=` input format).
    pub jsonl: Option<PathBuf>,
}

impl RunRealConfig {
    /// The usage string printed on parse errors.
    pub const USAGE: &'static str = "\
usage: session-cli run-real [key=value ...]
  model=sync|periodic|semisync|sporadic|async   (default periodic)
  comm=mp                                       (message passing only)
  s=N n=N b=N                                   (default 3, 4, 2)
  c1=X c2=X d1=X d2=X                           (defaults 1, 2, 0, 4)
  transport=chan|udp                            (default chan)
  seed=N                                        (default 42)
  unit-us=N      real microseconds per logical time unit (default 2000)
  max-steps=N    per-process step watchdog (default 10000)
  deadline-ms=N  wall-clock watchdog (default 30000)
  json=PATH      also write the run's metrics snapshot as JSON
  jsonl=PATH     also write the reconstructed trace as event-stream JSONL
                 (feed it to `session-cli analyze trace=PATH`)";

    /// Parses the arguments after the `run-real` keyword.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] (carrying a usage hint) on unknown
    /// or duplicate keys, malformed values, or an infeasible timing
    /// configuration (`SA006`).
    pub fn parse<I, S>(args: I) -> Result<RunRealConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut model = TimingModel::Periodic;
        let (mut s, mut n, mut b) = (3u64, 4usize, 2usize);
        let (mut c1, mut c2, mut d1, mut d2) = (1i128, 2i128, 0i128, 4i128);
        let mut transport = TransportKind::Chan;
        let mut seed = 42u64;
        let mut unit_us = 2_000u64;
        let mut max_steps = 10_000u64;
        let mut deadline_ms = 30_000u64;
        let mut json = None;
        let mut jsonl = None;

        let mut kv = KvArgs::new(RunRealConfig::USAGE);
        for arg in args {
            let (key, value) = kv.pair(arg.as_ref())?;
            match key {
                "model" => {
                    model = parse_timing_model(value)
                        .ok_or_else(|| kv.error(format_args!("unknown model `{value}`")))?;
                }
                "comm" => {
                    if value != "mp" {
                        return Err(kv.error(format_args!(
                            "run-real is message passing only (comm=mp), got `{value}`"
                        )));
                    }
                }
                "s" => s = kv.value(key, value, "an integer")?,
                "n" => n = kv.value(key, value, "an integer")?,
                "b" => b = kv.value(key, value, "an integer")?,
                "c1" => c1 = kv.value(key, value, "an integer")?,
                "c2" => c2 = kv.value(key, value, "an integer")?,
                "d1" => d1 = kv.value(key, value, "an integer")?,
                "d2" => d2 = kv.value(key, value, "an integer")?,
                "seed" => seed = kv.value(key, value, "an integer")?,
                "transport" => {
                    transport = TransportKind::parse(value)
                        .ok_or_else(|| kv.error(format_args!("unknown transport `{value}`")))?;
                }
                "unit-us" => unit_us = kv.value(key, value, "an integer")?,
                "max-steps" => max_steps = kv.value(key, value, "an integer")?,
                "deadline-ms" => deadline_ms = kv.value(key, value, "an integer")?,
                "json" => json = Some(PathBuf::from(value)),
                "jsonl" => jsonl = Some(PathBuf::from(value)),
                other => return Err(kv.error(format_args!("unknown option `{other}`"))),
            }
        }

        let mut real = RealConfig::new(model, SessionSpec::new(s, n, b)?);
        real.c1 = Dur::from_int(c1);
        real.c2 = Dur::from_int(c2);
        real.d1 = Dur::from_int(d1);
        real.d2 = Dur::from_int(d2);
        real.transport = transport;
        real.seed = seed;
        real.unit = Duration::from_micros(unit_us);
        real.max_steps_per_process = max_steps;
        real.deadline = Duration::from_millis(deadline_ms);
        real.validate()
            .map_err(|err| kv.error(format_args!("infeasible configuration: {err}")))?;
        Ok(RunRealConfig { real, json, jsonl })
    }

    /// Runs the configuration on real clocks, verifies conformance, and
    /// renders the verdict. Returns the printable report, the metrics
    /// snapshot JSON, and the trace as event-stream JSONL (with the
    /// configured bounds as its timing-model claim).
    ///
    /// # Errors
    ///
    /// Propagates configuration and transport errors from the runtime.
    pub fn render(&self) -> Result<(String, String, String)> {
        let outcome = run_real(&self.real, &mut NullRecorder)?;
        let bounds = self.real.bounds()?;
        let report = verify_conformance(&outcome, &self.real.spec, &bounds);

        let spec = &self.real.spec;
        let closes = session_core::analysis::analyze(&outcome.trace, spec.n(), port_of(spec));
        let ports = (0..outcome.trace.num_processes())
            .map(|i| port_of(spec)(ProcessId::new(i)))
            .collect();
        let meta = ExportMeta::new(format!("run-real {} mp", self.real.model))
            .with_ports(ports)
            .with_sessions(closes.session_close_times)
            .with_claim(bounds);
        let stream = trace_jsonl(&outcome.trace, &meta);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} / mp (real clock, {}) — {}",
            self.real.model, self.real.transport, self.real.spec
        );
        let _ = writeln!(
            out,
            "terminated: {}   steps: {}   wall clock: {:.1} ms   late packets: {}",
            outcome.terminated,
            outcome.steps,
            outcome.wall_clock.as_secs_f64() * 1e3,
            outcome.late_packets
        );
        let _ = writeln!(out, "\n## conformance\n");
        out.push_str(&report.render());
        Ok((out, outcome.metrics.to_json(), stream))
    }

    /// Runs the configuration, writes the JSON snapshot if requested, and
    /// returns the printable report.
    ///
    /// # Errors
    ///
    /// Propagates run errors and I/O errors (as [`Error::InvalidParams`]
    /// naming the path).
    pub fn execute(&self) -> Result<String> {
        let (mut out, json, stream) = self.render()?;
        let write_file = |path: &PathBuf, content: &str, out: &mut String| {
            std::fs::write(path, content).map_err(|err| {
                Error::invalid_params(format!("cannot write {}: {err}", path.display()))
            })?;
            let _ = writeln!(out, "\nwrote {}", path.display());
            Ok::<(), Error>(())
        };
        if let Some(path) = &self.json {
            write_file(path, &json, &mut out)?;
        }
        if let Some(path) = &self.jsonl {
            write_file(path, &stream, &mut out)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_obs::json;

    #[test]
    fn defaults_parse() {
        let config = RunRealConfig::parse(Vec::<String>::new()).unwrap();
        assert_eq!(config.real.model, TimingModel::Periodic);
        assert_eq!(config.real.spec.s(), 3);
        assert_eq!(config.real.spec.n(), 4);
        assert_eq!(config.real.transport, TransportKind::Chan);
        assert_eq!(config.real.unit, Duration::from_micros(2_000));
    }

    #[test]
    fn bad_arguments_carry_the_run_real_usage() {
        for bad in [
            "model=quantum",
            "comm=sm",
            "transport=tcp",
            "unit-us=soon",
            "frobnicate=1",
        ] {
            let err = RunRealConfig::parse([bad]).unwrap_err().to_string();
            assert!(
                err.contains("usage: session-cli run-real"),
                "`{bad}`: {err}"
            );
        }
    }

    #[test]
    fn duplicate_keys_are_rejected_by_name() {
        let err = RunRealConfig::parse(["seed=1", "seed=2"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate option `seed`"), "{err}");
    }

    #[test]
    fn infeasible_timing_is_rejected_at_parse_time() {
        let err = RunRealConfig::parse(["model=semisync", "c1=4", "c2=1"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("SA006"), "{err}");
    }

    #[test]
    fn execute_runs_and_verifies_the_issue_configuration() {
        // The acceptance configuration, sped up for tests: model=periodic
        // comm=mp s=3 n=4 transport=chan.
        let config = RunRealConfig::parse([
            "model=periodic",
            "comm=mp",
            "s=3",
            "n=4",
            "transport=chan",
            "unit-us=200",
        ])
        .unwrap();
        let (out, snapshot_json, stream) = config.render().unwrap();
        assert!(out.contains("terminated: true"), "{out}");
        assert!(out.contains("admissible    = true"), "{out}");
        assert!(out.contains("solved        = true"), "{out}");
        assert!(out.contains("causality     = clean"), "{out}");
        json::validate(&snapshot_json).expect("snapshot must be valid JSON");
        assert!(snapshot_json.contains("\"net.steps\""), "{snapshot_json}");

        // The exported stream carries the claim and round-trips through
        // the happens-before analyzer with no findings.
        assert!(stream.contains("\"model\":\"periodic\""), "{stream}");
        let analysis = session_analyzer::analyze_trace_jsonl(&stream, "run-real", None)
            .expect("run-real JSONL must parse");
        assert!(
            analysis.report.findings.is_empty(),
            "conformant run fired causality lints: {:?}",
            analysis.report.findings
        );
    }
}
