//! Raw engine throughput: simulated steps per second for both substrates,
//! independent of any algorithm's semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use session_analyzer::explore::{explore_flight, explore_with_opts};
use session_analyzer::{scoped_target_space, ExploreOpts, FlightOpts};
use session_mpm::{Envelope, MpEngine, MpProcess};
use session_obs::NullRecorder;
use session_sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_smm::{SmEngine, SmProcess};
use session_types::{Dur, PortId, ProcessId, VarId};
use std::time::Duration;

/// A minimal SM process: bumps a counter variable forever.
#[derive(Debug)]
struct Spinner(VarId);

impl SmProcess<u64> for Spinner {
    fn target(&self) -> VarId {
        self.0
    }
    fn step(&mut self, value: &u64) -> u64 {
        value + 1
    }
    fn is_idle(&self) -> bool {
        false
    }
}

fn sm_steps(num_processes: usize, steps: u64) {
    let processes: Vec<Box<dyn SmProcess<u64>>> = (0..num_processes)
        .map(|i| Box::new(Spinner(VarId::new(i))) as Box<_>)
        .collect();
    let mut engine = SmEngine::new(vec![0u64; num_processes], processes, 2, vec![]).unwrap();
    let mut sched = FixedPeriods::uniform(num_processes, Dur::from_int(1)).unwrap();
    let outcome = engine
        .run(&mut sched, RunLimits::default().with_max_steps(steps))
        .unwrap();
    assert_eq!(outcome.steps, steps);
}

/// A minimal MP process: broadcasts every step, never idles.
#[derive(Debug)]
struct Chatter;

impl MpProcess<u8> for Chatter {
    fn step(&mut self, _inbox: Vec<Envelope<u8>>) -> Option<u8> {
        Some(0)
    }
    fn is_idle(&self) -> bool {
        false
    }
}

fn mp_steps(num_processes: usize, steps: u64) {
    let processes: Vec<Box<dyn MpProcess<u8>>> = (0..num_processes)
        .map(|_| Box::new(Chatter) as Box<_>)
        .collect();
    let ports = (0..num_processes)
        .map(|i| (ProcessId::new(i), PortId::new(i)))
        .collect();
    let mut engine = MpEngine::new(processes, ports).unwrap();
    let mut sched = FixedPeriods::uniform(num_processes, Dur::from_int(1)).unwrap();
    let mut delays = ConstantDelay::new(Dur::from_int(2)).unwrap();
    let outcome = engine
        .run(
            &mut sched,
            &mut delays,
            RunLimits::default().with_max_steps(steps),
        )
        .unwrap();
    assert_eq!(outcome.steps, steps);
}

/// The SM spinner run through the recorded entry point with the null
/// recorder — measures the cost of the instrumentation seams themselves.
fn sm_steps_null_recorded(num_processes: usize, steps: u64) {
    let processes: Vec<Box<dyn SmProcess<u64>>> = (0..num_processes)
        .map(|i| Box::new(Spinner(VarId::new(i))) as Box<_>)
        .collect();
    let mut engine = SmEngine::new(vec![0u64; num_processes], processes, 2, vec![]).unwrap();
    let mut sched = FixedPeriods::uniform(num_processes, Dur::from_int(1)).unwrap();
    let outcome = engine
        .run_recorded(
            &mut sched,
            RunLimits::default().with_max_steps(steps),
            &mut NullRecorder,
        )
        .unwrap();
    assert_eq!(outcome.steps, steps);
}

/// The MP chatter run through the recorded entry point with the null
/// recorder.
fn mp_steps_null_recorded(num_processes: usize, steps: u64) {
    let processes: Vec<Box<dyn MpProcess<u8>>> = (0..num_processes)
        .map(|_| Box::new(Chatter) as Box<_>)
        .collect();
    let ports = (0..num_processes)
        .map(|i| (ProcessId::new(i), PortId::new(i)))
        .collect();
    let mut engine = MpEngine::new(processes, ports).unwrap();
    let mut sched = FixedPeriods::uniform(num_processes, Dur::from_int(1)).unwrap();
    let mut delays = ConstantDelay::new(Dur::from_int(2)).unwrap();
    let outcome = engine
        .run_recorded(
            &mut sched,
            &mut delays,
            RunLimits::default().with_max_steps(steps),
            &mut NullRecorder,
        )
        .unwrap();
    assert_eq!(outcome.steps, steps);
}

fn bench_sm_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/sm-steps");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    const STEPS: u64 = 10_000;
    group.throughput(Throughput::Elements(STEPS));
    for n in [2usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| sm_steps(n, STEPS));
        });
    }
    group.finish();
}

fn bench_mp_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/mp-steps");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    const STEPS: u64 = 2_000;
    group.throughput(Throughput::Elements(STEPS));
    for n in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| mp_steps(n, STEPS));
        });
    }
    group.finish();
}

/// `run` vs `run_recorded(NullRecorder)` at the same step budget: the
/// acceptance bar is no measurable overhead (within noise).
fn bench_recorder_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/null-recorder-overhead");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    const SM_STEPS: u64 = 10_000;
    const MP_STEPS: u64 = 2_000;
    const N: usize = 16;
    group.bench_function("sm/plain", |b| b.iter(|| sm_steps(N, SM_STEPS)));
    group.bench_function("sm/null-recorder", |b| {
        b.iter(|| sm_steps_null_recorded(N, SM_STEPS));
    });
    group.bench_function("mp/plain", |b| b.iter(|| mp_steps(N, MP_STEPS)));
    group.bench_function("mp/null-recorder", |b| {
        b.iter(|| mp_steps_null_recorded(N, MP_STEPS));
    });
    group.finish();
}

/// The explorer with the flight recorder absent vs present: `plain` is
/// the classic entry point, `flight-off` goes through [`explore_flight`]
/// with every hook disabled (the configuration `session-cli analyze`
/// always uses without `profile=`), `flight-on` pays for the full
/// per-worker profile. The DESIGN.md §15 zero-overhead claim is the
/// `plain` vs `flight-off` pair; `flight-on` quantifies the opt-in cost.
fn bench_flight_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/flight-overhead");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1600));
    group.sample_size(10);
    let space = scoped_target_space("PeriodicMp", 2, 2).expect("PeriodicMp is registered");
    let opts = ExploreOpts::reduced();
    group.bench_function("plain", |b| {
        b.iter(|| explore_with_opts(&space.roots, 2, 2, space.scope.max_depth, opts));
    });
    group.bench_function("flight-off", |b| {
        b.iter(|| {
            explore_flight(
                &space.roots,
                2,
                2,
                space.scope.max_depth,
                opts,
                &mut NullRecorder,
                &FlightOpts::default(),
            )
        });
    });
    group.bench_function("flight-on", |b| {
        b.iter(|| {
            explore_flight(
                &space.roots,
                2,
                2,
                space.scope.max_depth,
                opts,
                &mut NullRecorder,
                &FlightOpts::profiled(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sm_throughput,
    bench_mp_throughput,
    bench_recorder_overhead,
    bench_flight_overhead
);
criterion_main!(benches);
