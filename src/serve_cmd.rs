//! The `session-cli serve` subcommand: run the sharded session service
//! (`crates/serve`) from the shell.
//!
//! ```text
//! session-cli serve listen=127.0.0.1:7700 shards=4 sessions=50000
//! session-cli serve selftest=100 sample=1 json=serve.json
//! ```
//!
//! Without `selftest=`, the service runs until stdin closes (Ctrl-D, or
//! the end of a pipe), then drains live sessions and prints the final
//! metrics report. With `selftest=N`, it opens `N` loopback sessions
//! against itself over the configured transport, waits for every close,
//! and exits non-zero if any conformance sample failed.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use session_serve::{
    ClientFrame, ConformanceVerdict, ServeClient, ServeConfig, ServeReport, ServeTransport, Server,
    ServerFrame, UdpServeClient,
};
use session_types::{Error, Result, TimingModel};

use crate::kv::{parse_timing_model, KvArgs};

/// A fully parsed `serve` command line.
#[derive(Clone, Debug)]
pub struct ServeCmdConfig {
    /// The service configuration.
    pub config: ServeConfig,
    /// `Some(count)`: open `count` loopback sessions, await their
    /// closes, and exit instead of serving until stdin closes.
    pub selftest: Option<u64>,
    /// Timing model selftest sessions request.
    pub model: TimingModel,
    /// Sessions (`s`) each selftest instance must achieve.
    pub s: u32,
    /// Port processes (`n`) per selftest instance.
    pub n: u32,
    /// Real microseconds per nominal unit for selftest sessions.
    pub unit_us: u32,
    /// Where to also write the shutdown metrics snapshot as JSON.
    pub json: Option<PathBuf>,
}

impl ServeCmdConfig {
    /// The usage string printed on parse errors.
    pub const USAGE: &'static str = "\
usage: session-cli serve [key=value ...]
  listen=ADDR       bind address (default 127.0.0.1:0)
  transport=tcp|udp (default tcp)
  shards=N          event-loop threads, >= 1 (default 2)
  sessions=N        live-session cap per shard (default 75000)
  auth=TOKEN        require this u64 token in Hello (default: open)
  rate=R            per-peer Open tokens per second (default 50000)
  burst=B           per-peer Open burst capacity (default 20000)
  sample=K          conformance-verify every K-th session; 0 disables
                    (default 64)
  seed=N            seed mixed into every instance's RNG (default 0)
  model=MODEL s=N n=N unit-us=N   selftest session shape
                    (defaults periodic, 2, 2, 2000)
  selftest=N        open N loopback sessions, await closes, exit
  json=PATH         write the shutdown metrics snapshot as JSON
without selftest=, serves until stdin reaches end-of-file";

    /// Parses the arguments after the `serve` keyword.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] (carrying a usage hint) on
    /// unknown or duplicate keys, malformed values, or an invalid
    /// service configuration (e.g. `shards=0`).
    pub fn parse<I, S>(args: I) -> Result<ServeCmdConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut config = ServeConfig::default();
        let mut selftest = None;
        let mut model = TimingModel::Periodic;
        let (mut s, mut n) = (2u32, 2u32);
        let mut unit_us = 2_000u32;
        let mut json = None;

        let mut kv = KvArgs::new(ServeCmdConfig::USAGE);
        for arg in args {
            let (key, value) = kv.pair(arg.as_ref())?;
            match key {
                "listen" => config.listen = value.to_owned(),
                "transport" => {
                    config.transport = ServeTransport::parse(value)
                        .map_err(|_| kv.error(format_args!("unknown transport `{value}`")))?;
                }
                "shards" => config.shards = kv.value(key, value, "an integer")?,
                "sessions" => {
                    config.max_sessions_per_shard = kv.value(key, value, "an integer")?;
                }
                "auth" => config.auth_token = Some(kv.value(key, value, "a u64 token")?),
                "rate" => config.open_rate = kv.value(key, value, "a number")?,
                "burst" => config.open_burst = kv.value(key, value, "a number")?,
                "sample" => config.sample_every = kv.value(key, value, "an integer")?,
                "seed" => config.seed = kv.value(key, value, "an integer")?,
                "model" => {
                    model = parse_timing_model(value)
                        .ok_or_else(|| kv.error(format_args!("unknown model `{value}`")))?;
                }
                "s" => s = kv.value(key, value, "an integer")?,
                "n" => n = kv.value(key, value, "an integer")?,
                "unit-us" => unit_us = kv.value(key, value, "an integer")?,
                "selftest" => selftest = Some(kv.value(key, value, "an integer")?),
                "json" => json = Some(PathBuf::from(value)),
                other => return Err(kv.error(format_args!("unknown option `{other}`"))),
            }
        }
        config
            .validate()
            .map_err(|err| kv.error(format_args!("invalid service configuration: {err}")))?;
        Ok(ServeCmdConfig {
            config,
            selftest,
            model,
            s,
            n,
            unit_us,
            json,
        })
    }

    /// Starts the service, runs the selftest or serves until stdin
    /// closes, and renders the shutdown report.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures, selftest failures (a session that
    /// never closed or failed conformance), and JSON write errors.
    pub fn execute(&self) -> Result<String> {
        let server = Server::start(self.config.clone())?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serving on {} ({}, {} shards, capacity {})",
            server.addr(),
            self.config.transport,
            self.config.shards,
            self.config.capacity()
        );
        let selftest_result = match self.selftest {
            Some(count) => self.selftest(&server, count, &mut out),
            None => {
                // Serve until the operator closes stdin.
                let mut sink = Vec::new();
                let _ = std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut sink);
                Ok(())
            }
        };
        let report = server.shutdown();
        render_report(&report, &mut out);
        if let Some(path) = &self.json {
            std::fs::write(path, report.metrics.to_json()).map_err(|err| {
                Error::invalid_params(format!("cannot write {}: {err}", path.display()))
            })?;
            let _ = writeln!(out, "wrote {}", path.display());
        }
        selftest_result?;
        Ok(out)
    }

    /// Opens `count` sessions against the running service and waits for
    /// every one to close.
    fn selftest(&self, server: &Server, count: u64, out: &mut String) -> Result<()> {
        let timeout = Duration::from_secs(60);
        let token = self.config.auth_token.unwrap_or(0);
        let mut closed = 0u64;
        let mut passed = 0u64;
        let mut failed = 0u64;
        match self.config.transport {
            ServeTransport::Tcp => {
                let mut client = ServeClient::connect(server.addr())
                    .map_err(|err| Error::invalid_params(format!("selftest connect: {err}")))?;
                client
                    .hello(token, Duration::from_secs(5))
                    .map_err(|err| Error::invalid_params(format!("selftest hello: {err}")))?;
                for req in 0..count {
                    client
                        .open(req, self.model, self.s, self.n, self.unit_us, req)
                        .map_err(|err| Error::invalid_params(format!("selftest open: {err}")))?;
                }
                client
                    .flush()
                    .map_err(|err| Error::invalid_params(format!("selftest flush: {err}")))?;
                while closed < count {
                    match client.recv_timeout(timeout) {
                        Some(ServerFrame::Closed { conformance, .. }) => {
                            closed += 1;
                            tally(conformance, &mut passed, &mut failed);
                        }
                        Some(ServerFrame::Opened { .. }) => {}
                        Some(frame) => {
                            return Err(Error::invalid_params(format!(
                                "selftest: unexpected frame {frame:?}"
                            )));
                        }
                        None => break,
                    }
                }
            }
            ServeTransport::Udp => {
                let client = UdpServeClient::connect(server.addr())
                    .map_err(|err| Error::invalid_params(format!("selftest connect: {err}")))?;
                client
                    .send(&ClientFrame::Hello { token })
                    .map_err(|err| Error::invalid_params(format!("selftest hello: {err}")))?;
                match client.recv_timeout(Duration::from_secs(5)) {
                    Some(ServerFrame::HelloOk { .. }) => {}
                    other => {
                        return Err(Error::invalid_params(format!(
                            "selftest hello: expected HelloOk, got {other:?}"
                        )));
                    }
                }
                for req in 0..count {
                    client
                        .send(&ClientFrame::Open {
                            req,
                            model: self.model,
                            s: self.s,
                            n: self.n,
                            unit_us: self.unit_us,
                            seed: req,
                        })
                        .map_err(|err| Error::invalid_params(format!("selftest open: {err}")))?;
                }
                // wslint: allow(ws001): selftest deadline races a real server on the real clock
                let deadline = std::time::Instant::now() + timeout;
                // wslint: allow(ws001): selftest deadline races a real server on the real clock
                while closed < count && std::time::Instant::now() < deadline {
                    if let Some(ServerFrame::Closed { conformance, .. }) =
                        client.recv_timeout(Duration::from_millis(500))
                    {
                        closed += 1;
                        tally(conformance, &mut passed, &mut failed);
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "selftest: {closed}/{count} sessions closed ({passed} conformance passes, {failed} failures)"
        );
        if closed < count {
            return Err(Error::invalid_params(format!(
                "selftest: only {closed} of {count} sessions closed"
            )));
        }
        if failed > 0 {
            return Err(Error::invalid_params(format!(
                "selftest: {failed} conformance samples failed"
            )));
        }
        Ok(())
    }
}

fn tally(conformance: ConformanceVerdict, passed: &mut u64, failed: &mut u64) {
    match conformance {
        ConformanceVerdict::Pass => *passed += 1,
        ConformanceVerdict::Fail | ConformanceVerdict::Watchdog => *failed += 1,
        ConformanceVerdict::NotSampled => {}
    }
}

/// Renders the shutdown report's headline counters.
fn render_report(report: &ServeReport, out: &mut String) {
    let m = &report.metrics;
    let _ = writeln!(
        out,
        "sessions: {} opened, {} closed, {} shed, {} orphaned, {} aborted  (peak live {})",
        m.counter("serve.sessions_opened"),
        m.counter("serve.sessions_closed"),
        m.counter("serve.sessions_shed"),
        m.counter("serve.sessions_orphaned"),
        m.counter("serve.sessions_aborted"),
        report.peak_live_sessions,
    );
    let _ = writeln!(
        out,
        "conformance: {} sampled, {} failures",
        m.counter("serve.conformance_samples"),
        m.counter("serve.conformance_failures"),
    );
    let _ = writeln!(
        out,
        "wire: {} in, {} out, {} dropped, {} protocol errors, {} rate limited",
        m.counter("serve.frames_in"),
        m.counter("serve.frames_out"),
        m.counter("serve.frames_dropped"),
        m.counter("serve.protocol_errors"),
        m.counter("serve.rate_limited"),
    );
    let _ = writeln!(
        out,
        "peers: {} connected, {} banned",
        m.counter("serve.peers_connected"),
        m.counter("serve.peers_banned"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_parse() {
        let cmd = ServeCmdConfig::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cmd.config.listen, "127.0.0.1:0");
        assert_eq!(cmd.config.transport, ServeTransport::Tcp);
        assert_eq!(cmd.config.shards, 2);
        assert_eq!(cmd.config.max_sessions_per_shard, 75_000);
        assert_eq!(cmd.selftest, None);
        assert_eq!(cmd.model, TimingModel::Periodic);
    }

    #[test]
    fn serve_keys_parse() {
        let cmd = ServeCmdConfig::parse([
            "listen=0.0.0.0:7700",
            "transport=udp",
            "shards=4",
            "sessions=1000",
            "auth=99",
            "rate=10.5",
            "burst=3",
            "sample=1",
            "seed=7",
            "model=semisync",
            "s=3",
            "n=4",
            "unit-us=500",
            "selftest=10",
        ])
        .unwrap();
        assert_eq!(cmd.config.listen, "0.0.0.0:7700");
        assert_eq!(cmd.config.transport, ServeTransport::Udp);
        assert_eq!(cmd.config.shards, 4);
        assert_eq!(cmd.config.max_sessions_per_shard, 1000);
        assert_eq!(cmd.config.auth_token, Some(99));
        assert!((cmd.config.open_rate - 10.5).abs() < f64::EPSILON);
        assert_eq!(cmd.config.sample_every, 1);
        assert_eq!(cmd.model, TimingModel::SemiSynchronous);
        assert_eq!((cmd.s, cmd.n, cmd.unit_us), (3, 4, 500));
        assert_eq!(cmd.selftest, Some(10));
    }

    #[test]
    fn zero_shards_is_a_clear_parse_error() {
        let err = ServeCmdConfig::parse(["shards=0"]).unwrap_err().to_string();
        assert!(err.contains("shards must be >= 1"), "{err}");
        assert!(err.contains("usage: session-cli serve"), "{err}");
        let err = ServeCmdConfig::parse(["sessions=0"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("max_sessions_per_shard must be >= 1"), "{err}");
    }

    #[test]
    fn malformed_and_unknown_keys_are_rejected_with_usage() {
        for bad in [
            "shards=many",
            "sessions=none",
            "transport=sctp",
            "model=quantum",
            "frobnicate=1",
            "positional",
        ] {
            let err = ServeCmdConfig::parse([bad]).unwrap_err().to_string();
            assert!(
                err.contains("usage: session-cli serve"),
                "`{bad}` should fail with usage, got: {err}"
            );
        }
        let err = ServeCmdConfig::parse(["shards=2", "shards=3"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate option `shards`"), "{err}");
    }

    #[test]
    fn selftest_runs_sessions_through_the_service() {
        let cmd = ServeCmdConfig::parse([
            "listen=127.0.0.1:0",
            "shards=2",
            "sessions=32",
            "sample=1",
            "selftest=6",
            "unit-us=1000",
        ])
        .unwrap();
        let out = cmd.execute().unwrap();
        assert!(out.contains("serving on 127.0.0.1:"), "{out}");
        assert!(
            out.contains("selftest: 6/6 sessions closed (6 conformance passes, 0 failures)"),
            "{out}"
        );
        assert!(out.contains("sessions: 6 opened, 6 closed"), "{out}");
        assert!(out.contains("conformance: 6 sampled, 0 failures"), "{out}");
    }
}
