//! Multi-core exploration: a work-sharing frontier explorer whose
//! findings are bit-identical to the serial DFS in [`crate::explore`].
//!
//! # Architecture (DESIGN.md §13)
//!
//! Exploration runs in two phases:
//!
//! * **Phase A — parallel code discovery.** `threads` workers drain a
//!   shared deque of work items (a subtree root: machine × counter ×
//!   depth × ancestor-key set). Each worker runs the same budget-aware
//!   memoized DFS as the serial explorer over its item, against a
//!   lock-striped memo shared by all workers, and records only the *set
//!   of lint codes* it finds — no witness paths. When the pool runs low,
//!   a worker *donates* children of its current state instead of
//!   recursing into all of them.
//! * **Phase B — serial witness re-derivation.** The union of the codes
//!   is handed to [`crate::explore::explore_witnesses`]: the serial DFS
//!   re-runs in its canonical order and stops as soon as every code has
//!   a witness. The reported violations are therefore the serial
//!   explorer's first witnesses — same codes, same roots, same paths —
//!   independent of how Phase A's work was interleaved. Clean targets
//!   (no codes) skip Phase B entirely, so the expensive case pays
//!   nothing for determinism.
//!
//! # Soundness under concurrency
//!
//! The budget-aware memo's invariant — *an entry `(key → budget)` is
//! only readable after every lint reachable from `key` within `budget`
//! has been recorded* — survives parallelism because entries are written
//! strictly **after** the writing worker finished the subtree, and any
//! dfs frame with a donated descendant skips its memo write entirely
//! (the donated child's promise is not yet fulfilled; writing would let
//! another worker skip a region whose codes nobody has recorded yet,
//! and promise cycles between such entries could leave states forever
//! unexplored). Two workers may race into the same state and both
//! explore it — duplicated work, never a missed verdict; stripe locks
//! merge their budgets with `max`.
//!
//! The POR cycle proviso is thread-local by construction: ample pruning
//! decisions only ever depend on the worker's own DFS stack, and a
//! *donation state expands its full choice menu*, so no pruning decision
//! ever spans two workers' stacks. Donated items carry their ancestors'
//! key set, keeping lasso detection (`SA005`) exact across the split.

use std::collections::{BTreeSet, VecDeque};
use std::time::{Duration, Instant};

// Under `--cfg loom` every primitive routes through the loom facade, so
// the `loom_tests` module can model-check the memo/pool machinery with
// the same types the production build uses.
#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::{Arc, Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::{Arc, Condvar, Mutex};

use rustc_hash::{FxHashMap, FxHashSet};
use session_obs::metrics::{MetricHandle, MetricsRegistry};
use session_obs::{ProgressBoard, Recorder, TimelineSpan};

use crate::diag::LintCode;
use crate::explore::{
    check_step, explore_witnesses, state_key, AnyMachine, Exploration, ExploreOpts, ReductionStats,
    SessionCounter, MEMO_COMPLETE,
};
use crate::por;
use crate::profile::{ExploreProfile, FlightOpts, StripeProfile, WorkerProfile, FLIGHT_BUFFER_CAP};

/// Memo stripes. Power of two; the stripe index is the key's top bits
/// (FxHash mixes into the high bits), so stripe pressure stays uniform.
const STRIPES: usize = 64;

/// Subtrees with no more remaining budget than this are never donated —
/// the pool round-trip costs more than just walking them locally.
const DONATE_MIN_BUDGET: usize = 4;

/// Progress updates are batched: workers publish to the shared
/// [`ProgressBoard`] once per this many expanded states, amortizing the
/// atomic traffic to nothing.
pub(crate) const PROGRESS_BATCH: u64 = 256;

fn stripe_index(key: u64) -> usize {
    (key >> 58) as usize & (STRIPES - 1)
}

fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Cross-worker flight-recorder state shared by reference: the epoch all
/// span offsets are relative to, plus the lock-free registry behind the
/// contended-wait and idle histograms (per-worker scalars live in
/// [`FlightLocal`], owned by one thread each — see DESIGN.md §15).
struct FlightShared {
    epoch: Instant,
    registry: MetricsRegistry,
    lock_wait: MetricHandle,
    idle: MetricHandle,
}

impl FlightShared {
    fn new(epoch: Instant) -> FlightShared {
        let mut registry = MetricsRegistry::new();
        let lock_wait = registry.register_histogram("explore.stripe_lock_wait_ns");
        let idle = registry.register_histogram("explore.idle_ns");
        FlightShared {
            epoch,
            registry,
            lock_wait,
            idle,
        }
    }
}

/// One worker's flight-recorder buffers: the public per-worker profile
/// plus the per-stripe tallies that get summed across workers after the
/// join. Thread-local by ownership — recording never synchronizes.
struct FlightLocal {
    prof: WorkerProfile,
    stripe_hits: [u64; STRIPES],
    stripe_misses: [u64; STRIPES],
    stripe_contended: [u64; STRIPES],
}

impl FlightLocal {
    fn new() -> Box<FlightLocal> {
        Box::new(FlightLocal {
            prof: WorkerProfile::new(),
            stripe_hits: [0; STRIPES],
            stripe_misses: [0; STRIPES],
            stripe_contended: [0; STRIPES],
        })
    }
}

/// One unexplored subtree in the shared pool.
struct WorkItem {
    machine: AnyMachine,
    counter: SessionCounter,
    /// Events between the root and this state (= consumed depth budget).
    depth: usize,
    /// Memo keys of every ancestor state on the donating worker's path —
    /// revisiting one of these is a lasso exactly as it would be on a
    /// single stack.
    prefix: Arc<FxHashSet<u64>>,
}

/// The shared work pool: a deque of donated subtrees plus the number of
/// workers currently processing an item. Workers block while the deque is
/// empty but peers are still busy (they may donate); everyone exits when
/// the deque is empty and nobody is busy.
struct Pool {
    state: Mutex<PoolState>,
    available: Condvar,
    /// Lock-free length approximation for the donation heuristic.
    approx_len: AtomicUsize,
}

struct PoolState {
    queue: VecDeque<WorkItem>,
    busy: usize,
}

impl Pool {
    fn new(seeds: Vec<WorkItem>) -> Pool {
        let approx = seeds.len();
        Pool {
            state: Mutex::new(PoolState {
                queue: seeds.into(),
                busy: 0,
            }),
            available: Condvar::new(),
            approx_len: AtomicUsize::new(approx),
        }
    }

    /// Whether workers are likely to starve soon — the donation trigger.
    fn is_starving(&self, threads: usize) -> bool {
        self.approx_len.load(Ordering::Relaxed) < threads
    }

    fn push(&self, item: WorkItem) {
        let mut state = self.state.lock().expect("pool lock");
        state.queue.push_back(item);
        self.approx_len.fetch_add(1, Ordering::Relaxed);
        self.available.notify_one();
    }

    /// Takes the next item (marking this worker busy), or `None` when the
    /// exploration is globally finished.
    fn pop(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().expect("pool lock");
        loop {
            if let Some(item) = state.queue.pop_front() {
                state.busy += 1;
                self.approx_len.fetch_sub(1, Ordering::Relaxed);
                return Some(item);
            }
            if state.busy == 0 {
                // Termination: wake every parked peer so they observe it.
                self.available.notify_all();
                return None;
            }
            state = self.available.wait(state).expect("pool lock");
        }
    }

    /// Marks the current item finished (counterpart of [`Pool::pop`]).
    fn finish(&self) {
        let mut state = self.state.lock().expect("pool lock");
        state.busy -= 1;
        if state.busy == 0 && state.queue.is_empty() {
            self.available.notify_all();
        }
    }
}

/// The lock-striped visited/memo table, same budget semantics as the
/// serial explorer's map ([`MEMO_COMPLETE`] = fully explored).
struct ShardedMemo {
    stripes: Vec<Mutex<FxHashMap<u64, usize>>>,
}

impl ShardedMemo {
    fn new() -> ShardedMemo {
        ShardedMemo {
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    fn stripe(&self, key: u64) -> &Mutex<FxHashMap<u64, usize>> {
        &self.stripes[(key >> 58) as usize & (STRIPES - 1)]
    }

    fn get(&self, key: u64) -> Option<usize> {
        self.stripe(key)
            .lock()
            .expect("memo stripe")
            .get(&key)
            .copied()
    }

    /// Merges `budget` in with `max` — concurrent writers keep the most
    /// complete exploration either of them performed. Returns whether the
    /// key was already present: a `true` means this worker just finished
    /// expanding a state someone (a peer, or an earlier shallower-budget
    /// walk) had already expanded — the duplicate-expansion signal.
    fn merge(&self, key: u64, budget: usize) -> bool {
        use std::collections::hash_map::Entry;
        let mut stripe = self.stripe(key).lock().expect("memo stripe");
        match stripe.entry(key) {
            Entry::Occupied(entry) => {
                let value = entry.into_mut();
                *value = (*value).max(budget);
                true
            }
            Entry::Vacant(entry) => {
                entry.insert(budget);
                false
            }
        }
    }

    /// [`ShardedMemo::get`] with flight instrumentation: contended
    /// stripe acquisitions are counted and timed (try-then-block, so an
    /// uncontended probe pays one extra atomic at most).
    fn get_flight(
        &self,
        key: u64,
        local: &mut FlightLocal,
        shared: &FlightShared,
    ) -> Option<usize> {
        // wslint: allow(ws001): flight profiler measures real elapsed time by design
        let started = Instant::now();
        let stripe = self.stripe(key);
        let guard = match stripe.try_lock().ok() {
            Some(guard) => guard,
            None => {
                let guard = stripe.lock().expect("memo stripe");
                Self::count_wait(key, started, local, shared);
                guard
            }
        };
        let result = guard.get(&key).copied();
        drop(guard);
        local.prof.memo_probe_ns += nanos(started.elapsed());
        result
    }

    /// [`ShardedMemo::merge`] with flight instrumentation.
    fn merge_flight(
        &self,
        key: u64,
        budget: usize,
        local: &mut FlightLocal,
        shared: &FlightShared,
    ) -> bool {
        use std::collections::hash_map::Entry;
        // wslint: allow(ws001): flight profiler measures real elapsed time by design
        let started = Instant::now();
        let stripe = self.stripe(key);
        let mut guard = match stripe.try_lock().ok() {
            Some(guard) => guard,
            None => {
                let guard = stripe.lock().expect("memo stripe");
                Self::count_wait(key, started, local, shared);
                guard
            }
        };
        let existed = match guard.entry(key) {
            Entry::Occupied(entry) => {
                let value = entry.into_mut();
                *value = (*value).max(budget);
                true
            }
            Entry::Vacant(entry) => {
                entry.insert(budget);
                false
            }
        };
        drop(guard);
        local.prof.memo_insert_ns += nanos(started.elapsed());
        existed
    }

    fn count_wait(key: u64, started: Instant, local: &mut FlightLocal, shared: &FlightShared) {
        let wait = nanos(started.elapsed());
        local.prof.stripe_lock_waits += 1;
        local.prof.stripe_lock_wait_ns += wait;
        local.stripe_contended[stripe_index(key)] += 1;
        shared.registry.histogram(shared.lock_wait).record(wait);
    }

    fn len(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("memo stripe").len() as u64)
            .sum()
    }
}

/// What one worker's dfs frame reports upward (the serial
/// `SubtreeOutcome` plus donation tracking).
#[derive(Clone, Copy)]
struct Outcome {
    complete: bool,
    closed_cycle: bool,
    /// A descendant of this frame was donated to the pool: its subtree's
    /// completion is someone else's promise, so no frame below the
    /// donation point may write a memo entry.
    donated: bool,
}

/// Per-worker exploration state and counters (merged after the join).
struct Worker<'a> {
    pool: &'a Pool,
    memo: &'a ShardedMemo,
    threads: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    /// Ancestor keys inherited from the donating worker (current item).
    prefix: Arc<FxHashSet<u64>>,
    /// Keys on this worker's own DFS stack.
    on_path: FxHashSet<u64>,
    codes: BTreeSet<LintCode>,
    states: u64,
    pruned: u64,
    memo_hits: u64,
    memo_misses: u64,
    depth_hits: u64,
    /// Memo merges that found the key already present (duplicated work).
    /// Counted unconditionally — the merge hands the bit back for free.
    duplicates: u64,
    /// Donation points this worker expanded / items it pushed there.
    donations_offered: u64,
    donations_accepted: u64,
    /// Flight-recorder buffers; `None` (the default) costs one branch
    /// per hook.
    flight: Option<Box<FlightLocal>>,
    shared: Option<&'a FlightShared>,
    /// Live-progress scoreboard, updated in [`PROGRESS_BATCH`] batches.
    progress: Option<&'a ProgressBoard>,
    batch_states: u64,
    batch_depth: u64,
}

/// What one worker hands back at the join.
struct WorkerOut {
    states: u64,
    pruned: u64,
    memo_hits: u64,
    memo_misses: u64,
    depth_hits: u64,
    duplicates: u64,
    donations_offered: u64,
    donations_accepted: u64,
    codes: BTreeSet<LintCode>,
    flight: Option<Box<FlightLocal>>,
}

impl Worker<'_> {
    fn run(&mut self) {
        loop {
            // wslint: allow(ws001): flight profiler measures real elapsed time by design
            let waiting_since = self.flight.as_ref().map(|_| Instant::now());
            let item = self.pool.pop();
            if let (Some(local), Some(shared), Some(since)) =
                (self.flight.as_deref_mut(), self.shared, waiting_since)
            {
                let idle = nanos(since.elapsed());
                local.prof.idle_ns += idle;
                shared.registry.histogram(shared.idle).record(idle);
            }
            let Some(item) = item else { break };
            let item_depth = item.depth as u64;
            // wslint: allow(ws001): flight profiler measures real elapsed time by design
            let started = self.flight.as_ref().map(|_| Instant::now());
            if let (Some(local), Some(shared)) = (self.flight.as_deref_mut(), self.shared) {
                local.prof.items += 1;
                if local.prof.pool_depth.len() < FLIGHT_BUFFER_CAP {
                    let depth = self.pool.approx_len.load(Ordering::Relaxed) as u64;
                    local
                        .prof
                        .pool_depth
                        .push((nanos(shared.epoch.elapsed()), depth));
                }
            }
            if let Some(board) = self.progress {
                board.worker_busy();
                board.set_frontier(self.pool.approx_len.load(Ordering::Relaxed) as u64);
            }
            self.prefix = Arc::clone(&item.prefix);
            self.on_path.clear();
            let _ = self.dfs(item.machine, &item.counter, item.depth);
            if let (Some(local), Some(shared), Some(started)) =
                (self.flight.as_deref_mut(), self.shared, started)
            {
                local.prof.busy_ns += nanos(started.elapsed());
                local.prof.timeline.push(TimelineSpan {
                    name: "item",
                    start_ns: nanos(started.duration_since(shared.epoch)),
                    end_ns: nanos(shared.epoch.elapsed()),
                    detail: item_depth,
                });
            }
            if let Some(board) = self.progress {
                self.flush_progress(board);
                board.worker_idle();
            }
            self.pool.finish();
        }
        if let Some(board) = self.progress {
            self.flush_progress(board);
        }
    }

    fn flush_progress(&mut self, board: &ProgressBoard) {
        if self.batch_states > 0 {
            board.add_states(self.batch_states);
            board.raise_depth(self.batch_depth);
            self.batch_states = 0;
        }
    }

    fn into_out(mut self) -> WorkerOut {
        if let Some(local) = self.flight.as_deref_mut() {
            local.prof.states = self.states;
            local.prof.duplicate_expansions = self.duplicates;
            local.prof.seal();
        }
        WorkerOut {
            states: self.states,
            pruned: self.pruned,
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
            depth_hits: self.depth_hits,
            duplicates: self.duplicates,
            donations_offered: self.donations_offered,
            donations_accepted: self.donations_accepted,
            codes: self.codes,
            flight: self.flight,
        }
    }

    fn dfs(&mut self, machine: AnyMachine, counter: &SessionCounter, depth: usize) -> Outcome {
        let done = Outcome {
            complete: true,
            closed_cycle: false,
            donated: false,
        };
        if machine.is_quiescent() {
            if counter.sessions() < self.s {
                self.codes.insert(LintCode::SessionDeficit);
            }
            return done;
        }
        let key = state_key(&machine, counter, self.opts.symmetry);
        if self.on_path.contains(&key) || self.prefix.contains(&key) {
            self.codes.insert(LintCode::NonTermination);
            return Outcome {
                complete: true,
                closed_cycle: true,
                donated: false,
            };
        }
        let remaining = self.max_depth.saturating_sub(depth);
        let memo = self.memo;
        let cached = match (self.flight.as_deref_mut(), self.shared) {
            (Some(local), Some(shared)) => memo.get_flight(key, local, shared),
            _ => memo.get(key),
        };
        if let Some(budget) = cached {
            if budget >= remaining {
                self.memo_hits += 1;
                if let Some(local) = self.flight.as_deref_mut() {
                    local.stripe_hits[stripe_index(key)] += 1;
                }
                if budget == MEMO_COMPLETE {
                    return done;
                }
                self.depth_hits += 1;
                return Outcome {
                    complete: false,
                    closed_cycle: false,
                    donated: false,
                };
            }
        }
        self.memo_misses += 1;
        if let Some(local) = self.flight.as_deref_mut() {
            local.stripe_misses[stripe_index(key)] += 1;
        }
        if depth >= self.max_depth {
            self.depth_hits += 1;
            return Outcome {
                complete: false,
                closed_cycle: false,
                donated: false,
            };
        }
        self.states += 1;
        if self.progress.is_some() {
            self.batch_states += 1;
            self.batch_depth = self.batch_depth.max(depth as u64);
            if self.batch_states >= PROGRESS_BATCH {
                if let Some(board) = self.progress {
                    board.add_states(self.batch_states);
                    board.raise_depth(self.batch_depth);
                }
                self.batch_states = 0;
            }
        }
        self.on_path.insert(key);
        let (complete, donated) = self.expand(&machine, counter, depth);
        self.on_path.remove(&key);
        if !donated {
            let budget = if complete { MEMO_COMPLETE } else { remaining };
            let existed = match (self.flight.as_deref_mut(), self.shared) {
                (Some(local), Some(shared)) => memo.merge_flight(key, budget, local, shared),
                _ => memo.merge(key, budget),
            };
            self.duplicates += u64::from(existed);
        }
        Outcome {
            complete: complete && !donated,
            closed_cycle: false,
            donated,
        }
    }

    /// One successor edge: apply, advance the counter (lazily — only port
    /// steps touch it), fire the step lints, recurse.
    fn explore_choice(
        &mut self,
        machine: &AnyMachine,
        counter: &SessionCounter,
        choice: usize,
        depth: usize,
    ) -> Outcome {
        let (next, next_counter) = match make_child(machine, counter, choice) {
            Child::Pruned(code) => {
                self.codes.insert(code);
                return Outcome {
                    complete: true,
                    closed_cycle: false,
                    donated: false,
                };
            }
            Child::Open(next, next_counter) => (next, next_counter),
        };
        let next_counter = next_counter.as_ref().unwrap_or(counter);
        self.dfs(next, next_counter, depth + 1)
    }

    /// Expands a state: either donates children to the pool (full menu,
    /// no memo write anywhere below) or runs the serial ample/proviso
    /// expansion locally. Returns `(complete, donated)`.
    fn expand(
        &mut self,
        machine: &AnyMachine,
        counter: &SessionCounter,
        depth: usize,
    ) -> (bool, bool) {
        let choices = machine.choice_count();
        debug_assert!(choices > 0, "non-quiescent machine must have events");
        let remaining = self.max_depth - depth;
        if choices > 1 && remaining > DONATE_MIN_BUDGET && self.pool.is_starving(self.threads) {
            return (self.donate(machine, counter, choices, depth), true);
        }
        let ample = if self.opts.por {
            por::select_ample(machine, counter)
        } else {
            None
        };
        let Some(ample) = ample else {
            let mut complete = true;
            let mut donated = false;
            for choice in 0..choices {
                let outcome = self.explore_choice(machine, counter, choice, depth);
                complete &= outcome.complete;
                donated |= outcome.donated;
            }
            return (complete, donated);
        };
        debug_assert!(ample.end <= choices && !ample.is_empty());
        let mut complete = true;
        let mut donated = false;
        let mut closed_cycle = false;
        for choice in ample.start..ample.end {
            let outcome = self.explore_choice(machine, counter, choice, depth);
            complete &= outcome.complete;
            closed_cycle |= outcome.closed_cycle;
            donated |= outcome.donated;
        }
        if closed_cycle {
            // Cycle proviso, exactly as in the serial explorer: the cycle
            // closed on this worker's own stack (or its inherited prefix),
            // so expand the rest of the menu too.
            for choice in (0..ample.start).chain(ample.end..choices) {
                let outcome = self.explore_choice(machine, counter, choice, depth);
                complete &= outcome.complete;
                donated |= outcome.donated;
            }
        } else {
            self.pruned += (choices - ample.len()) as u64;
        }
        (complete, donated)
    }

    /// Donation: expand the *full* menu (so no POR decision spans the
    /// split), keep the first open child for this worker and push the
    /// rest. Returns local completeness (donated children excluded — the
    /// caller's `donated` flag already suppresses every affected memo
    /// write).
    fn donate(
        &mut self,
        machine: &AnyMachine,
        counter: &SessionCounter,
        choices: usize,
        depth: usize,
    ) -> bool {
        // wslint: allow(ws001): flight profiler measures real elapsed time by design
        let started = self.flight.as_ref().map(|_| Instant::now());
        self.donations_offered += 1;
        let mut prefix: FxHashSet<u64> = (*self.prefix).clone();
        prefix.extend(self.on_path.iter().copied());
        let prefix = Arc::new(prefix);
        let mut kept: Option<(AnyMachine, Option<SessionCounter>)> = None;
        for choice in 0..choices {
            match make_child(machine, counter, choice) {
                Child::Pruned(code) => {
                    self.codes.insert(code);
                }
                Child::Open(next, next_counter) => {
                    if kept.is_none() {
                        kept = Some((next, next_counter));
                    } else {
                        self.donations_accepted += 1;
                        self.pool.push(WorkItem {
                            machine: next,
                            counter: next_counter.unwrap_or_else(|| counter.clone()),
                            depth: depth + 1,
                            prefix: Arc::clone(&prefix),
                        });
                    }
                }
            }
        }
        if let (Some(local), Some(started)) = (self.flight.as_deref_mut(), started) {
            // The donation split only — the kept child's subtree below is
            // ordinary expansion time.
            local.prof.donation_ns += nanos(started.elapsed());
        }
        let Some((next, next_counter)) = kept else {
            // Every edge fired a step lint: the subtree is locally done.
            return true;
        };
        let next_counter = next_counter.as_ref().unwrap_or(counter);
        self.dfs(next, next_counter, depth + 1).complete
    }
}

/// A successor edge's result: pruned at a step-level lint, or an open
/// child state (with its advanced counter when the step was visible to
/// the session counter).
enum Child {
    Pruned(LintCode),
    Open(AnyMachine, Option<SessionCounter>),
}

fn make_child(machine: &AnyMachine, counter: &SessionCounter, choice: usize) -> Child {
    let mut next = machine.clone();
    let info = next.apply(choice, None);
    let next_counter = info.port.is_some().then(|| {
        let mut cloned = counter.clone();
        cloned.observe(&info);
        cloned
    });
    let effective = next_counter.as_ref().unwrap_or(counter);
    match check_step(&info, &next, effective) {
        Some((code, _message)) => Child::Pruned(code),
        None => Child::Open(next, next_counter),
    }
}

/// The work-sharing parallel explorer behind `ExploreOpts { threads > 1 }`
/// — see the module docs for the phase split and the determinism
/// argument. Verdicts (codes, witness roots, witness paths, truncation)
/// are bit-identical to [`crate::explore::explore_recorded_opts`] at
/// `threads = 1`; the `states` count may differ (workers racing into the
/// same state both count it, and the serial witness pass adds none).
///
/// The flight recorder rides along: when `flight.profile` is set, the
/// per-worker/per-stripe [`ExploreProfile`] is returned alongside the
/// (unchanged) exploration; when `flight.progress` carries a board,
/// workers publish batched progress to it. Neither influences a single
/// exploration decision.
#[allow(clippy::cast_precision_loss)]
pub(crate) fn explore_parallel_flight(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    recorder: &mut dyn Recorder,
    flight: &FlightOpts,
) -> (Exploration, Option<ExploreProfile>) {
    debug_assert!(opts.threads > 1);
    // wslint: allow(ws001): flight profiler measures real elapsed time by design
    let started = Instant::now();
    let shared = flight.profile.then(|| FlightShared::new(started));
    let progress = flight.progress.as_deref();
    let empty_prefix = Arc::new(FxHashSet::default());
    let seeds: Vec<WorkItem> = roots
        .iter()
        .map(|root| WorkItem {
            machine: root.clone(),
            counter: SessionCounter::new(n, s),
            depth: 0,
            prefix: Arc::clone(&empty_prefix),
        })
        .collect();
    let pool = Pool::new(seeds);
    let memo = ShardedMemo::new();

    let mut outs: Vec<WorkerOut> = Vec::with_capacity(opts.threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.threads)
            .map(|_| {
                let pool = &pool;
                let memo = &memo;
                let shared = shared.as_ref();
                let empty_prefix = Arc::clone(&empty_prefix);
                scope.spawn(move || {
                    let mut worker = Worker {
                        pool,
                        memo,
                        threads: opts.threads,
                        s,
                        max_depth,
                        opts,
                        prefix: empty_prefix,
                        on_path: FxHashSet::default(),
                        codes: BTreeSet::new(),
                        states: 0,
                        pruned: 0,
                        memo_hits: 0,
                        memo_misses: 0,
                        depth_hits: 0,
                        duplicates: 0,
                        donations_offered: 0,
                        donations_accepted: 0,
                        flight: shared.map(|_| FlightLocal::new()),
                        shared,
                        progress,
                        batch_states: 0,
                        batch_depth: 0,
                    };
                    worker.run();
                    worker.into_out()
                })
            })
            .collect();
        for handle in handles {
            outs.push(handle.join().expect("exploration worker panicked"));
        }
    });
    let phase_a_ns = nanos(started.elapsed());

    let mut states = 0u64;
    let mut pruned = 0u64;
    let mut memo_hits = 0u64;
    let mut memo_misses = 0u64;
    let mut depth_hits = 0u64;
    let mut duplicates = 0u64;
    let mut donations_offered = 0u64;
    let mut donations_accepted = 0u64;
    let mut codes: BTreeSet<LintCode> = BTreeSet::new();
    for out in &mut outs {
        states += out.states;
        pruned += out.pruned;
        memo_hits += out.memo_hits;
        memo_misses += out.memo_misses;
        depth_hits += out.depth_hits;
        duplicates += out.duplicates;
        donations_offered += out.donations_offered;
        donations_accepted += out.donations_accepted;
        codes.extend(std::mem::take(&mut out.codes));
    }

    // Phase B: canonical witnesses, serially — free when nothing fired.
    // wslint: allow(ws001): flight profiler measures real elapsed time by design
    let phase_b_started = Instant::now();
    let violations = explore_witnesses(roots, n, s, max_depth, opts, &codes);
    let phase_b_ns = nanos(phase_b_started.elapsed());
    debug_assert_eq!(
        violations.len(),
        codes.len(),
        "witness re-derivation must find every code Phase A found"
    );

    let unique_states = memo.len();
    if recorder.is_enabled() {
        recorder.counter("explore.memo_hits", memo_hits);
        recorder.counter("explore.memo_misses", memo_misses);
        recorder.counter("explore.pruned_choices", pruned);
        recorder.counter("explore.duplicate_expansions", duplicates);
        recorder.counter("explore.donations_offered", donations_offered);
        recorder.counter("explore.donations_accepted", donations_accepted);
        recorder.gauge("explore.states", states as f64);
        recorder.gauge("explore.memo_entries", unique_states as f64);
        recorder.gauge("explore.threads", opts.threads as f64);
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            recorder.gauge("explore.states_per_sec", states as f64 / elapsed);
        }
        if let Some(shared) = &shared {
            shared.registry.emit(recorder);
            let locals = outs.iter().filter_map(|out| out.flight.as_deref());
            let mut waits = 0u64;
            let (mut expand, mut probe, mut insert) = (0u64, 0u64, 0u64);
            for local in locals {
                waits += local.prof.stripe_lock_waits;
                expand += local.prof.expand_ns;
                probe += local.prof.memo_probe_ns;
                insert += local.prof.memo_insert_ns;
            }
            recorder.counter("explore.stripe_lock_waits", waits);
            recorder.counter("explore.expand_ns", expand);
            recorder.counter("explore.memo_probe_ns", probe);
            recorder.counter("explore.memo_insert_ns", insert);
            recorder.gauge("explore.phase_a_ms", phase_a_ns as f64 / 1e6);
            recorder.gauge("explore.phase_b_ms", phase_b_ns as f64 / 1e6);
        }
    }

    let profile = shared.map(|shared| {
        let mut stripes = vec![StripeProfile::default(); STRIPES];
        let mut workers = Vec::with_capacity(outs.len());
        for out in &mut outs {
            let local = out.flight.take().expect("flight on for every worker");
            for (i, stripe) in stripes.iter_mut().enumerate() {
                stripe.hits += local.stripe_hits[i];
                stripe.misses += local.stripe_misses[i];
                stripe.contended += local.stripe_contended[i];
            }
            workers.push(local.prof);
        }
        ExploreProfile {
            target: String::new(),
            n,
            s,
            threads: opts.threads,
            max_depth,
            por: opts.por,
            symmetry: opts.symmetry,
            states,
            unique_states,
            duplicate_expansions: duplicates,
            donations_offered,
            donations_accepted,
            wall_ns: nanos(started.elapsed()),
            phase_a_ns,
            phase_b_ns,
            lock_wait_hist: shared.registry.histogram(shared.lock_wait).snapshot(),
            workers,
            stripes,
        }
    });

    let exploration = Exploration {
        states,
        violations,
        truncated: depth_hits > 0,
        depth_hits,
        stats: ReductionStats { pruned, memo_hits },
    };
    (exploration, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_machine() -> AnyMachine {
        use crate::machine::{GapMode, MpAlgo, MpMachine};
        use session_core::algorithms::SyncMpPort;
        use session_types::{Dur, Time};
        let algos = vec![MpAlgo::Sync(SyncMpPort::new(1))];
        AnyMachine::Mp(MpMachine::new(
            algos,
            GapMode::PerStep(vec![Dur::from_int(1)]),
            vec![Dur::from_int(1)],
            vec![Time::ZERO + Dur::from_int(1)],
        ))
    }

    #[test]
    fn pool_pops_in_fifo_order_and_terminates() {
        let machine = tiny_machine();
        let seeds = vec![
            WorkItem {
                machine: machine.clone(),
                counter: SessionCounter::new(1, 1),
                depth: 0,
                prefix: Arc::new(FxHashSet::default()),
            },
            WorkItem {
                machine,
                counter: SessionCounter::new(1, 1),
                depth: 7,
                prefix: Arc::new(FxHashSet::default()),
            },
        ];
        let pool = Pool::new(seeds);
        let first = pool.pop().expect("seeded");
        assert_eq!(first.depth, 0);
        pool.finish();
        let second = pool.pop().expect("seeded");
        assert_eq!(second.depth, 7);
        pool.finish();
        assert!(pool.pop().is_none(), "empty + idle pool terminates");
    }

    #[test]
    fn sharded_memo_merges_budgets_with_max() {
        let memo = ShardedMemo::new();
        memo.merge(42, 3);
        memo.merge(42, 10);
        memo.merge(42, 5);
        assert_eq!(memo.get(42), Some(10));
        memo.merge(42, MEMO_COMPLETE);
        assert_eq!(memo.get(42), Some(MEMO_COMPLETE));
        assert_eq!(memo.get(43), None);
        assert_eq!(memo.len(), 1);
    }
}

/// Concurrency tests for [`ShardedMemo`], built only under
/// `RUSTFLAGS="--cfg loom"` (the CI `loom` job). The facade's `model`
/// re-runs each closure across many real-thread schedules; with the
/// registry loom crate in place the same tests become exhaustive.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;

    /// Keys that land on distinct stripes (the stripe index is the top
    /// six bits) plus colliding keys within one stripe.
    fn spread_keys() -> Vec<u64> {
        (0..8u64).map(|i| (i << 58) | i).collect()
    }

    #[test]
    fn concurrent_merges_lose_no_entries_and_keep_the_max_budget() {
        loom::model(|| {
            let memo = Arc::new(ShardedMemo::new());
            let keys = spread_keys();
            let handles: Vec<_> = (0..3usize)
                .map(|t| {
                    let memo = Arc::clone(&memo);
                    let keys = keys.clone();
                    loom::thread::spawn(move || {
                        for (i, &key) in keys.iter().enumerate() {
                            memo.merge(key, t * 10 + i);
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("writer");
            }
            // No entry is lost and every surviving budget is the max
            // over the three writers (t = 2), never a torn intermediate.
            assert_eq!(memo.len(), keys.len() as u64);
            for (i, &key) in keys.iter().enumerate() {
                assert_eq!(memo.get(key), Some(20 + i));
            }
        });
    }

    #[test]
    fn budgets_observed_by_a_racing_reader_are_monotonic() {
        loom::model(|| {
            let memo = Arc::new(ShardedMemo::new());
            let key = 0xdead_beef;
            let writer = {
                let memo = Arc::clone(&memo);
                loom::thread::spawn(move || {
                    // Out-of-order writes: merge must still only raise.
                    for budget in [1, 5, 3, MEMO_COMPLETE, 2] {
                        memo.merge(key, budget);
                    }
                })
            };
            let mut last = 0;
            for _ in 0..8 {
                if let Some(budget) = memo.get(key) {
                    assert!(budget >= last, "budget regressed: {budget} < {last}");
                    last = budget;
                }
            }
            writer.join().expect("writer");
            assert_eq!(memo.get(key), Some(MEMO_COMPLETE));
        });
    }
}
