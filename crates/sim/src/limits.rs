//! Simulation budgets.

use session_types::Time;

/// Budgets bounding a single simulation run.
///
/// Correct session algorithms terminate, but the test suite also runs
/// deliberately broken algorithms (the lower-bound witnesses) and algorithms
/// under adversarial schedules; limits turn a livelock into a reported
/// non-termination instead of a hung test.
///
/// # Examples
///
/// ```
/// use session_sim::RunLimits;
/// use session_types::Time;
///
/// let limits = RunLimits::default().with_max_steps(10_000);
/// assert_eq!(limits.max_steps(), 10_000);
/// assert!(limits.allows(100, Time::from_int(5)));
/// assert!(!limits.allows(10_000, Time::from_int(5)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLimits {
    max_steps: u64,
    max_time: Option<Time>,
}

impl RunLimits {
    /// Creates limits with the given step budget and no time budget.
    pub fn new(max_steps: u64) -> RunLimits {
        RunLimits {
            max_steps,
            max_time: None,
        }
    }

    /// Replaces the step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> RunLimits {
        self.max_steps = max_steps;
        self
    }

    /// Adds a simulated-time budget: events after `max_time` are not
    /// executed.
    pub fn with_max_time(mut self, max_time: Time) -> RunLimits {
        self.max_time = Some(max_time);
        self
    }

    /// The step budget.
    pub fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// The simulated-time budget, if any.
    pub fn max_time(&self) -> Option<Time> {
        self.max_time
    }

    /// Returns `true` if a run that has executed `steps` steps may execute
    /// another event at `now`.
    pub fn allows(&self, steps: u64, now: Time) -> bool {
        if steps >= self.max_steps {
            return false;
        }
        match self.max_time {
            Some(t) => now <= t,
            None => true,
        }
    }
}

impl Default for RunLimits {
    /// One million steps, no time budget — generous for every experiment in
    /// this workspace while still failing fast on livelock.
    fn default() -> RunLimits {
        RunLimits::new(1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget() {
        let l = RunLimits::default();
        assert_eq!(l.max_steps(), 1_000_000);
        assert_eq!(l.max_time(), None);
    }

    #[test]
    fn step_budget_enforced() {
        let l = RunLimits::new(3);
        assert!(l.allows(2, Time::ZERO));
        assert!(!l.allows(3, Time::ZERO));
        assert!(!l.allows(4, Time::ZERO));
    }

    #[test]
    fn time_budget_enforced() {
        let l = RunLimits::new(100).with_max_time(Time::from_int(10));
        assert!(l.allows(0, Time::from_int(10)));
        assert!(!l.allows(0, Time::from_int(11)));
    }

    #[test]
    fn builders_compose() {
        let l = RunLimits::default()
            .with_max_steps(5)
            .with_max_time(Time::from_int(2));
        assert_eq!(l.max_steps(), 5);
        assert_eq!(l.max_time(), Some(Time::from_int(2)));
    }
}
