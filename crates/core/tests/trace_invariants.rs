//! Structural invariants every engine-produced trace must satisfy,
//! regardless of model or algorithm: nondecreasing times (enforced by
//! construction), absorbing idleness, deliveries after sends, and
//! receive-after-delivery ordering.

use proptest::prelude::*;
use session_core::report::{run_mp, run_sm, MpConfig, SmConfig};
use session_sim::{FixedPeriods, RunLimits, StepKind, Trace, UniformDelay};
use session_smm::TreeSpec;
use session_types::{Dur, KnownBounds, ProcessId, SessionSpec, TimingModel};
use std::collections::BTreeMap;

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

fn assert_invariants(trace: &Trace) {
    // Times nondecreasing.
    for pair in trace.events().windows(2) {
        assert!(pair[0].time <= pair[1].time);
    }
    // Idle is absorbing per process (over process steps).
    let mut idle: BTreeMap<ProcessId, bool> = BTreeMap::new();
    for e in trace.events() {
        if !e.kind.is_process_step() {
            continue;
        }
        let was = idle.get(&e.process).copied().unwrap_or(false);
        assert!(
            !was || e.idle_after,
            "{} left an idle state at {}",
            e.process,
            e.time
        );
        idle.insert(e.process, e.idle_after);
    }
    // Deliveries never precede their sends; delivery events match records.
    for m in trace.messages() {
        if let Some(at) = m.delivered_at {
            assert!(at >= m.sent_at, "{} delivered before sent", m.msg);
        }
    }
    for e in trace.events() {
        if let StepKind::Deliver { msg } = e.kind {
            let record = trace.message(msg).expect("delivery references a send");
            assert_eq!(record.delivered_at, Some(e.time));
            assert_eq!(record.to, e.process);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn invariants_hold_for_every_model_mp(
        model_idx in 0usize..5,
        s in 1u64..4,
        n in 1usize..5,
        d2 in 0i128..8,
        seed in any::<u64>(),
    ) {
        let model = TimingModel::ALL[model_idx];
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let c1 = d(1);
        let c2 = d(3);
        let bounds = match model {
            TimingModel::Synchronous => KnownBounds::synchronous(c2, d(d2)).unwrap(),
            TimingModel::Periodic => KnownBounds::periodic(d(d2)).unwrap(),
            TimingModel::SemiSynchronous => KnownBounds::semi_synchronous(c1, c2, d(d2)).unwrap(),
            TimingModel::Sporadic => KnownBounds::sporadic(c1, Dur::ZERO, d(d2)).unwrap(),
            TimingModel::Asynchronous => KnownBounds::asynchronous(),
        };
        let mut sched = FixedPeriods::uniform(n, c2).unwrap();
        let mut delays = UniformDelay::new(Dur::ZERO, d(d2), seed).unwrap();
        let report = run_mp(
            MpConfig { model, spec, bounds },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        )
        .unwrap();
        prop_assert!(report.terminated);
        assert_invariants(&report.trace);
    }

    #[test]
    fn invariants_hold_for_every_model_sm(
        model_idx in 0usize..5,
        s in 1u64..4,
        n in 1usize..6,
        b in 2usize..4,
    ) {
        let model = TimingModel::ALL[model_idx];
        let spec = SessionSpec::new(s, n, b).unwrap();
        let c1 = d(1);
        let c2 = d(3);
        let bounds = match model {
            TimingModel::Synchronous => KnownBounds::synchronous(c2, d(1)).unwrap(),
            TimingModel::Periodic => KnownBounds::periodic(d(1)).unwrap(),
            TimingModel::SemiSynchronous => KnownBounds::semi_synchronous(c1, c2, d(1)).unwrap(),
            TimingModel::Sporadic => KnownBounds::sporadic(c1, Dur::ZERO, d(1)).unwrap(),
            TimingModel::Asynchronous => KnownBounds::asynchronous(),
        };
        let tree = TreeSpec::build(n, b);
        let mut sched = FixedPeriods::uniform(n + tree.num_relays(), c2).unwrap();
        let report = run_sm(
            SmConfig { model, spec, bounds },
            &mut sched,
            RunLimits::default(),
        )
        .unwrap();
        prop_assert!(report.terminated);
        assert_invariants(&report.trace);
    }
}
