//! A thread-safe recorder adapter for multi-threaded executors.
//!
//! The [`Recorder`] trait takes `&mut self` — single-threaded engines call
//! it directly with zero synchronization cost. The real-clock runtime
//! (`session-net`) runs one OS thread per process; [`SharedRecorder`] lets
//! all of them feed one backend by wrapping it in an `Arc<Mutex<_>>` and
//! handing each thread a clone.
//!
//! Span semantics under concurrency: spans nest *per backend*, not per
//! thread — interleaved `span_start`/`span_end` calls from different
//! threads would attribute time to whichever span happens to be innermost.
//! Multi-threaded callers should therefore restrict themselves to the
//! order-insensitive instruments (counters, gauges, histograms), which is
//! what `session-net` does.

use std::sync::{Arc, Mutex, PoisonError};

use crate::recorder::Recorder;

/// A cloneable, `Send` handle to a shared [`Recorder`] backend.
///
/// Lock poisoning is deliberately ignored (`session-obs` records metrics;
/// a panicking sibling thread must not turn telemetry into a second
/// panic): a poisoned mutex is re-entered and recording continues.
///
/// # Examples
///
/// ```
/// use session_obs::{InMemoryRecorder, Recorder, SharedRecorder};
///
/// let shared = SharedRecorder::new(InMemoryRecorder::new());
/// let mut handles = Vec::new();
/// for _ in 0..4 {
///     let mut rec = shared.clone();
///     handles.push(std::thread::spawn(move || rec.counter("net.steps", 1)));
/// }
/// for h in handles {
///     h.join().unwrap();
/// }
/// let snapshot = shared.into_inner().into_snapshot();
/// assert_eq!(snapshot.counter("net.steps"), 4);
/// ```
#[derive(Debug)]
pub struct SharedRecorder<R> {
    inner: Arc<Mutex<R>>,
}

impl<R> Clone for SharedRecorder<R> {
    fn clone(&self) -> SharedRecorder<R> {
        SharedRecorder {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<R> SharedRecorder<R> {
    /// Wraps `backend` for shared use.
    pub fn new(backend: R) -> SharedRecorder<R> {
        SharedRecorder {
            inner: Arc::new(Mutex::new(backend)),
        }
    }

    /// Runs `f` with exclusive access to the backend (e.g. to snapshot an
    /// `InMemoryRecorder` mid-run).
    pub fn with<T>(&self, f: impl FnOnce(&mut R) -> T) -> T {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }

    /// Recovers the backend. All clones must have been dropped.
    ///
    /// # Panics
    ///
    /// Panics if other clones of this handle are still alive.
    pub fn into_inner(self) -> R {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => mutex.into_inner().unwrap_or_else(PoisonError::into_inner),
            Err(_) => panic!("SharedRecorder::into_inner with live clones"), // wslint: allow(ws004): documented panic contract of into_inner
        }
    }
}

impl<R: Recorder> Recorder for SharedRecorder<R> {
    fn counter(&mut self, name: &'static str, delta: u64) {
        self.with(|r| r.counter(name, delta));
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.with(|r| r.gauge(name, value));
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.with(|r| r.observe(name, value));
    }

    fn span_start(&mut self, name: &'static str) {
        self.with(|r| r.span_start(name));
    }

    fn span_end(&mut self) {
        self.with(Recorder::span_end);
    }

    fn merge_histogram(&mut self, name: &'static str, hist: &crate::Histogram) {
        self.with(|r| r.merge_histogram(name, hist));
    }

    fn is_enabled(&self) -> bool {
        self.with(|r| r.is_enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryRecorder;
    use crate::recorder::NullRecorder;

    #[test]
    fn forwards_every_instrument() {
        let shared = SharedRecorder::new(InMemoryRecorder::new());
        let mut handle = shared.clone();
        handle.counter("c", 2);
        handle.gauge("g", 1.5);
        handle.observe("h", 3.0);
        handle.span_start("s");
        handle.span_end();
        assert!(handle.is_enabled());
        drop(handle);
        let snap = shared.into_inner().into_snapshot();
        assert_eq!(snap.counter("c"), 2);
        assert_eq!(snap.gauge("g"), Some(1.5));
        assert_eq!(snap.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn enabled_tracks_backend() {
        let shared = SharedRecorder::new(NullRecorder);
        assert!(!shared.clone().is_enabled());
    }

    #[test]
    fn concurrent_counters_do_not_lose_increments() {
        let shared = SharedRecorder::new(InMemoryRecorder::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let mut rec = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        rec.counter("net.steps", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(shared.with(|r| r.snapshot().counter("net.steps")), 800);
    }

    #[test]
    #[should_panic(expected = "live clones")]
    fn into_inner_rejects_live_clones() {
        let shared = SharedRecorder::new(NullRecorder);
        let _clone = shared.clone();
        let _ = shared.into_inner();
    }
}
