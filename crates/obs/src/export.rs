//! Trace exporters: Chrome trace-event / Perfetto JSON and a structured
//! JSONL event stream.
//!
//! A [`session_sim::Trace`] is the paper's timed computation `(α, T)`;
//! these exporters turn it into machine-readable artifacts:
//!
//! * [`perfetto_json`] — the Chrome trace-event JSON object format
//!   (`{"traceEvents": [...]}`), loadable in <https://ui.perfetto.dev> or
//!   `chrome://tracing`. One track per process; process steps and network
//!   deliveries are instant events; each delivered message is a flow
//!   arrow from its send to its delivery; each closed session is a
//!   duration event on a dedicated `sessions` track, and each process's
//!   pre-idle activity is a duration event nesting its step instants.
//! * [`trace_jsonl`] — one JSON object per line: a `meta` header, every
//!   event, every message record and every session close. Exact rational
//!   times are preserved as strings next to the millisecond floats.
//!
//! Both outputs are deterministic functions of the trace and
//! [`ExportMeta`] — byte-stable across runs for a fixed seed (asserted by
//! the golden-file tests in `tests/trace_export_golden.rs`).
//!
//! Simulated time is unitless in the paper; the exporters render one time
//! unit as one millisecond (Chrome `ts` is in microseconds, so `t=3`
//! becomes `ts=3000`).

use session_sim::{StepKind, Trace};
use session_types::{KnownBounds, PortId, Time};

use crate::json::JsonWriter;

/// Everything the exporters need beyond the trace itself.
///
/// The trace records *what happened*; the session structure is computed
/// by the verifiers in `session-core`, which this crate must not depend
/// on (the engines depend on `session-obs`). Callers therefore pass the
/// port map and the session close times in.
#[derive(Clone, Debug, Default)]
pub struct ExportMeta {
    /// Trace title (shown as the Perfetto process name).
    pub title: String,
    /// The port realized by each process, by process index. Message-
    /// passing port processes are not tagged in the trace itself; shared-
    /// memory port steps are (so `ports` may be empty for SM traces).
    pub ports: Vec<Option<PortId>>,
    /// The times at which each session closed, in order (from
    /// `session_core::analysis::analyze`). Empty renders no session
    /// track.
    pub session_close_times: Vec<Time>,
    /// The timing model the run claims to obey, with its known bounds.
    /// When set, the JSONL `meta` line carries the model name and the
    /// exact bound values, so a downstream causality analyzer can check
    /// the trace against the claim; when `None` the meta line is
    /// unchanged.
    pub claim: Option<KnownBounds>,
}

impl ExportMeta {
    /// Metadata with a title and no port/session annotations.
    pub fn new(title: impl Into<String>) -> ExportMeta {
        ExportMeta {
            title: title.into(),
            ports: Vec::new(),
            session_close_times: Vec::new(),
            claim: None,
        }
    }

    /// Sets the per-process port map.
    #[must_use]
    pub fn with_ports(mut self, ports: Vec<Option<PortId>>) -> ExportMeta {
        self.ports = ports;
        self
    }

    /// Sets the session close times.
    #[must_use]
    pub fn with_sessions(mut self, close_times: Vec<Time>) -> ExportMeta {
        self.session_close_times = close_times;
        self
    }

    /// Sets the claimed timing model and its known bounds.
    #[must_use]
    pub fn with_claim(mut self, claim: KnownBounds) -> ExportMeta {
        self.claim = Some(claim);
        self
    }

    fn port_of(&self, process: usize) -> Option<PortId> {
        self.ports.get(process).copied().flatten()
    }
}

/// One simulated time unit rendered as this many Chrome trace-event
/// microseconds (i.e. one millisecond).
const MICROS_PER_UNIT: f64 = 1000.0;

fn ts(t: Time) -> f64 {
    t.to_f64() * MICROS_PER_UNIT
}

/// The synthetic Perfetto `pid` all tracks live under.
const PID: u64 = 1;

fn event_header(w: &mut JsonWriter, name: &str, ph: &str, tid: u64, at: f64) {
    w.begin_object();
    w.field_str("name", name);
    w.field_str("ph", ph);
    w.field_u64("pid", PID);
    w.field_u64("tid", tid);
    w.field_f64("ts", at);
}

fn thread_name(w: &mut JsonWriter, tid: u64, name: &str) {
    w.begin_object();
    w.field_str("name", "thread_name");
    w.field_str("ph", "M");
    w.field_u64("pid", PID);
    w.field_u64("tid", tid);
    w.key("args");
    w.begin_object();
    w.field_str("name", name);
    w.end_object();
    w.end_object();
}

/// Renders `trace` in the Chrome trace-event JSON object format.
///
/// Tracks (`tid`): one per process (its index), plus a `sessions` track
/// at `tid = num_processes` when `meta.session_close_times` is nonempty.
/// Event phases used: `M` (metadata), `X` (durations: per-process active
/// spans, sessions), `i` (instants: steps, port steps, deliveries),
/// `s`/`f` (flows: one per delivered message).
pub fn perfetto_json(trace: &Trace, meta: &ExportMeta) -> String {
    let n = trace.num_processes();
    let end = trace.end_time().unwrap_or(Time::ZERO);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.begin_array();

    // Metadata: the process (in the Chrome sense) and one named thread
    // per simulated process.
    w.begin_object();
    w.field_str("name", "process_name");
    w.field_str("ph", "M");
    w.field_u64("pid", PID);
    w.key("args");
    w.begin_object();
    w.field_str(
        "name",
        if meta.title.is_empty() {
            "session-problem"
        } else {
            &meta.title
        },
    );
    w.end_object();
    w.end_object();
    for p in 0..n {
        let label = match meta.port_of(p) {
            Some(port) => format!("p{p} ({port})"),
            None => format!("p{p}"),
        };
        thread_name(&mut w, p as u64, &label);
    }
    let sessions_tid = n as u64;
    if !meta.session_close_times.is_empty() {
        thread_name(&mut w, sessions_tid, "sessions");
    }

    // Per-process activity spans: from time 0 to the idle-entry time (or
    // the end of the trace), so the step instants nest inside them.
    for p in 0..n {
        let pid = session_types::ProcessId::new(p);
        if trace.step_count(pid) == 0 {
            continue;
        }
        let until = trace.idle_time(pid).unwrap_or(end);
        event_header(&mut w, "active", "X", p as u64, 0.0);
        w.field_f64("dur", ts(until));
        w.key("args");
        w.begin_object();
        w.field_u64("steps", trace.step_count(pid) as u64);
        w.field_bool("idled", trace.idle_time(pid).is_some());
        w.end_object();
        w.end_object();
    }

    // Session durations: session k spans (close_{k-1}, close_k].
    let mut prev = Time::ZERO;
    for (k, &close) in meta.session_close_times.iter().enumerate() {
        event_header(
            &mut w,
            &format!("session {}", k + 1),
            "X",
            sessions_tid,
            ts(prev),
        );
        w.field_f64("dur", ts(close) - ts(prev));
        w.end_object();
        prev = close;
    }

    // Step and delivery instants, in trace order.
    for e in trace.events() {
        let p = e.process.index();
        let (name, detail): (&str, Vec<(&str, String)>) = match &e.kind {
            StepKind::VarAccess { var, port } => (
                if port.is_some() { "port step" } else { "step" },
                match port {
                    Some(port) => {
                        vec![("var", var.to_string()), ("port", port.to_string())]
                    }
                    None => vec![("var", var.to_string())],
                },
            ),
            StepKind::MpStep {
                received,
                broadcast,
            } => (
                if meta.port_of(p).is_some() {
                    "port step"
                } else {
                    "step"
                },
                vec![
                    ("received", received.to_string()),
                    ("broadcast", broadcast.to_string()),
                ],
            ),
            StepKind::Deliver { msg } => ("deliver", vec![("msg", msg.to_string())]),
        };
        event_header(&mut w, name, "i", p as u64, ts(e.time));
        w.field_str("s", "t");
        w.key("args");
        w.begin_object();
        for (key, value) in detail {
            w.field_str(key, &value);
        }
        if e.idle_after {
            w.field_bool("idle_after", true);
        }
        w.end_object();
        w.end_object();
    }

    // Flows: one arrow per delivered message, send -> delivery.
    for m in trace.messages() {
        let Some(delivered_at) = m.delivered_at else {
            continue;
        };
        event_header(&mut w, "msg", "s", m.from.index() as u64, ts(m.sent_at));
        w.field_str("cat", "net");
        w.field_u64("id", m.msg.seq());
        w.end_object();
        event_header(&mut w, "msg", "f", m.to.index() as u64, ts(delivered_at));
        w.field_str("cat", "net");
        w.field_u64("id", m.msg.seq());
        w.field_str("bp", "e");
        w.end_object();
    }

    w.end_array();
    w.end_object();
    w.finish()
}

/// Renders `trace` as a structured JSONL event stream: a `meta` header
/// line, one line per event, one per message record, one per session
/// close. Exact rational times are preserved in `"t"` strings; `*_ms`
/// fields carry the millisecond floats.
pub fn trace_jsonl(trace: &Trace, meta: &ExportMeta) -> String {
    let mut out = String::new();
    let mut push = |w: JsonWriter| {
        out.push_str(&w.finish());
        out.push('\n');
    };

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("type", "meta");
    w.field_str("title", &meta.title);
    w.field_u64("num_processes", trace.num_processes() as u64);
    w.field_u64("events", trace.len() as u64);
    w.field_u64("messages", trace.messages().len() as u64);
    if let Some(claim) = &meta.claim {
        w.field_str("model", &claim.model().to_string());
        for (key, bound) in [
            ("c1", claim.c1()),
            ("c2", claim.c2()),
            ("d1", claim.d1()),
            ("d2", claim.d2()),
        ] {
            if let Some(value) = bound {
                w.field_str(key, &value.to_string());
            }
        }
    }
    w.end_object();
    push(w);

    for (i, e) in trace.events().iter().enumerate() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("type", "event");
        w.field_u64("seq", i as u64);
        w.field_str("t", &e.time.to_string());
        w.field_f64("t_ms", e.time.to_f64());
        w.field_u64("process", e.process.index() as u64);
        match &e.kind {
            StepKind::VarAccess { var, port } => {
                w.field_str("kind", "access");
                w.field_u64("var", var.index() as u64);
                match port {
                    Some(port) => w.field_u64("port", port.index() as u64),
                    None => {
                        w.key("port");
                        w.value_null();
                    }
                }
            }
            StepKind::MpStep {
                received,
                broadcast,
            } => {
                w.field_str("kind", "step");
                w.field_u64("received", *received as u64);
                w.field_bool("broadcast", *broadcast);
                match meta.port_of(e.process.index()) {
                    Some(port) => w.field_u64("port", port.index() as u64),
                    None => {
                        w.key("port");
                        w.value_null();
                    }
                }
            }
            StepKind::Deliver { msg } => {
                w.field_str("kind", "deliver");
                w.field_u64("msg", msg.seq());
            }
        }
        w.field_bool("idle_after", e.idle_after);
        w.end_object();
        push(w);
    }

    for m in trace.messages() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("type", "message");
        w.field_u64("msg", m.msg.seq());
        w.field_u64("from", m.from.index() as u64);
        w.field_u64("to", m.to.index() as u64);
        w.field_str("sent_at", &m.sent_at.to_string());
        match m.delivered_at {
            Some(at) => {
                w.field_str("delivered_at", &at.to_string());
                w.field_f64(
                    "delay_ms",
                    m.delay().map_or(f64::NAN, session_types::Dur::to_f64),
                );
            }
            None => {
                w.key("delivered_at");
                w.value_null();
            }
        }
        w.end_object();
        push(w);
    }

    for (k, &close) in meta.session_close_times.iter().enumerate() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("type", "session");
        w.field_u64("index", k as u64 + 1);
        w.field_str("closed_at", &close.to_string());
        w.field_f64("closed_at_ms", close.to_f64());
        w.end_object();
        push(w);
    }

    out
}

/// Renders flight-recorder worker timelines as Chrome trace-event JSON,
/// one track per worker (loadable in <https://ui.perfetto.dev>).
///
/// `tracks` pairs each track's label with its recorded spans; span
/// offsets are nanoseconds since the exploration epoch and render as
/// microsecond `ts`/`dur` values (Perfetto's native unit). Each span
/// carries its `detail` (the explorer stores the work item's starting
/// depth) as `args.depth`. Output is a deterministic function of the
/// input — byte-stable, asserted by the profile golden test.
pub fn flight_perfetto_json(title: &str, tracks: &[(String, Vec<crate::TimelineSpan>)]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.begin_array();

    w.begin_object();
    w.field_str("name", "process_name");
    w.field_str("ph", "M");
    w.field_u64("pid", PID);
    w.key("args");
    w.begin_object();
    w.field_str("name", if title.is_empty() { "analyzer" } else { title });
    w.end_object();
    w.end_object();
    for (tid, (label, _)) in tracks.iter().enumerate() {
        thread_name(&mut w, tid as u64, label);
    }

    #[allow(clippy::cast_precision_loss)]
    let micros = |ns: u64| ns as f64 / 1000.0;
    for (tid, (_, spans)) in tracks.iter().enumerate() {
        for span in spans {
            event_header(&mut w, span.name, "X", tid as u64, micros(span.start_ns));
            w.field_f64("dur", micros(span.end_ns.saturating_sub(span.start_ns)));
            w.key("args");
            w.begin_object();
            w.field_u64("depth", span.detail);
            w.end_object();
            w.end_object();
        }
    }

    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use session_sim::TraceEvent;
    use session_types::{ProcessId, VarId};

    fn mp_trace() -> (Trace, ExportMeta) {
        let mut trace = Trace::new(2);
        trace.push(TraceEvent {
            time: Time::from_int(1),
            process: ProcessId::new(0),
            kind: StepKind::MpStep {
                received: 0,
                broadcast: true,
            },
            idle_after: false,
        });
        let msg = trace.record_send(ProcessId::new(0), ProcessId::new(1), Time::from_int(1));
        let lost = trace.record_send(ProcessId::new(0), ProcessId::new(0), Time::from_int(1));
        trace.push(TraceEvent {
            time: Time::from_int(3),
            process: ProcessId::new(1),
            kind: StepKind::Deliver { msg },
            idle_after: false,
        });
        trace.record_delivery(msg, Time::from_int(3));
        let _ = lost; // never delivered: must not produce a flow
        trace.push(TraceEvent {
            time: Time::from_int(4),
            process: ProcessId::new(1),
            kind: StepKind::MpStep {
                received: 1,
                broadcast: false,
            },
            idle_after: true,
        });
        let meta = ExportMeta::new("test run")
            .with_ports(vec![Some(PortId::new(0)), Some(PortId::new(1))])
            .with_sessions(vec![Time::from_int(4)]);
        (trace, meta)
    }

    #[test]
    fn perfetto_output_is_valid_json_with_expected_tracks() {
        let (trace, meta) = mp_trace();
        let out = perfetto_json(&trace, &meta);
        json::validate(&out).expect("perfetto output must parse as JSON");
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        // One thread_name per process plus the sessions track.
        assert_eq!(out.matches("\"thread_name\"").count(), 3);
        assert!(out.contains("\"name\":\"p0 (y0)\""), "{out}");
        assert!(out.contains("\"name\":\"sessions\""), "{out}");
        // Session span, step instants, one flow pair.
        assert!(out.contains("\"name\":\"session 1\""), "{out}");
        assert!(out.contains("\"name\":\"port step\""), "{out}");
        assert_eq!(out.matches("\"ph\":\"s\"").count(), 1, "{out}");
        assert_eq!(out.matches("\"ph\":\"f\"").count(), 1, "{out}");
        // t=3 renders as ts=3000 (1 unit = 1ms = 1000 Chrome micros).
        assert!(out.contains("\"ts\":3000"), "{out}");
    }

    #[test]
    fn perfetto_sm_traces_use_step_tagging() {
        let mut trace = Trace::new(1);
        trace.push(TraceEvent {
            time: Time::from_int(2),
            process: ProcessId::new(0),
            kind: StepKind::VarAccess {
                var: VarId::new(0),
                port: Some(PortId::new(0)),
            },
            idle_after: true,
        });
        let out = perfetto_json(&trace, &ExportMeta::new("sm"));
        json::validate(&out).unwrap();
        assert!(out.contains("\"name\":\"port step\""), "{out}");
        assert!(out.contains("\"var\":\"x0\""), "{out}");
        assert!(!out.contains("\"name\":\"sessions\""), "{out}");
    }

    #[test]
    fn jsonl_lines_cover_events_messages_and_sessions() {
        let (trace, meta) = mp_trace();
        let out = trace_jsonl(&trace, &meta);
        let lines: Vec<&str> = out.lines().collect();
        // meta + 3 events + 2 messages + 1 session.
        assert_eq!(lines.len(), 7);
        for line in &lines {
            json::validate(line).expect("every JSONL line must parse");
        }
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[1].contains("\"kind\":\"step\""));
        assert!(lines[2].contains("\"kind\":\"deliver\""));
        assert!(lines[4].contains("\"delay_ms\":2"), "{}", lines[4]);
        assert!(lines[5].contains("\"delivered_at\":null"), "{}", lines[5]);
        assert!(lines[6].contains("\"type\":\"session\""));
    }

    #[test]
    fn jsonl_meta_carries_the_claim_only_when_set() {
        let (trace, meta) = mp_trace();
        let plain = trace_jsonl(&trace, &meta);
        assert!(!plain.lines().next().unwrap().contains("\"model\""));
        let claim = session_types::KnownBounds::semi_synchronous(
            session_types::Dur::from_int(1),
            session_types::Dur::from_int(3),
            session_types::Dur::from_int(2),
        )
        .expect("valid bounds");
        let claimed = trace_jsonl(&trace, &meta.clone().with_claim(claim));
        let head = claimed.lines().next().unwrap();
        json::validate(head).unwrap();
        assert!(head.contains("\"model\":\"semi-synchronous\""), "{head}");
        assert!(head.contains("\"c1\":\"1\""), "{head}");
        assert!(head.contains("\"c2\":\"3\""), "{head}");
        assert!(head.contains("\"d1\":\"0\""), "{head}");
        assert!(head.contains("\"d2\":\"2\""), "{head}");
        let free = trace_jsonl(
            &trace,
            &meta
                .clone()
                .with_claim(session_types::KnownBounds::asynchronous()),
        );
        let free_head = free.lines().next().unwrap();
        assert!(
            free_head.contains("\"model\":\"asynchronous\""),
            "{free_head}"
        );
        assert!(
            !free_head.contains("\"c1\""),
            "async knows no bounds: {free_head}"
        );
        // Claim only changes the meta line.
        assert_eq!(
            plain.lines().skip(1).collect::<Vec<_>>(),
            claimed.lines().skip(1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn exports_are_deterministic() {
        let (trace, meta) = mp_trace();
        assert_eq!(perfetto_json(&trace, &meta), perfetto_json(&trace, &meta));
        assert_eq!(trace_jsonl(&trace, &meta), trace_jsonl(&trace, &meta));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = Trace::new(2);
        let out = perfetto_json(&trace, &ExportMeta::new("empty"));
        json::validate(&out).unwrap();
        let jsonl = trace_jsonl(&trace, &ExportMeta::new("empty"));
        assert_eq!(jsonl.lines().count(), 1); // just the meta header
    }

    #[test]
    fn flight_export_gets_one_track_per_worker() {
        use crate::TimelineSpan;
        let tracks = vec![
            (
                "worker 0".to_owned(),
                vec![TimelineSpan {
                    name: "item",
                    start_ns: 1500,
                    end_ns: 4500,
                    detail: 7,
                }],
            ),
            ("worker 1".to_owned(), Vec::new()),
        ];
        let out = flight_perfetto_json("flight", &tracks);
        json::validate(&out).unwrap();
        assert_eq!(out.matches("\"name\":\"thread_name\"").count(), 2, "{out}");
        assert!(out.contains("\"name\":\"worker 0\""), "{out}");
        assert!(out.contains("\"name\":\"worker 1\""), "{out}");
        // 1500 ns renders as 1.5 Perfetto micros; the span is 3 micros.
        assert!(out.contains("\"ts\":1.5"), "{out}");
        assert!(out.contains("\"dur\":3"), "{out}");
        assert!(out.contains("\"depth\":7"), "{out}");
        assert_eq!(out, flight_perfetto_json("flight", &tracks));
    }

    #[test]
    fn rational_times_keep_exact_and_float_forms() {
        let mut trace = Trace::new(1);
        trace.push(TraceEvent {
            time: Time::from_ratio(session_types::Ratio::new(7, 2)),
            process: ProcessId::new(0),
            kind: StepKind::VarAccess {
                var: VarId::new(0),
                port: None,
            },
            idle_after: false,
        });
        let jsonl = trace_jsonl(&trace, &ExportMeta::new("exact"));
        assert!(jsonl.contains("\"t\":\"7/2\""), "{jsonl}");
        assert!(jsonl.contains("\"t_ms\":3.5"), "{jsonl}");
    }
}
