//! An event-driven uniprocessor scheduler simulator.

use rand::RngExt;
use session_sim::seeded_rng;
use session_types::{Dur, Error, Result, Time};

use crate::task::{TaskId, TaskSet};

/// The scheduling policies simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Preemptive earliest-deadline-first.
    EdfPreemptive,
    /// Preemptive rate-monotonic (fixed priority by period).
    RmPreemptive,
    /// Preemptive deadline-monotonic (fixed priority by relative deadline).
    DmPreemptive,
    /// Non-preemptive earliest-deadline-first (Jeffay et al. \[10\]).
    EdfNonPreemptive,
}

/// One finished job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The task whose job finished.
    pub task: TaskId,
    /// When the job was released.
    pub release: Time,
    /// When the job finished executing.
    pub finish: Time,
    /// Whether it finished by its absolute deadline.
    pub met_deadline: bool,
}

/// The result of one simulation.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// Completions in finish order.
    pub completions: Vec<Completion>,
    /// Deadline misses: late completions plus jobs unfinished past their
    /// deadline at the horizon.
    pub misses: usize,
    /// The simulated horizon.
    pub horizon: Time,
}

impl ScheduleOutcome {
    /// The completion times of one task, in order.
    pub fn completions_of(&self, task: TaskId) -> Vec<Time> {
        self.completions
            .iter()
            .filter(|c| c.task == task)
            .map(|c| c.finish)
            .collect()
    }

    /// Returns `true` if no job missed its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.misses == 0
    }
}

#[derive(Clone, Debug)]
struct Job {
    task: TaskId,
    release: Time,
    deadline: Time,
    remaining: Dur,
}

/// Simulates the periodic releases of `tasks` (first release at time 0)
/// under `policy` until `horizon`.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if `horizon <= 0`.
pub fn simulate(tasks: &TaskSet, policy: Policy, horizon: Time) -> Result<ScheduleOutcome> {
    let releases: Vec<Vec<Time>> = tasks
        .iter()
        .map(|(_, task)| {
            let mut times = Vec::new();
            let mut t = Time::ZERO;
            while t < horizon {
                times.push(t);
                t += task.period();
            }
            times
        })
        .collect();
    simulate_releases(tasks, &releases, policy, horizon)
}

/// Simulates explicit `releases` (one sorted list per task — the sporadic
/// case) under `policy` until `horizon`.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if `horizon <= 0` or `releases` does
/// not provide one list per task.
pub fn simulate_releases(
    tasks: &TaskSet,
    releases: &[Vec<Time>],
    policy: Policy,
    horizon: Time,
) -> Result<ScheduleOutcome> {
    if horizon <= Time::ZERO {
        return Err(Error::invalid_params("horizon must be positive"));
    }
    if releases.len() != tasks.len() {
        return Err(Error::invalid_params(
            "one release list per task is required",
        ));
    }
    // Flatten into a sorted queue of (time, task).
    let mut queue: Vec<(Time, TaskId)> = releases
        .iter()
        .enumerate()
        .flat_map(|(i, times)| times.iter().map(move |&t| (t, TaskId::new(i))))
        .collect();
    queue.sort();
    let mut next_release = 0usize;

    let mut ready: Vec<Job> = Vec::new();
    let mut completions = Vec::new();
    let mut misses = 0usize;
    let mut now = Time::ZERO;

    let rm_rank = |task: TaskId| tasks.task(task).period();
    let dm_rank = |task: TaskId| tasks.task(task).deadline();

    loop {
        // Admit all releases at or before `now`.
        while next_release < queue.len() && queue[next_release].0 <= now {
            let (release, task) = queue[next_release];
            next_release += 1;
            ready.push(Job {
                task,
                release,
                deadline: release + tasks.task(task).deadline(),
                remaining: tasks.task(task).wcet(),
            });
        }
        if ready.is_empty() {
            match queue.get(next_release) {
                Some(&(t, _)) if t < horizon => {
                    now = t;
                    continue;
                }
                _ => break,
            }
        }
        if now >= horizon {
            break;
        }
        // Pick a job. (In the non-preemptive policy the chosen job runs to
        // completion within this iteration, so no commitment state is
        // needed across iterations.)
        let pick = match policy {
            Policy::EdfPreemptive | Policy::EdfNonPreemptive => ready
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.deadline, j.task))
                .map(|(i, _)| i)
                .expect("nonempty"), // wslint: allow(ws004): the scheduler loop only selects from a non-empty ready set
            Policy::RmPreemptive => ready
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (rm_rank(j.task), j.task))
                .map(|(i, _)| i)
                .expect("nonempty"), // wslint: allow(ws004): the scheduler loop only selects from a non-empty ready set
            Policy::DmPreemptive => ready
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (dm_rank(j.task), j.task))
                .map(|(i, _)| i)
                .expect("nonempty"), // wslint: allow(ws004): the scheduler loop only selects from a non-empty ready set
        };
        // Run until completion or (if preemptive) the next release.
        let finish_at = now + ready[pick].remaining;
        let next_event = match policy {
            Policy::EdfNonPreemptive => finish_at,
            _ => match queue.get(next_release) {
                Some(&(t, _)) => finish_at.min(t),
                None => finish_at,
            },
        }
        // Nothing executes past the horizon; unfinished work is assessed
        // against its deadline below.
        .min(horizon);
        let elapsed = next_event - now;
        ready[pick].remaining -= elapsed;
        now = next_event;
        if ready[pick].remaining.is_zero() {
            let job = ready.swap_remove(pick);
            let met_deadline = now <= job.deadline;
            if !met_deadline {
                misses += 1;
            }
            completions.push(Completion {
                task: job.task,
                release: job.release,
                finish: now,
                met_deadline,
            });
        }
    }
    // Jobs unfinished past their deadline at the horizon are misses.
    misses += ready
        .iter()
        .filter(|j| j.deadline < now.max(horizon))
        .count();

    Ok(ScheduleOutcome {
        completions,
        misses,
        horizon,
    })
}

/// Generates a random admissible sporadic release pattern: the first
/// release at time 0, consecutive releases at least `min_separation` apart,
/// with `pause_percent`% of the gaps stretched by a random factor up to
/// `max_pause_factor` — the event-driven arrival pattern of the paper's
/// sporadic constraint.
///
/// Deterministic in `seed`.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if `min_separation <= 0`,
/// `horizon <= 0`, `max_pause_factor < 2` or `pause_percent > 100`.
pub fn generate_sporadic_releases(
    min_separation: Dur,
    horizon: Time,
    max_pause_factor: u32,
    pause_percent: u8,
    seed: u64,
) -> Result<Vec<Time>> {
    if !min_separation.is_positive() {
        return Err(Error::invalid_params("min_separation must be positive"));
    }
    if horizon <= Time::ZERO {
        return Err(Error::invalid_params("horizon must be positive"));
    }
    if max_pause_factor < 2 {
        return Err(Error::invalid_params("max_pause_factor must be >= 2"));
    }
    if pause_percent > 100 {
        return Err(Error::invalid_params("pause_percent must be <= 100"));
    }
    let mut rng = seeded_rng(seed);
    let mut releases = vec![Time::ZERO];
    let mut t = Time::ZERO;
    loop {
        let gap = if rng.random_range(0..100u8) < pause_percent {
            min_separation * rng.random_range(2..=max_pause_factor) as i128
        } else {
            min_separation
        };
        t += gap;
        if t >= horizon {
            break;
        }
        releases.push(t);
    }
    Ok(releases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::task::PeriodicTask;

    fn d(x: i128) -> Dur {
        Dur::from_int(x)
    }

    fn ts(tasks: &[(i128, i128)]) -> TaskSet {
        TaskSet::periodic(
            tasks
                .iter()
                .map(|&(t, c)| PeriodicTask::new(d(t), d(c)).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn edf_meets_deadlines_at_full_utilization() {
        let tasks = ts(&[(2, 1), (4, 2)]); // U = 1
        let out = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(40)).unwrap();
        assert!(out.all_deadlines_met(), "misses: {}", out.misses);
        // Task 0 completes 20 jobs in [0, 40).
        assert_eq!(out.completions_of(TaskId::new(0)).len(), 20);
    }

    #[test]
    fn rm_misses_where_edf_does_not() {
        // U = 34/35: EDF fine, RM must miss (matches the RTA prediction).
        let tasks = ts(&[(5, 2), (7, 4)]);
        assert!(!analysis::rm_schedulable(&tasks));
        let edf = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(70)).unwrap();
        assert!(edf.all_deadlines_met());
        let rm = simulate(&tasks, Policy::RmPreemptive, Time::from_int(70)).unwrap();
        assert!(rm.misses > 0, "RM should miss on this set");
    }

    #[test]
    fn rm_schedulable_sets_meet_deadlines_in_simulation() {
        let tasks = ts(&[(4, 1), (6, 2), (12, 3)]);
        assert!(analysis::rm_schedulable(&tasks));
        let out = simulate(&tasks, Policy::RmPreemptive, Time::from_int(120)).unwrap();
        assert!(out.all_deadlines_met(), "misses: {}", out.misses);
    }

    #[test]
    fn non_preemptive_edf_blocks_short_tasks() {
        // Long job blocks the short period: NP-EDF misses, matching the
        // Jeffay condition's verdict.
        let tasks = ts(&[(3, 1), (100, 50)]);
        assert!(!analysis::np_edf_schedulable(&tasks));
        let out = simulate(&tasks, Policy::EdfNonPreemptive, Time::from_int(100)).unwrap();
        assert!(out.misses > 0);
    }

    #[test]
    fn non_preemptive_edf_feasible_sets_meet_deadlines() {
        let tasks = ts(&[(5, 1), (10, 2), (20, 4)]);
        assert!(analysis::np_edf_schedulable(&tasks));
        let out = simulate(&tasks, Policy::EdfNonPreemptive, Time::from_int(100)).unwrap();
        assert!(out.all_deadlines_met(), "misses: {}", out.misses);
    }

    #[test]
    fn sporadic_releases_with_slack_meet_deadlines() {
        let tasks = ts(&[(5, 2), (7, 2)]);
        // Sporadic: releases are spaced *more* than the minimum separation.
        let releases = vec![
            vec![Time::ZERO, Time::from_int(9), Time::from_int(30)],
            vec![Time::from_int(1), Time::from_int(11)],
        ];
        let out = simulate_releases(&tasks, &releases, Policy::EdfPreemptive, Time::from_int(50))
            .unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(out.completions.len(), 5);
    }

    #[test]
    fn dm_simulation_matches_the_analysis() {
        use crate::task::PeriodicTask;
        let tasks = TaskSet::periodic(vec![
            PeriodicTask::with_deadline(d(10), d(3), d(5)).unwrap(),
            PeriodicTask::new(d(8), d(3)).unwrap(),
        ])
        .unwrap();
        let horizon = Time::from_int(2 * 40);
        let rm = simulate(&tasks, Policy::RmPreemptive, horizon).unwrap();
        assert!(rm.misses > 0, "RM must miss the constrained deadline");
        let dm = simulate(&tasks, Policy::DmPreemptive, horizon).unwrap();
        assert!(dm.all_deadlines_met(), "DM must fit: {} misses", dm.misses);
    }

    #[test]
    fn generated_sporadic_releases_respect_separation() {
        let min_sep = d(4);
        let releases = generate_sporadic_releases(min_sep, Time::from_int(500), 6, 30, 99).unwrap();
        assert_eq!(releases[0], Time::ZERO);
        let mut saw_pause = false;
        for pair in releases.windows(2) {
            let gap = pair[1] - pair[0];
            assert!(gap >= min_sep);
            saw_pause |= gap > min_sep;
        }
        assert!(saw_pause, "expected at least one stretched gap");
        assert!(*releases.last().unwrap() < Time::from_int(500));
    }

    #[test]
    fn generated_releases_drive_the_simulator() {
        let tasks = ts(&[(6, 2)]);
        let releases =
            vec![generate_sporadic_releases(d(6), Time::from_int(200), 4, 25, 5).unwrap()];
        let out = simulate_releases(
            &tasks,
            &releases,
            Policy::EdfPreemptive,
            Time::from_int(220),
        )
        .unwrap();
        // A single task with C <= min separation always meets deadlines.
        assert!(out.all_deadlines_met());
        assert_eq!(out.completions.len(), releases[0].len());
    }

    #[test]
    fn generator_validation() {
        assert!(generate_sporadic_releases(d(0), Time::from_int(10), 4, 10, 0).is_err());
        assert!(generate_sporadic_releases(d(1), Time::ZERO, 4, 10, 0).is_err());
        assert!(generate_sporadic_releases(d(1), Time::from_int(10), 1, 10, 0).is_err());
        assert!(generate_sporadic_releases(d(1), Time::from_int(10), 4, 101, 0).is_err());
    }

    #[test]
    fn validation() {
        let tasks = ts(&[(2, 1)]);
        assert!(simulate(&tasks, Policy::EdfPreemptive, Time::ZERO).is_err());
        assert!(simulate_releases(&tasks, &[], Policy::EdfPreemptive, Time::from_int(10)).is_err());
    }

    #[test]
    fn completion_times_are_exact_for_a_single_task() {
        let tasks = ts(&[(3, 1)]);
        let out = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(10)).unwrap();
        assert_eq!(
            out.completions_of(TaskId::new(0)),
            vec![
                Time::from_int(1),
                Time::from_int(4),
                Time::from_int(7),
                Time::from_int(10)
            ]
        );
    }
}
