//! The sporadic message-passing algorithm `A(sp)` (§6).

use std::collections::{BTreeMap, BTreeSet};

use session_mpm::{Envelope, MpProcess};
use session_types::{Dur, Error, ProcessId, Result};

use crate::msg::SessionMsg;

/// The paper's `A(sp)`, implemented from the §6 pseudocode.
///
/// The key inference (§6): if a message arrives at time `t` it was sent no
/// earlier than `t − d2`, and every message received after `t + (d2 − d1)`
/// was sent *after* it. A process therefore alternates two ways of learning
/// that a new session happened:
///
/// * **Condition 1**: it holds `m(j, session)` from every process `j` —
///   everyone has directly confirmed the current session count;
/// * **Condition 2**: more than `B = ⌊u/c1⌋ + 1` own steps have passed
///   since the last session update (hence more than `u = d2 − d1` real
///   time, because steps are at least `c1` apart), and since then a fresh
///   message from every process has arrived — those messages are provably
///   newer than the previous session.
///
/// Every step broadcasts `m(i, session)`. After setting `session` to
/// `s − 1` the process enters an idle state.
///
/// Running time (Theorem 6.1):
/// `min{(⌊u/c1⌋ + 3) · γ + u, d2 + γ} · (s − 1) + γ`.
#[derive(Clone, Debug)]
pub struct SporadicMpPort {
    id: ProcessId,
    s: u64,
    n: usize,
    big_b: u64,
    count: u64,
    session: u64,
    steps: u64,
    /// `msg_buf`, organized as value → senders seen with that value.
    msg_buf: BTreeMap<u64, BTreeSet<ProcessId>>,
    /// `temp_buf`: senders heard from while `count > B`.
    temp_buf: BTreeSet<ProcessId>,
    /// When true, reproduces the paper's pseudocode verbatim: the
    /// condition-1 branch does *not* clear `temp_buf` (the erratum below).
    /// Only `paper_verbatim` sets this.
    verbatim: bool,
}

impl SporadicMpPort {
    /// Creates port process `id` for the `(s, n)`-session problem under
    /// the sporadic constants `c1` and `[d1, d2]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `c1 <= 0`, `d1 < 0` or
    /// `d1 > d2`.
    pub fn new(
        id: ProcessId,
        s: u64,
        n: usize,
        c1: Dur,
        d1: Dur,
        d2: Dur,
    ) -> Result<SporadicMpPort> {
        if !c1.is_positive() {
            return Err(Error::invalid_params("A(sp) requires c1 > 0"));
        }
        if d1.is_negative() || d1 > d2 {
            return Err(Error::invalid_params("A(sp) requires 0 <= d1 <= d2"));
        }
        let u = d2 - d1;
        let big_b = u.div_floor(c1) as u64 + 1;
        Ok(SporadicMpPort {
            id,
            s,
            n,
            big_b,
            count: 0,
            session: 0,
            steps: 0,
            msg_buf: BTreeMap::new(),
            temp_buf: BTreeSet::new(),
            verbatim: false,
        })
    }

    /// Creates `A(sp)` exactly as printed in the paper's §6 pseudocode,
    /// i.e. *without* the condition-1 `temp_buf` clear that [`new`]
    /// applies (see the erratum comment in `step`). Stale freshness
    /// evidence can then certify sessions that never happened; the
    /// analyzer flags this as `SA003 stale-evidence`.
    ///
    /// # Errors
    ///
    /// Same parameter validation as [`new`].
    ///
    /// [`new`]: SporadicMpPort::new
    #[cfg(feature = "paper-verbatim")]
    pub fn paper_verbatim(
        id: ProcessId,
        s: u64,
        n: usize,
        c1: Dur,
        d1: Dur,
        d2: Dur,
    ) -> Result<SporadicMpPort> {
        let mut port = SporadicMpPort::new(id, s, n, c1, d1, d2)?;
        port.verbatim = true;
        Ok(port)
    }

    /// This process's identifier (the `i` of `m(i, V)`).
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Creates `A(sp)` with an explicitly overridden waiting constant `B`
    /// instead of the correct `⌊u/c1⌋ + 1`.
    ///
    /// This exists for the lower-bound experiments: with `B` too small the
    /// process trusts condition 2 before `u = d2 − d1` time has provably
    /// elapsed, and an adversarial delay assignment makes it certify
    /// sessions that never happened. **Never use this to solve the actual
    /// problem.**
    pub fn with_wait_override(id: ProcessId, s: u64, n: usize, big_b: u64) -> SporadicMpPort {
        SporadicMpPort {
            id,
            s,
            n,
            big_b,
            count: 0,
            session: 0,
            steps: 0,
            msg_buf: BTreeMap::new(),
            temp_buf: BTreeSet::new(),
            verbatim: false,
        }
    }

    /// The waiting constant `B = ⌊u/c1⌋ + 1`.
    pub fn big_b(&self) -> u64 {
        self.big_b
    }

    /// The current session knowledge (`session` in the pseudocode).
    pub fn session(&self) -> u64 {
        self.session
    }

    fn all_senders(&self, set: &BTreeSet<ProcessId>) -> bool {
        (0..self.n).all(|j| set.contains(&ProcessId::new(j)))
    }

    fn condition1(&self) -> bool {
        self.msg_buf
            .get(&self.session)
            .is_some_and(|senders| self.all_senders(senders))
    }
}

impl MpProcess<SessionMsg> for SporadicMpPort {
    fn step(&mut self, inbox: Vec<Envelope<SessionMsg>>) -> Option<SessionMsg> {
        if self.is_idle() {
            return None;
        }
        self.steps += 1;
        // read buf_i; msg_buf := msg_buf ∪ M
        for env in &inbox {
            self.msg_buf
                .entry(env.payload.value)
                .or_default()
                .insert(env.from);
        }
        if self.condition1() {
            self.count = 0;
            self.session += 1;
            // ERRATUM (found by property testing, documented in DESIGN.md):
            // the paper's pseudocode clears temp_buf only in the
            // condition-2 branch. Without clearing it here too, evidence
            // received *before* this session update survives into the next
            // condition-2 check, which can then certify a session that
            // never happened (reproduced by the regression test below).
            // Lemma 6.3's proof assumes temp_buf only holds messages
            // received since the last update, which is what this line
            // restores. (`paper_verbatim` disables the fix to reproduce
            // the original behavior.)
            if !self.verbatim {
                self.temp_buf.clear();
            }
        } else if self.count > self.big_b {
            // temp_buf := temp_buf ∪ M
            for env in &inbox {
                self.temp_buf.insert(env.from);
            }
            if self.all_senders(&self.temp_buf) {
                self.count = 0;
                self.session += 1;
                self.temp_buf.clear();
            }
        }
        let out = SessionMsg::new(self.session);
        self.count += 1;
        Some(out)
    }

    fn is_idle(&self) -> bool {
        // The while loop exits once session reaches s - 1; the step that
        // performed the final increment already broadcast m(i, s - 1).
        self.steps >= 1 && self.session >= self.s.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(j: usize, value: u64) -> Envelope<SessionMsg> {
        Envelope::new(ProcessId::new(j), SessionMsg::new(value))
    }

    fn port(s: u64, n: usize, c1: i128, d1: i128, d2: i128) -> SporadicMpPort {
        SporadicMpPort::new(
            ProcessId::new(0),
            s,
            n,
            Dur::from_int(c1),
            Dur::from_int(d1),
            Dur::from_int(d2),
        )
        .unwrap()
    }

    #[test]
    fn big_b_is_floor_u_over_c1_plus_1() {
        assert_eq!(port(3, 2, 2, 1, 10).big_b(), 5); // u = 9, floor(9/2)+1
        assert_eq!(port(3, 2, 1, 5, 5).big_b(), 1); // u = 0
    }

    #[test]
    fn validation() {
        assert!(
            SporadicMpPort::new(ProcessId::new(0), 2, 2, Dur::ZERO, Dur::ZERO, Dur::ONE).is_err()
        );
        assert!(SporadicMpPort::new(
            ProcessId::new(0),
            2,
            2,
            Dur::ONE,
            Dur::from_int(2),
            Dur::ONE
        )
        .is_err());
    }

    #[test]
    fn every_nonidle_step_broadcasts_current_session() {
        let mut p = port(3, 2, 1, 0, 4);
        assert_eq!(p.step(vec![]), Some(SessionMsg::new(0)));
        assert_eq!(p.step(vec![]), Some(SessionMsg::new(0)));
    }

    #[test]
    fn condition1_advances_session() {
        let mut p = port(4, 2, 1, 0, 4);
        let _ = p.step(vec![msg(0, 0)]);
        assert_eq!(p.session(), 0, "missing m(1, 0)");
        let out = p.step(vec![msg(1, 0)]);
        assert_eq!(p.session(), 1);
        assert_eq!(out, Some(SessionMsg::new(1)), "broadcasts the new value");
    }

    #[test]
    fn condition2_needs_the_wait_and_fresh_messages_from_all() {
        // u = 4, c1 = 1 => B = 5. Condition 2 requires count > 5.
        let mut p = port(3, 2, 1, 0, 4);
        // Feed only m(1, 7): wrong value for condition 1 (session = 0),
        // but a fresh sender for condition 2 once the wait elapses.
        for _ in 0..6 {
            let _ = p.step(vec![]);
        }
        // count is now 6 > B: temp_buf starts collecting.
        let _ = p.step(vec![msg(1, 7)]);
        assert_eq!(p.session(), 0, "still missing a fresh message from p0");
        let _ = p.step(vec![msg(0, 7)]);
        assert_eq!(p.session(), 1, "fresh messages from all => new session");
    }

    #[test]
    fn temp_buf_ignores_messages_before_the_wait() {
        let mut p = port(3, 2, 1, 0, 4); // B = 5
                                         // Early messages (count <= B) do not enter temp_buf.
        let _ = p.step(vec![msg(1, 7)]);
        let _ = p.step(vec![msg(0, 7)]);
        for _ in 0..5 {
            let _ = p.step(vec![]);
        }
        assert_eq!(
            p.session(),
            0,
            "messages received before count > B must not satisfy condition 2"
        );
    }

    #[test]
    fn idles_at_session_s_minus_1_after_broadcasting_it() {
        let mut p = port(2, 1, 1, 0, 2);
        // n = 1: own broadcast will satisfy condition 1 once delivered.
        let out = p.step(vec![msg(0, 0)]);
        assert_eq!(p.session(), 1);
        assert_eq!(out, Some(SessionMsg::new(1)), "final value is broadcast");
        assert!(p.is_idle());
        assert_eq!(p.step(vec![]), None, "idle steps are silent");
    }

    #[test]
    fn s_equals_one_takes_one_step_then_idles() {
        let mut p = port(1, 3, 1, 0, 4);
        assert!(!p.is_idle());
        let out = p.step(vec![]);
        assert_eq!(out, Some(SessionMsg::new(0)));
        assert!(p.is_idle());
    }

    /// Regression test for the pseudocode erratum: stale `temp_buf`
    /// entries gathered before a condition-1 session update must not count
    /// toward a later condition-2 update.
    ///
    /// Scenario (distilled from a property-test counterexample with
    /// `d1 = d2 = 0`, `B = 1`): the process accumulates fresh-looking
    /// messages from `p1` while waiting, then condition 1 fires; without
    /// clearing `temp_buf`, two steps later a *single* message from `p0`
    /// would complete the stale set and certify a phantom session.
    #[test]
    fn condition1_clears_stale_freshness_evidence() {
        let mut p = port(5, 2, 1, 5, 5); // u = 0 => B = 1
                                         // Build up temp_buf while count > B (condition 1 blocked: no
                                         // m(0, 0) yet).
        let _ = p.step(vec![]);
        let _ = p.step(vec![]);
        let _ = p.step(vec![msg(1, 7)]); // count > B: p1 enters temp_buf
        assert_eq!(p.session(), 0);
        // Condition 1 fires now.
        let _ = p.step(vec![msg(0, 0), msg(1, 0)]);
        assert_eq!(p.session(), 1);
        // Two silent steps bring count > B again; a lone fresh message
        // from p0 must NOT complete the (stale) set {p0, p1}.
        let _ = p.step(vec![]);
        let _ = p.step(vec![]);
        let _ = p.step(vec![msg(0, 7)]);
        assert_eq!(
            p.session(),
            1,
            "stale p1 evidence from before the update must not certify a session"
        );
        // Genuinely fresh messages from both processes do.
        let _ = p.step(vec![msg(1, 7)]);
        assert_eq!(p.session(), 2);
    }

    #[test]
    fn count_resets_on_session_update() {
        let mut p = port(5, 1, 1, 0, 3); // B = 4
                                         // n = 1: every step with own message advances via condition 1.
        let _ = p.step(vec![msg(0, 0)]);
        assert_eq!(p.session(), 1);
        // count was reset; condition 2 can't fire for a while.
        for _ in 0..3 {
            let _ = p.step(vec![]);
        }
        assert_eq!(p.session(), 1);
    }
}
