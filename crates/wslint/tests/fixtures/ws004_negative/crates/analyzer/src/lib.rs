//! Negative: the analyzer is an offline one-shot tool — out of the
//! panic-path scope, so a bare unwrap is not a finding here.

pub fn offline() {
    let v: Option<u32> = Some(1);
    let _ = v.unwrap();
}
