//! Shared-memory substrate for the reproduction of *"The Impact of Time on
//! the Session Problem"* (Rhee & Welch, PODC 1992).
//!
//! This crate implements the paper's shared-memory model (§2.1.1):
//!
//! * processes communicate **only** through shared variables;
//! * each step atomically reads and writes a *single* variable
//!   (read-modify-write, no bound on variable size);
//! * at most `b` distinct processes may ever access one variable — enforced
//!   dynamically by [`SharedMemory`], which reports a
//!   [`session_types::Error::BBoundViolation`] on the first offending access;
//! * broadcasting therefore requires relaying values through a **tree
//!   network** of processes and variables (§3), implemented by
//!   [`TreeSpec`]/[`RelayProcess`] over the [`Knowledge`] join-semilattice,
//!   with `O(log_b n)`-depth propagation.
//!
//! Algorithms implement [`SmProcess`]; the [`SmEngine`] executes them under a
//! [`session_sim::StepSchedule`], producing a [`session_sim::Trace`] that the
//! verifiers in `session-core` count sessions and check admissibility on.
//!
//! # Examples
//!
//! A two-process system sharing a counter variable:
//!
//! ```
//! use session_sim::{FixedPeriods, RunLimits};
//! use session_smm::{SmEngine, SmProcess};
//! use session_types::{Dur, ProcessId, VarId};
//!
//! #[derive(Debug)]
//! struct Incrementer {
//!     var: VarId,
//!     steps_left: u32,
//! }
//!
//! impl SmProcess<u64> for Incrementer {
//!     fn target(&self) -> VarId {
//!         self.var
//!     }
//!     fn step(&mut self, value: &u64) -> u64 {
//!         self.steps_left = self.steps_left.saturating_sub(1);
//!         value + 1
//!     }
//!     fn is_idle(&self) -> bool {
//!         self.steps_left == 0
//!     }
//! }
//!
//! # fn main() -> Result<(), session_types::Error> {
//! let procs: Vec<Box<dyn SmProcess<u64>>> = vec![
//!     Box::new(Incrementer { var: VarId::new(0), steps_left: 3 }),
//!     Box::new(Incrementer { var: VarId::new(0), steps_left: 2 }),
//! ];
//! let mut engine = SmEngine::new(vec![0u64], procs, 2, Vec::new())?;
//! // Terminate when *all* processes are idle (no ports registered).
//! let mut sched = FixedPeriods::uniform(2, Dur::from_int(1))?;
//! let outcome = engine.run(&mut sched, session_sim::RunLimits::default())?;
//! assert!(outcome.terminated);
//! assert_eq!(engine.memory().value(VarId::new(0)), &5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod lattice;
mod memory;
mod process;
mod tree;

pub use engine::{GlobalState, PortBinding, SmEngine};
pub use lattice::{JoinSemiLattice, Knowledge};
pub use memory::SharedMemory;
pub use process::SmProcess;
pub use tree::{RelayProcess, TreeSpec};
