//! Command-line front end: run any session-problem configuration and print
//! the verified report, or run the static analyzer over the algorithm
//! registry. See `session_problem::cli::CliConfig::USAGE` and
//! `session_problem::analyze::AnalyzeConfig::USAGE`.

use session_problem::analyze::AnalyzeConfig;
use session_problem::cli::CliConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "analyze") {
        match AnalyzeConfig::parse(&args[1..]) {
            Ok(config) => {
                let (report, denied) = config.execute();
                print!("{report}");
                if denied {
                    std::process::exit(1);
                }
            }
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(2);
            }
        }
        return;
    }
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{}", CliConfig::USAGE);
        println!("\nsubcommands:\n  analyze   exhaustive small-scope model checking (see `session-cli analyze --list`)");
        return;
    }
    match CliConfig::parse(&args).and_then(|config| config.execute()) {
        Ok(report) => print!("{report}"),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    }
}
