//! Multi-core exploration: a work-sharing frontier explorer whose
//! findings are bit-identical to the serial DFS in [`crate::explore`].
//!
//! # Architecture (DESIGN.md §13)
//!
//! Exploration runs in two phases:
//!
//! * **Phase A — parallel code discovery.** `threads` workers drain a
//!   shared deque of work items (a subtree root: machine × counter ×
//!   depth × ancestor-key set). Each worker runs the same budget-aware
//!   memoized DFS as the serial explorer over its item, against a
//!   lock-striped memo shared by all workers, and records only the *set
//!   of lint codes* it finds — no witness paths. When the pool runs low,
//!   a worker *donates* children of its current state instead of
//!   recursing into all of them.
//! * **Phase B — serial witness re-derivation.** The union of the codes
//!   is handed to [`crate::explore::explore_witnesses`]: the serial DFS
//!   re-runs in its canonical order and stops as soon as every code has
//!   a witness. The reported violations are therefore the serial
//!   explorer's first witnesses — same codes, same roots, same paths —
//!   independent of how Phase A's work was interleaved. Clean targets
//!   (no codes) skip Phase B entirely, so the expensive case pays
//!   nothing for determinism.
//!
//! # Soundness under concurrency
//!
//! The budget-aware memo's invariant — *an entry `(key → budget)` is
//! only readable after every lint reachable from `key` within `budget`
//! has been recorded* — survives parallelism because entries are written
//! strictly **after** the writing worker finished the subtree, and any
//! dfs frame with a donated descendant skips its memo write entirely
//! (the donated child's promise is not yet fulfilled; writing would let
//! another worker skip a region whose codes nobody has recorded yet,
//! and promise cycles between such entries could leave states forever
//! unexplored). Two workers may race into the same state and both
//! explore it — duplicated work, never a missed verdict; stripe locks
//! merge their budgets with `max`.
//!
//! The POR cycle proviso is thread-local by construction: ample pruning
//! decisions only ever depend on the worker's own DFS stack, and a
//! *donation state expands its full choice menu*, so no pruning decision
//! ever spans two workers' stacks. Donated items carry their ancestors'
//! key set, keeping lasso detection (`SA005`) exact across the split.

use std::collections::{BTreeSet, VecDeque};
use std::time::Instant;

// Under `--cfg loom` every primitive routes through the loom facade, so
// the `loom_tests` module can model-check the memo/pool machinery with
// the same types the production build uses.
#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::{Arc, Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::{Arc, Condvar, Mutex};

use rustc_hash::{FxHashMap, FxHashSet};
use session_obs::Recorder;

use crate::diag::LintCode;
use crate::explore::{
    check_step, explore_witnesses, state_key, AnyMachine, Exploration, ExploreOpts, ReductionStats,
    SessionCounter, MEMO_COMPLETE,
};
use crate::por;

/// Memo stripes. Power of two; the stripe index is the key's top bits
/// (FxHash mixes into the high bits), so stripe pressure stays uniform.
const STRIPES: usize = 64;

/// Subtrees with no more remaining budget than this are never donated —
/// the pool round-trip costs more than just walking them locally.
const DONATE_MIN_BUDGET: usize = 4;

/// One unexplored subtree in the shared pool.
struct WorkItem {
    machine: AnyMachine,
    counter: SessionCounter,
    /// Events between the root and this state (= consumed depth budget).
    depth: usize,
    /// Memo keys of every ancestor state on the donating worker's path —
    /// revisiting one of these is a lasso exactly as it would be on a
    /// single stack.
    prefix: Arc<FxHashSet<u64>>,
}

/// The shared work pool: a deque of donated subtrees plus the number of
/// workers currently processing an item. Workers block while the deque is
/// empty but peers are still busy (they may donate); everyone exits when
/// the deque is empty and nobody is busy.
struct Pool {
    state: Mutex<PoolState>,
    available: Condvar,
    /// Lock-free length approximation for the donation heuristic.
    approx_len: AtomicUsize,
}

struct PoolState {
    queue: VecDeque<WorkItem>,
    busy: usize,
}

impl Pool {
    fn new(seeds: Vec<WorkItem>) -> Pool {
        let approx = seeds.len();
        Pool {
            state: Mutex::new(PoolState {
                queue: seeds.into(),
                busy: 0,
            }),
            available: Condvar::new(),
            approx_len: AtomicUsize::new(approx),
        }
    }

    /// Whether workers are likely to starve soon — the donation trigger.
    fn is_starving(&self, threads: usize) -> bool {
        self.approx_len.load(Ordering::Relaxed) < threads
    }

    fn push(&self, item: WorkItem) {
        let mut state = self.state.lock().expect("pool lock");
        state.queue.push_back(item);
        self.approx_len.fetch_add(1, Ordering::Relaxed);
        self.available.notify_one();
    }

    /// Takes the next item (marking this worker busy), or `None` when the
    /// exploration is globally finished.
    fn pop(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().expect("pool lock");
        loop {
            if let Some(item) = state.queue.pop_front() {
                state.busy += 1;
                self.approx_len.fetch_sub(1, Ordering::Relaxed);
                return Some(item);
            }
            if state.busy == 0 {
                // Termination: wake every parked peer so they observe it.
                self.available.notify_all();
                return None;
            }
            state = self.available.wait(state).expect("pool lock");
        }
    }

    /// Marks the current item finished (counterpart of [`Pool::pop`]).
    fn finish(&self) {
        let mut state = self.state.lock().expect("pool lock");
        state.busy -= 1;
        if state.busy == 0 && state.queue.is_empty() {
            self.available.notify_all();
        }
    }
}

/// The lock-striped visited/memo table, same budget semantics as the
/// serial explorer's map ([`MEMO_COMPLETE`] = fully explored).
struct ShardedMemo {
    stripes: Vec<Mutex<FxHashMap<u64, usize>>>,
}

impl ShardedMemo {
    fn new() -> ShardedMemo {
        ShardedMemo {
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    fn stripe(&self, key: u64) -> &Mutex<FxHashMap<u64, usize>> {
        &self.stripes[(key >> 58) as usize & (STRIPES - 1)]
    }

    fn get(&self, key: u64) -> Option<usize> {
        self.stripe(key)
            .lock()
            .expect("memo stripe")
            .get(&key)
            .copied()
    }

    /// Merges `budget` in with `max` — concurrent writers keep the most
    /// complete exploration either of them performed.
    fn merge(&self, key: u64, budget: usize) {
        let mut stripe = self.stripe(key).lock().expect("memo stripe");
        let entry = stripe.entry(key).or_insert(budget);
        *entry = (*entry).max(budget);
    }

    fn len(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("memo stripe").len() as u64)
            .sum()
    }
}

/// What one worker's dfs frame reports upward (the serial
/// `SubtreeOutcome` plus donation tracking).
#[derive(Clone, Copy)]
struct Outcome {
    complete: bool,
    closed_cycle: bool,
    /// A descendant of this frame was donated to the pool: its subtree's
    /// completion is someone else's promise, so no frame below the
    /// donation point may write a memo entry.
    donated: bool,
}

/// Per-worker exploration state and counters (merged after the join).
struct Worker<'a> {
    pool: &'a Pool,
    memo: &'a ShardedMemo,
    threads: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    /// Ancestor keys inherited from the donating worker (current item).
    prefix: Arc<FxHashSet<u64>>,
    /// Keys on this worker's own DFS stack.
    on_path: FxHashSet<u64>,
    codes: BTreeSet<LintCode>,
    states: u64,
    pruned: u64,
    memo_hits: u64,
    memo_misses: u64,
    depth_hits: u64,
}

impl Worker<'_> {
    fn run(&mut self) {
        while let Some(item) = self.pool.pop() {
            self.prefix = Arc::clone(&item.prefix);
            self.on_path.clear();
            let _ = self.dfs(item.machine, &item.counter, item.depth);
            self.pool.finish();
        }
    }

    fn dfs(&mut self, machine: AnyMachine, counter: &SessionCounter, depth: usize) -> Outcome {
        let done = Outcome {
            complete: true,
            closed_cycle: false,
            donated: false,
        };
        if machine.is_quiescent() {
            if counter.sessions() < self.s {
                self.codes.insert(LintCode::SessionDeficit);
            }
            return done;
        }
        let key = state_key(&machine, counter, self.opts.symmetry);
        if self.on_path.contains(&key) || self.prefix.contains(&key) {
            self.codes.insert(LintCode::NonTermination);
            return Outcome {
                complete: true,
                closed_cycle: true,
                donated: false,
            };
        }
        let remaining = self.max_depth.saturating_sub(depth);
        if let Some(budget) = self.memo.get(key) {
            if budget >= remaining {
                self.memo_hits += 1;
                if budget == MEMO_COMPLETE {
                    return done;
                }
                self.depth_hits += 1;
                return Outcome {
                    complete: false,
                    closed_cycle: false,
                    donated: false,
                };
            }
        }
        self.memo_misses += 1;
        if depth >= self.max_depth {
            self.depth_hits += 1;
            return Outcome {
                complete: false,
                closed_cycle: false,
                donated: false,
            };
        }
        self.states += 1;
        self.on_path.insert(key);
        let (complete, donated) = self.expand(&machine, counter, depth);
        self.on_path.remove(&key);
        if !donated {
            self.memo
                .merge(key, if complete { MEMO_COMPLETE } else { remaining });
        }
        Outcome {
            complete: complete && !donated,
            closed_cycle: false,
            donated,
        }
    }

    /// One successor edge: apply, advance the counter (lazily — only port
    /// steps touch it), fire the step lints, recurse.
    fn explore_choice(
        &mut self,
        machine: &AnyMachine,
        counter: &SessionCounter,
        choice: usize,
        depth: usize,
    ) -> Outcome {
        let (next, next_counter) = match make_child(machine, counter, choice) {
            Child::Pruned(code) => {
                self.codes.insert(code);
                return Outcome {
                    complete: true,
                    closed_cycle: false,
                    donated: false,
                };
            }
            Child::Open(next, next_counter) => (next, next_counter),
        };
        let next_counter = next_counter.as_ref().unwrap_or(counter);
        self.dfs(next, next_counter, depth + 1)
    }

    /// Expands a state: either donates children to the pool (full menu,
    /// no memo write anywhere below) or runs the serial ample/proviso
    /// expansion locally. Returns `(complete, donated)`.
    fn expand(
        &mut self,
        machine: &AnyMachine,
        counter: &SessionCounter,
        depth: usize,
    ) -> (bool, bool) {
        let choices = machine.choice_count();
        debug_assert!(choices > 0, "non-quiescent machine must have events");
        let remaining = self.max_depth - depth;
        if choices > 1 && remaining > DONATE_MIN_BUDGET && self.pool.is_starving(self.threads) {
            return (self.donate(machine, counter, choices, depth), true);
        }
        let ample = if self.opts.por {
            por::select_ample(machine, counter)
        } else {
            None
        };
        let Some(ample) = ample else {
            let mut complete = true;
            let mut donated = false;
            for choice in 0..choices {
                let outcome = self.explore_choice(machine, counter, choice, depth);
                complete &= outcome.complete;
                donated |= outcome.donated;
            }
            return (complete, donated);
        };
        debug_assert!(ample.end <= choices && !ample.is_empty());
        let mut complete = true;
        let mut donated = false;
        let mut closed_cycle = false;
        for choice in ample.start..ample.end {
            let outcome = self.explore_choice(machine, counter, choice, depth);
            complete &= outcome.complete;
            closed_cycle |= outcome.closed_cycle;
            donated |= outcome.donated;
        }
        if closed_cycle {
            // Cycle proviso, exactly as in the serial explorer: the cycle
            // closed on this worker's own stack (or its inherited prefix),
            // so expand the rest of the menu too.
            for choice in (0..ample.start).chain(ample.end..choices) {
                let outcome = self.explore_choice(machine, counter, choice, depth);
                complete &= outcome.complete;
                donated |= outcome.donated;
            }
        } else {
            self.pruned += (choices - ample.len()) as u64;
        }
        (complete, donated)
    }

    /// Donation: expand the *full* menu (so no POR decision spans the
    /// split), keep the first open child for this worker and push the
    /// rest. Returns local completeness (donated children excluded — the
    /// caller's `donated` flag already suppresses every affected memo
    /// write).
    fn donate(
        &mut self,
        machine: &AnyMachine,
        counter: &SessionCounter,
        choices: usize,
        depth: usize,
    ) -> bool {
        let mut prefix: FxHashSet<u64> = (*self.prefix).clone();
        prefix.extend(self.on_path.iter().copied());
        let prefix = Arc::new(prefix);
        let mut kept: Option<(AnyMachine, Option<SessionCounter>)> = None;
        for choice in 0..choices {
            match make_child(machine, counter, choice) {
                Child::Pruned(code) => {
                    self.codes.insert(code);
                }
                Child::Open(next, next_counter) => {
                    if kept.is_none() {
                        kept = Some((next, next_counter));
                    } else {
                        self.pool.push(WorkItem {
                            machine: next,
                            counter: next_counter.unwrap_or_else(|| counter.clone()),
                            depth: depth + 1,
                            prefix: Arc::clone(&prefix),
                        });
                    }
                }
            }
        }
        let Some((next, next_counter)) = kept else {
            // Every edge fired a step lint: the subtree is locally done.
            return true;
        };
        let next_counter = next_counter.as_ref().unwrap_or(counter);
        self.dfs(next, next_counter, depth + 1).complete
    }
}

/// A successor edge's result: pruned at a step-level lint, or an open
/// child state (with its advanced counter when the step was visible to
/// the session counter).
enum Child {
    Pruned(LintCode),
    Open(AnyMachine, Option<SessionCounter>),
}

fn make_child(machine: &AnyMachine, counter: &SessionCounter, choice: usize) -> Child {
    let mut next = machine.clone();
    let info = next.apply(choice, None);
    let next_counter = info.port.is_some().then(|| {
        let mut cloned = counter.clone();
        cloned.observe(&info);
        cloned
    });
    let effective = next_counter.as_ref().unwrap_or(counter);
    match check_step(&info, &next, effective) {
        Some((code, _message)) => Child::Pruned(code),
        None => Child::Open(next, next_counter),
    }
}

/// The work-sharing parallel explorer behind `ExploreOpts { threads > 1 }`
/// — see the module docs for the phase split and the determinism
/// argument. Verdicts (codes, witness roots, witness paths, truncation)
/// are bit-identical to [`crate::explore::explore_recorded_opts`] at
/// `threads = 1`; the `states` count may differ (workers racing into the
/// same state both count it, and the serial witness pass adds none).
pub(crate) fn explore_parallel(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    recorder: &mut dyn Recorder,
) -> Exploration {
    debug_assert!(opts.threads > 1);
    let started = Instant::now();
    let empty_prefix = Arc::new(FxHashSet::default());
    let seeds: Vec<WorkItem> = roots
        .iter()
        .map(|root| WorkItem {
            machine: root.clone(),
            counter: SessionCounter::new(n, s),
            depth: 0,
            prefix: Arc::clone(&empty_prefix),
        })
        .collect();
    let pool = Pool::new(seeds);
    let memo = ShardedMemo::new();

    let mut states = 0u64;
    let mut pruned = 0u64;
    let mut memo_hits = 0u64;
    let mut memo_misses = 0u64;
    let mut depth_hits = 0u64;
    let mut codes: BTreeSet<LintCode> = BTreeSet::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.threads)
            .map(|_| {
                let pool = &pool;
                let memo = &memo;
                let empty_prefix = Arc::clone(&empty_prefix);
                scope.spawn(move || {
                    let mut worker = Worker {
                        pool,
                        memo,
                        threads: opts.threads,
                        s,
                        max_depth,
                        opts,
                        prefix: empty_prefix,
                        on_path: FxHashSet::default(),
                        codes: BTreeSet::new(),
                        states: 0,
                        pruned: 0,
                        memo_hits: 0,
                        memo_misses: 0,
                        depth_hits: 0,
                    };
                    worker.run();
                    (
                        worker.states,
                        worker.pruned,
                        worker.memo_hits,
                        worker.memo_misses,
                        worker.depth_hits,
                        worker.codes,
                    )
                })
            })
            .collect();
        for handle in handles {
            let (w_states, w_pruned, w_hits, w_misses, w_depth, w_codes) =
                handle.join().expect("exploration worker panicked");
            states += w_states;
            pruned += w_pruned;
            memo_hits += w_hits;
            memo_misses += w_misses;
            depth_hits += w_depth;
            codes.extend(w_codes);
        }
    });

    // Phase B: canonical witnesses, serially — free when nothing fired.
    let violations = explore_witnesses(roots, n, s, max_depth, opts, &codes);
    debug_assert_eq!(
        violations.len(),
        codes.len(),
        "witness re-derivation must find every code Phase A found"
    );

    if recorder.is_enabled() {
        recorder.counter("explore.memo_hits", memo_hits);
        recorder.counter("explore.memo_misses", memo_misses);
        recorder.counter("explore.pruned_choices", pruned);
        recorder.gauge("explore.states", states as f64);
        recorder.gauge("explore.memo_entries", memo.len() as f64);
        recorder.gauge("explore.threads", opts.threads as f64);
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            recorder.gauge("explore.states_per_sec", states as f64 / elapsed);
        }
    }
    Exploration {
        states,
        violations,
        truncated: depth_hits > 0,
        depth_hits,
        stats: ReductionStats { pruned, memo_hits },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_machine() -> AnyMachine {
        use crate::machine::{GapMode, MpAlgo, MpMachine};
        use session_core::algorithms::SyncMpPort;
        use session_types::{Dur, Time};
        let algos = vec![MpAlgo::Sync(SyncMpPort::new(1))];
        AnyMachine::Mp(MpMachine::new(
            algos,
            GapMode::PerStep(vec![Dur::from_int(1)]),
            vec![Dur::from_int(1)],
            vec![Time::ZERO + Dur::from_int(1)],
        ))
    }

    #[test]
    fn pool_pops_in_fifo_order_and_terminates() {
        let machine = tiny_machine();
        let seeds = vec![
            WorkItem {
                machine: machine.clone(),
                counter: SessionCounter::new(1, 1),
                depth: 0,
                prefix: Arc::new(FxHashSet::default()),
            },
            WorkItem {
                machine,
                counter: SessionCounter::new(1, 1),
                depth: 7,
                prefix: Arc::new(FxHashSet::default()),
            },
        ];
        let pool = Pool::new(seeds);
        let first = pool.pop().expect("seeded");
        assert_eq!(first.depth, 0);
        pool.finish();
        let second = pool.pop().expect("seeded");
        assert_eq!(second.depth, 7);
        pool.finish();
        assert!(pool.pop().is_none(), "empty + idle pool terminates");
    }

    #[test]
    fn sharded_memo_merges_budgets_with_max() {
        let memo = ShardedMemo::new();
        memo.merge(42, 3);
        memo.merge(42, 10);
        memo.merge(42, 5);
        assert_eq!(memo.get(42), Some(10));
        memo.merge(42, MEMO_COMPLETE);
        assert_eq!(memo.get(42), Some(MEMO_COMPLETE));
        assert_eq!(memo.get(43), None);
        assert_eq!(memo.len(), 1);
    }
}

/// Concurrency tests for [`ShardedMemo`], built only under
/// `RUSTFLAGS="--cfg loom"` (the CI `loom` job). The facade's `model`
/// re-runs each closure across many real-thread schedules; with the
/// registry loom crate in place the same tests become exhaustive.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;

    /// Keys that land on distinct stripes (the stripe index is the top
    /// six bits) plus colliding keys within one stripe.
    fn spread_keys() -> Vec<u64> {
        (0..8u64).map(|i| (i << 58) | i).collect()
    }

    #[test]
    fn concurrent_merges_lose_no_entries_and_keep_the_max_budget() {
        loom::model(|| {
            let memo = Arc::new(ShardedMemo::new());
            let keys = spread_keys();
            let handles: Vec<_> = (0..3usize)
                .map(|t| {
                    let memo = Arc::clone(&memo);
                    let keys = keys.clone();
                    loom::thread::spawn(move || {
                        for (i, &key) in keys.iter().enumerate() {
                            memo.merge(key, t * 10 + i);
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("writer");
            }
            // No entry is lost and every surviving budget is the max
            // over the three writers (t = 2), never a torn intermediate.
            assert_eq!(memo.len(), keys.len() as u64);
            for (i, &key) in keys.iter().enumerate() {
                assert_eq!(memo.get(key), Some(20 + i));
            }
        });
    }

    #[test]
    fn budgets_observed_by_a_racing_reader_are_monotonic() {
        loom::model(|| {
            let memo = Arc::new(ShardedMemo::new());
            let key = 0xdead_beef;
            let writer = {
                let memo = Arc::clone(&memo);
                loom::thread::spawn(move || {
                    // Out-of-order writes: merge must still only raise.
                    for budget in [1, 5, 3, MEMO_COMPLETE, 2] {
                        memo.merge(key, budget);
                    }
                })
            };
            let mut last = 0;
            for _ in 0..8 {
                if let Some(budget) = memo.get(key) {
                    assert!(budget >= last, "budget regressed: {budget} < {last}");
                    last = budget;
                }
            }
            writer.join().expect("writer");
            assert_eq!(memo.get(key), Some(MEMO_COMPLETE));
        });
    }
}
