//! One measurement per Table 1 row.
//!
//! Upper-bound rows (`U`): build the paper's algorithm, drive it with a
//! worst-case-oriented admissible schedule, measure the simulated running
//! time from the trace (sessions recounted by the independent verifier) and
//! compare against the closed-form bound. Our substrate constants differ
//! from the paper's `O(·)` terms only where documented (`+slack` columns).
//!
//! Lower-bound rows (`L`): run the corresponding executable adversary from
//! `session-adversary` — the naive witness that beats the bound is shown to
//! produce `< s` sessions while the paper's algorithm survives the same
//! adversary.

use session_adversary::naive::{
    naive_sm_system, periodic_mp_demo, periodic_sm_demo, semisync_sm_step_counting_demo,
    sporadic_mp_demo, NaiveMpPort,
};
use session_adversary::reorder::afl_reorder_attack;
use session_adversary::rescale::{k_period, rescaling_attack};
use session_adversary::retime::retiming_attack;
use std::time::Instant;

use session_core::report::{run_mp_recorded, run_sm_recorded, MpConfig, RunReport, SmConfig};
use session_core::{bounds, system::port_of, verify::count_sessions};
use session_mpm::{MpEngine, MpProcess};
use session_obs::InMemoryRecorder;
use session_sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_smm::TreeSpec;
use session_types::{
    Dur, Error, KnownBounds, PortId, ProcessId, Result, SessionSpec, Time, TimingModel,
};

/// Which side of the bound a row reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundKind {
    /// A lower-bound (adversary) experiment.
    Lower,
    /// An upper-bound (running time) experiment.
    Upper,
}

impl BoundKind {
    /// Table label, matching the paper's `L`/`U`.
    pub fn label(self) -> &'static str {
        match self {
            BoundKind::Lower => "L",
            BoundKind::Upper => "U",
        }
    }
}

/// One measured Table 1 cell.
#[derive(Clone, Debug)]
pub struct RowMeasurement {
    /// Timing model name.
    pub model: &'static str,
    /// Communication substrate name.
    pub comm: &'static str,
    /// Lower or upper bound.
    pub kind: BoundKind,
    /// The instance parameters.
    pub params: String,
    /// The paper's bound, evaluated.
    pub paper_bound: String,
    /// What the experiment measured.
    pub measured: String,
    /// Whether the measurement is consistent with the bound.
    pub ok: bool,
    /// The paper bound as a number (in [`RowMeasurement::unit`]), when the
    /// row's bound is a single value.
    pub bound_value: Option<f64>,
    /// The measurement as a number (in [`RowMeasurement::unit`]), when the
    /// row measures a time or round count (adversary rows measure session
    /// deficits instead).
    pub measured_value: Option<f64>,
    /// The unit of the numeric fields: `"ms"` (simulated time) or
    /// `"rounds"`.
    pub unit: &'static str,
    /// Host wall-clock seconds spent producing this row.
    pub wall_clock_secs: f64,
    /// Engine counters recorded during the measured run (upper-bound rows;
    /// adversary rows drive the engines through their own harnesses and
    /// record none).
    pub counters: Vec<(&'static str, u64)>,
}

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

fn rt(report: &RunReport) -> Dur {
    report.running_time.map_or(Dur::ZERO, |t| t - Time::ZERO)
}

/// Synchronous shared memory, upper (= lower) bound `s · c2`.
pub fn sync_sm(s: u64, n: usize, c2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let kb = KnownBounds::synchronous(c2, d(1))?;
    let tree = TreeSpec::build(n, 2);
    let mut sched = FixedPeriods::uniform(n + tree.num_relays(), c2)?;
    let mut rec = InMemoryRecorder::new();
    let report = run_sm_recorded(
        SmConfig {
            model: TimingModel::Synchronous,
            spec,
            bounds: kb,
        },
        &mut sched,
        RunLimits::default(),
        &mut rec,
    )?;
    let bound = bounds::sync_time(s, c2);
    Ok(RowMeasurement {
        model: "synchronous",
        comm: "SM",
        kind: BoundKind::Upper,
        params: format!("s={s}, n={n}, c2={c2}"),
        paper_bound: format!("s·c2 = {bound}"),
        measured: format!("{} ({} sessions)", rt(&report), report.sessions),
        ok: report.solves(&spec) && rt(&report) == bound,
        bound_value: Some(bound.to_f64()),
        measured_value: Some(rt(&report).to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: rec.into_snapshot().counters().collect(),
    })
}

/// Synchronous message passing, upper (= lower) bound `s · c2`.
pub fn sync_mp(s: u64, n: usize, c2: Dur, d2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let kb = KnownBounds::synchronous(c2, d2)?;
    let mut sched = FixedPeriods::uniform(n, c2)?;
    let mut delays = ConstantDelay::new(d2)?;
    let mut rec = InMemoryRecorder::new();
    let report = run_mp_recorded(
        MpConfig {
            model: TimingModel::Synchronous,
            spec,
            bounds: kb,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
        &mut rec,
    )?;
    let bound = bounds::sync_time(s, c2);
    Ok(RowMeasurement {
        model: "synchronous",
        comm: "MP",
        kind: BoundKind::Upper,
        params: format!("s={s}, n={n}, c2={c2}, d2={d2}"),
        paper_bound: format!("s·c2 = {bound}"),
        measured: format!("{} ({} sessions)", rt(&report), report.sessions),
        ok: report.solves(&spec) && rt(&report) == bound,
        bound_value: Some(bound.to_f64()),
        measured_value: Some(rt(&report).to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: rec.into_snapshot().counters().collect(),
    })
}

/// Periodic shared memory, upper bound `s·c_max + O(log_b n)·c_max`.
pub fn periodic_sm_upper(s: u64, n: usize, b: usize, c_max: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, b)?;
    let kb = KnownBounds::periodic(d(1))?;
    let tree = TreeSpec::build(n, b);
    // Worst case: every process at the largest period.
    let mut sched = FixedPeriods::uniform(n + tree.num_relays(), c_max)?;
    let mut rec = InMemoryRecorder::new();
    let report = run_sm_recorded(
        SmConfig {
            model: TimingModel::Periodic,
            spec,
            bounds: kb,
        },
        &mut sched,
        RunLimits::default(),
        &mut rec,
    )?;
    let bound = bounds::periodic_sm_upper(&spec, c_max, tree.flood_rounds_bound());
    let measured = rt(&report);
    Ok(RowMeasurement {
        model: "periodic",
        comm: "SM",
        kind: BoundKind::Upper,
        params: format!("s={s}, n={n}, b={b}, c_max={c_max}"),
        paper_bound: format!(
            "s·c_max + flood·c_max = {bound} (flood = {} rounds)",
            tree.flood_rounds_bound()
        ),
        measured: format!("{measured} ({} sessions)", report.sessions),
        ok: report.solves(&spec) && measured <= bound + c_max * 2,
        bound_value: Some(bound.to_f64()),
        measured_value: Some(measured.to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: rec.into_snapshot().counters().collect(),
    })
}

/// Periodic shared memory, lower bound
/// `max(s·c_max, ⌊log_{2b−1}(2n−1)⌋·c_min)`: slowed-process adversary.
pub fn periodic_sm_lower(s: u64, n: usize, b: usize) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, b)?;
    let demo = periodic_sm_demo(&spec, 64, RunLimits::default())?;
    let bound = bounds::periodic_sm_lower(&spec, d(1), d(64));
    Ok(RowMeasurement {
        model: "periodic",
        comm: "SM",
        kind: BoundKind::Lower,
        params: format!("s={s}, n={n}, b={b}, slow×64"),
        paper_bound: format!("max(s·c_max, ⌊log_(2b-1)(2n-1)⌋·c_min) = {bound}"),
        measured: format!(
            "naive: {}/{} sessions; A(p): {}/{} in {}",
            demo.naive_sessions,
            s,
            demo.correct_sessions,
            s,
            demo.correct_running_time
                .map_or_else(|| "∞".into(), |t| (t - Time::ZERO).to_string()),
        ),
        ok: demo.demonstrates_bound()
            && demo
                .correct_running_time
                .is_some_and(|t| (t - Time::ZERO) >= bound),
        bound_value: Some(bound.to_f64()),
        measured_value: demo.correct_running_time.map(|t| (t - Time::ZERO).to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: Vec::new(),
    })
}

/// Periodic message passing, upper bound `s·c_max + d2`.
pub fn periodic_mp_upper(s: u64, n: usize, c_max: Dur, d2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let kb = KnownBounds::periodic(d2)?;
    let mut sched = FixedPeriods::uniform(n, c_max)?;
    let mut delays = ConstantDelay::new(d2)?;
    let mut rec = InMemoryRecorder::new();
    let report = run_mp_recorded(
        MpConfig {
            model: TimingModel::Periodic,
            spec,
            bounds: kb,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
        &mut rec,
    )?;
    let bound = bounds::periodic_mp_upper(s, c_max, d2);
    let measured = rt(&report);
    Ok(RowMeasurement {
        model: "periodic",
        comm: "MP",
        kind: BoundKind::Upper,
        params: format!("s={s}, n={n}, c_max={c_max}, d2={d2}"),
        paper_bound: format!("s·c_max + d2 = {bound}"),
        measured: format!("{measured} ({} sessions)", report.sessions),
        ok: report.solves(&spec) && measured <= bound + c_max * 2,
        bound_value: Some(bound.to_f64()),
        measured_value: Some(measured.to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: rec.into_snapshot().counters().collect(),
    })
}

/// Periodic message passing, lower bound `max(s·c_max, d2)`:
/// slowed-process adversary.
pub fn periodic_mp_lower(s: u64, n: usize, d2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let demo = periodic_mp_demo(&spec, 64, d2, RunLimits::default())?;
    let bound = bounds::periodic_mp_lower(s, d(64), d2);
    Ok(RowMeasurement {
        model: "periodic",
        comm: "MP",
        kind: BoundKind::Lower,
        params: format!("s={s}, n={n}, d2={d2}, slow×64"),
        paper_bound: format!("max(s·c_max, d2) = {bound}"),
        measured: format!(
            "naive: {}/{} sessions; A(p): {}/{}",
            demo.naive_sessions, s, demo.correct_sessions, s
        ),
        ok: demo.demonstrates_bound()
            && demo
                .correct_running_time
                .is_some_and(|t| (t - Time::ZERO) >= bound),
        bound_value: Some(bound.to_f64()),
        measured_value: demo.correct_running_time.map(|t| (t - Time::ZERO).to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: Vec::new(),
    })
}

/// Semi-synchronous shared memory, upper bound
/// `min(⌊c2/c1⌋+1, O(log_b n))·c2·(s−1) + c2`.
pub fn semisync_sm_upper(s: u64, n: usize, b: usize, c1: Dur, c2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, b)?;
    let kb = KnownBounds::semi_synchronous(c1, c2, d(1))?;
    let tree = TreeSpec::build(n, b);
    let mut sched = FixedPeriods::uniform(n + tree.num_relays(), c2)?;
    let mut rec = InMemoryRecorder::new();
    let report = run_sm_recorded(
        SmConfig {
            model: TimingModel::SemiSynchronous,
            spec,
            bounds: kb,
        },
        &mut sched,
        RunLimits::default(),
        &mut rec,
    )?;
    let bound = bounds::semisync_sm_upper(s, c1, c2, tree.flood_rounds_bound());
    let measured = rt(&report);
    Ok(RowMeasurement {
        model: "semi-sync",
        comm: "SM",
        kind: BoundKind::Upper,
        params: format!("s={s}, n={n}, b={b}, c1={c1}, c2={c2}"),
        paper_bound: format!("min(⌊c2/c1⌋+1, flood)·c2·(s−1)+c2 = {bound}"),
        measured: format!("{measured} ({} sessions)", report.sessions),
        ok: report.solves(&spec) && measured <= bound + c2 * 2,
        bound_value: Some(bound.to_f64()),
        measured_value: Some(measured.to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: rec.into_snapshot().counters().collect(),
    })
}

/// Semi-synchronous shared memory, lower bound
/// `min(⌊c2/2c1⌋, ⌊log_b n⌋)·c2·(s−1)`: the Theorem 5.1
/// reorder-and-retime adversary.
pub fn semisync_sm_lower(s: u64, n: usize, c1: Dur, c2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let factory = || naive_sm_system(&spec, spec.s());
    let attack = retiming_attack(factory, &spec, c1, c2, RunLimits::default())?;
    let bound = bounds::semisync_sm_lower(&spec, c1, c2);
    // Also the direct step-counting witness with a plain schedule.
    let step_demo = semisync_sm_step_counting_demo(&spec, c1, c2, RunLimits::default())?;
    Ok(RowMeasurement {
        model: "semi-sync",
        comm: "SM",
        kind: BoundKind::Lower,
        params: format!("s={s}, n={n}, b=2, c1={c1}, c2={c2}, B={}", attack.block_rounds),
        paper_bound: format!("min(⌊c2/2c1⌋, ⌊log_b n⌋)·c2·(s−1) = {bound}"),
        measured: format!(
            "retimed witness: {}/{} sessions (admissible: {}, state-equal: {}); cheat-block witness: {}/{}",
            attack.sessions,
            s,
            attack.admissible,
            attack.same_global_state,
            step_demo.naive_sessions,
            s
        ),
        ok: attack.defeated() && step_demo.demonstrates_bound(),
        bound_value: Some(bound.to_f64()),
        measured_value: None,
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: Vec::new(),
    })
}

/// Semi-synchronous message passing, upper bound
/// `min((⌊c2/c1⌋+1)·c2, d2+c2)·(s−1) + c2` (from \[4\], converted).
pub fn semisync_mp_upper(s: u64, n: usize, c1: Dur, c2: Dur, d2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let kb = KnownBounds::semi_synchronous(c1, c2, d2)?;
    let mut sched = FixedPeriods::uniform(n, c2)?;
    let mut delays = ConstantDelay::new(d2)?;
    let mut rec = InMemoryRecorder::new();
    let report = run_mp_recorded(
        MpConfig {
            model: TimingModel::SemiSynchronous,
            spec,
            bounds: kb,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
        &mut rec,
    )?;
    let bound = bounds::semisync_mp_upper(s, c1, c2, d2);
    let measured = rt(&report);
    Ok(RowMeasurement {
        model: "semi-sync",
        comm: "MP",
        kind: BoundKind::Upper,
        params: format!("s={s}, n={n}, c1={c1}, c2={c2}, d2={d2}"),
        paper_bound: format!("min((⌊c2/c1⌋+1)·c2, d2+c2)·(s−1)+c2 = {bound}"),
        measured: format!("{measured} ({} sessions)", report.sessions),
        ok: report.solves(&spec) && measured <= bound + c2 * 2,
        bound_value: Some(bound.to_f64()),
        measured_value: Some(measured.to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: rec.into_snapshot().counters().collect(),
    })
}

/// Semi-synchronous message passing, lower bound
/// `min(⌊c2/2c1⌋·c2, d2+c2)·(s−1)`: the step-counting cheat witness.
pub fn semisync_mp_lower(s: u64, n: usize, c1: Dur, c2: Dur, d2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    // The witness is substrate-independent (it never communicates); the SM
    // demo's schedule argument applies verbatim to MP port processes.
    let demo = semisync_sm_step_counting_demo(&spec, c1, c2, RunLimits::default())?;
    let bound = bounds::semisync_mp_lower(s, c1, c2, d2);
    Ok(RowMeasurement {
        model: "semi-sync",
        comm: "MP",
        kind: BoundKind::Lower,
        params: format!("s={s}, n={n}, c1={c1}, c2={c2}, d2={d2}"),
        paper_bound: format!("min(⌊c2/2c1⌋·c2, d2+c2)·(s−1) = {bound}"),
        measured: format!(
            "cheat-block witness: {}/{} sessions; honest: {}/{}",
            demo.naive_sessions, s, demo.correct_sessions, s
        ),
        ok: demo.demonstrates_bound(),
        bound_value: Some(bound.to_f64()),
        measured_value: None,
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: Vec::new(),
    })
}

/// Sporadic message passing, upper bound
/// `min((⌊u/c1⌋+3)·γ + u, d2+γ)·(s−1) + γ` — `A(sp)` measured.
pub fn sporadic_mp_upper(s: u64, n: usize, c1: Dur, d1: Dur, d2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let kb = KnownBounds::sporadic(c1, d1, d2)?;
    let mut sched = FixedPeriods::uniform(n, c1 * 2)?;
    let mut delays = ConstantDelay::new(d2)?;
    let mut rec = InMemoryRecorder::new();
    let report = run_mp_recorded(
        MpConfig {
            model: TimingModel::Sporadic,
            spec,
            bounds: kb,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
        &mut rec,
    )?;
    let gamma = report.gamma;
    let bound = bounds::sporadic_mp_upper(s, c1, d1, d2, gamma);
    let slack = d2 + gamma * 2; // Theorem 6.1's raw first-session term
    let measured = rt(&report);
    Ok(RowMeasurement {
        model: "sporadic",
        comm: "MP",
        kind: BoundKind::Upper,
        params: format!("s={s}, n={n}, c1={c1}, d1={d1}, d2={d2}, γ={gamma}"),
        paper_bound: format!("min((⌊u/c1⌋+3)γ+u, d2+γ)(s−1)+γ = {bound} (+{slack} first session)"),
        measured: format!("{measured} ({} sessions)", report.sessions),
        ok: report.solves(&spec) && measured <= bound + slack,
        bound_value: Some(bound.to_f64()),
        measured_value: Some(measured.to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: rec.into_snapshot().counters().collect(),
    })
}

/// Sporadic message passing, lower bound `max(⌊u/4c1⌋·K, c1)·(s−1)`:
/// the Theorem 6.5 rescale-and-retime adversary plus the unbounded-pause
/// witness.
pub fn sporadic_mp_lower(s: u64, n: usize, c1: Dur, d1: Dur, d2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let k = k_period(c1, d1, d2)?;
    // Record the naive witness at period K, delays d2 — exactly the
    // computation Theorem 6.5 perturbs.
    let processes: Vec<Box<dyn MpProcess<session_core::SessionMsg>>> = (0..n)
        .map(|_| Box::new(NaiveMpPort::new(s)) as Box<_>)
        .collect();
    let ports = (0..n)
        .map(|i| (ProcessId::new(i), PortId::new(i)))
        .collect();
    let mut engine = MpEngine::new(processes, ports)?;
    let mut sched = FixedPeriods::uniform(n, k)?;
    let mut delays = ConstantDelay::new(d2)?;
    let outcome = engine.run(&mut sched, &mut delays, RunLimits::default())?;
    if !outcome.terminated {
        return Err(Error::LimitExceeded {
            steps: outcome.steps,
        });
    }
    let original_sessions = count_sessions(&outcome.trace, n, port_of(&spec));
    let attack = rescaling_attack(&outcome.trace, &spec, c1, d1, d2)?;
    let pause_demo = sporadic_mp_demo(d2, RunLimits::default())?;
    let bound = bounds::sporadic_mp_lower(s, c1, d1, d2);
    Ok(RowMeasurement {
        model: "sporadic",
        comm: "MP",
        kind: BoundKind::Lower,
        params: format!("s={s}, n={n}, c1={c1}, d1={d1}, d2={d2}, K={k}, B={}", attack.block_rounds),
        paper_bound: format!("max(⌊u/4c1⌋·K, c1)·(s−1) = {bound}"),
        measured: format!(
            "witness: {original_sessions}→{} sessions after retiming (admissible: {}); pause witness: {}/{}",
            attack.sessions, attack.admissible, pause_demo.naive_sessions, pause_demo.s
        ),
        ok: attack.defeated() && pause_demo.demonstrates_bound(),
        bound_value: Some(bound.to_f64()),
        measured_value: None,
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: Vec::new(),
    })
}

/// Asynchronous shared memory, upper bound `(s−1)·O(log_b n)` rounds.
pub fn async_sm_upper(s: u64, n: usize, b: usize) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, b)?;
    let tree = TreeSpec::build(n, b);
    let mut sched = FixedPeriods::uniform(n + tree.num_relays(), d(1))?;
    let mut rec = InMemoryRecorder::new();
    let report = run_sm_recorded(
        SmConfig {
            model: TimingModel::Asynchronous,
            spec,
            bounds: KnownBounds::asynchronous(),
        },
        &mut sched,
        RunLimits::default(),
        &mut rec,
    )?;
    let bound = bounds::async_sm_upper_rounds(s, tree.flood_rounds_bound());
    Ok(RowMeasurement {
        model: "asynchronous",
        comm: "SM",
        kind: BoundKind::Upper,
        params: format!("s={s}, n={n}, b={b}"),
        paper_bound: format!(
            "(s−1)·flood = {bound} rounds (flood = {})",
            tree.flood_rounds_bound()
        ),
        measured: format!("{} rounds ({} sessions)", report.rounds, report.sessions),
        ok: report.solves(&spec) && report.rounds <= bound + tree.flood_rounds_bound() + 2,
        bound_value: Some(bound as f64),
        measured_value: Some(report.rounds as f64),
        unit: "rounds",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: rec.into_snapshot().counters().collect(),
    })
}

/// Asynchronous shared memory, lower bound `(s−1)·⌊log_b n⌋` rounds (\[2\]):
/// the Arjomandi–Fischer–Lynch round-reordering adversary, executed.
pub fn async_sm_lower(s: u64, n: usize, b: usize) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, b)?;
    let attack = afl_reorder_attack(
        || naive_sm_system(&spec, spec.s()),
        &spec,
        RunLimits::default(),
    )?;
    let bound = bounds::async_sm_lower_rounds(&spec);
    Ok(RowMeasurement {
        model: "asynchronous",
        comm: "SM",
        kind: BoundKind::Lower,
        params: format!(
            "s={s}, n={n}, b={b}, B={} rounds/block",
            attack.block_rounds
        ),
        paper_bound: format!("(s−1)·⌊log_b n⌋ = {bound} rounds"),
        measured: format!(
            "witness in {} rounds reordered to {}/{} sessions (state-equal: {})",
            attack.recorded_rounds, attack.sessions, s, attack.same_global_state
        ),
        ok: attack.defeated() && attack.recorded_rounds < bound,
        bound_value: Some(bound as f64),
        measured_value: Some(attack.recorded_rounds as f64),
        unit: "rounds",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: Vec::new(),
    })
}

/// Asynchronous message passing, upper bound `(s−1)(d2+c2)+c2` (from \[4\]).
pub fn async_mp_upper(s: u64, n: usize, period: Dur, d2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let mut sched = FixedPeriods::uniform(n, period)?;
    let mut delays = ConstantDelay::new(d2)?;
    let mut rec = InMemoryRecorder::new();
    let report = run_mp_recorded(
        MpConfig {
            model: TimingModel::Asynchronous,
            spec,
            bounds: KnownBounds::asynchronous(),
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
        &mut rec,
    )?;
    let gamma = report.gamma;
    let bound = bounds::async_mp_upper(s, gamma, d2);
    let measured = rt(&report);
    Ok(RowMeasurement {
        model: "asynchronous",
        comm: "MP",
        kind: BoundKind::Upper,
        params: format!("s={s}, n={n}, step={period}, d2={d2}"),
        paper_bound: format!("(s−1)(d2+γ)+γ = {bound} (γ = {gamma})"),
        measured: format!("{measured} ({} sessions)", report.sessions),
        ok: report.solves(&spec) && measured <= bound,
        bound_value: Some(bound.to_f64()),
        measured_value: Some(measured.to_f64()),
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: rec.into_snapshot().counters().collect(),
    })
}

/// Asynchronous message passing, lower bound `(s−1)·d2` (\[4\]): witnessed by
/// the silent algorithm's defeat under a slowed process.
pub fn async_mp_lower(s: u64, n: usize, d2: Dur) -> Result<RowMeasurement> {
    let started = Instant::now();
    let spec = SessionSpec::new(s, n, 2)?;
    let demo = periodic_mp_demo(&spec, 64, d2, RunLimits::default())?;
    let bound = bounds::async_mp_lower(s, d2);
    Ok(RowMeasurement {
        model: "asynchronous",
        comm: "MP",
        kind: BoundKind::Lower,
        params: format!("s={s}, n={n}, d2={d2}"),
        paper_bound: format!("(s−1)·d2 = {bound}"),
        measured: format!(
            "silent witness: {}/{} sessions; communicating algorithm: {}/{}",
            demo.naive_sessions, s, demo.correct_sessions, s
        ),
        ok: demo.demonstrates_bound(),
        bound_value: Some(bound.to_f64()),
        measured_value: None,
        unit: "ms",
        wall_clock_secs: started.elapsed().as_secs_f64(),
        counters: Vec::new(),
    })
}

/// Every Table 1 row at the default instance sizes.
///
/// # Errors
///
/// Propagates the first experiment failure.
pub fn full_table1() -> Result<Vec<RowMeasurement>> {
    Ok(vec![
        sync_sm(4, 8, d(3))?,
        sync_mp(4, 8, d(3), d(5))?,
        periodic_sm_upper(4, 8, 2, d(3))?,
        periodic_sm_lower(4, 8, 2)?,
        periodic_mp_upper(4, 8, d(3), d(20))?,
        periodic_mp_lower(4, 8, d(20))?,
        semisync_sm_upper(4, 8, 2, d(1), d(6))?,
        semisync_sm_lower(3, 8, d(1), d(8))?,
        semisync_mp_upper(4, 8, d(1), d(6), d(20))?,
        semisync_mp_lower(4, 8, d(1), d(8), d(20))?,
        sporadic_mp_upper(4, 4, d(1), d(0), d(12))?,
        sporadic_mp_lower(4, 3, d(1), d(0), d(16))?,
        async_sm_upper(4, 8, 2)?,
        async_sm_lower(4, 16, 2)?,
        async_mp_upper(4, 6, d(2), d(9))?,
        async_mp_lower(4, 6, d(9))?,
    ])
}

/// Renders [`full_table1`] as markdown.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn table1_markdown() -> Result<String> {
    Ok(table1_markdown_of(&full_table1()?))
}

/// Renders already-measured Table 1 rows as markdown (shared by the
/// `table1` binary, which also feeds the same rows to the JSON report).
pub fn table1_markdown_of(measurements: &[RowMeasurement]) -> String {
    use crate::format::{markdown_table, Row};
    let rows: Vec<Row> = measurements
        .iter()
        .cloned()
        .map(|m| {
            Row::new([
                m.model.to_owned(),
                m.comm.to_owned(),
                m.kind.label().to_owned(),
                m.params,
                m.paper_bound,
                m.measured,
                if m.ok {
                    "✓".to_owned()
                } else {
                    "✗".to_owned()
                },
            ])
        })
        .collect();
    markdown_table(
        &[
            "model",
            "comm",
            "L/U",
            "instance",
            "paper bound",
            "measured",
            "ok",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table1_row_is_consistent() {
        let rows = full_table1().unwrap();
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert!(
                row.ok,
                "row {} {} {} failed: bound {}, measured {}",
                row.model,
                row.comm,
                row.kind.label(),
                row.paper_bound,
                row.measured
            );
        }
    }

    #[test]
    fn markdown_contains_all_models() {
        let md = table1_markdown().unwrap();
        for model in [
            "synchronous",
            "periodic",
            "semi-sync",
            "sporadic",
            "asynchronous",
        ] {
            assert!(md.contains(model), "missing {model} in:\n{md}");
        }
    }
}
