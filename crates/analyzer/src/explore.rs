//! Memoized depth-first exploration of a machine's complete reachable
//! state space, with the session counter and the lint triggers.
//!
//! The explorer walks every branch of [`AnyMachine`]'s choice menu. Along
//! each path it maintains an incremental copy of the greedy session
//! counter (`session_core::verify::count_sessions` semantics, verified
//! equivalent in the test suite), because the session count is
//! history-dependent: two paths can reach the same machine state having
//! closed different numbers of sessions. The memo key therefore combines
//! the machine state with the counter state — pruning on machine state
//! alone would be unsound.
//!
//! Triggers:
//! * quiescent leaf with fewer than `s` sessions → `SA001`;
//! * a step pushing a variable past its `b`-bound → `SA002`;
//! * any process claiming more sessions than counted → `SA003`;
//! * an idle process un-idling → `SA004`;
//! * a state repeating on the current path (an admissible lasso that
//!   never quiesces) → `SA005`.
//!
//! Running out of the depth budget is *not* a finding: it is recorded as
//! [`Exploration::truncated`] (with a cut-path count), so a clean verdict
//! can be told apart from a clean-but-partial one. A state whose subtree
//! was cut at the budget is memoized together with the budget it was
//! explored at — revisiting it through a shorter path (more remaining
//! budget) re-explores it, while revisits with no more budget are
//! skipped, which keeps depth-limited exploration polynomial in the
//! number of reachable states.
//!
//! Two optional reduction layers, both off by default
//! ([`ExploreOpts`]), shrink the explored space without changing any
//! verdict: [`crate::por`] selects an ample subset of each state's choice
//! menu, and [`crate::symmetry`] canonicalizes states of identity-free
//! message-passing targets under process permutation before the memo
//! lookup. [`Exploration::stats`] reports what they saved.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use rustc_hash::{FxHashMap, FxHashSet, FxHasher};
use session_obs::{NullRecorder, ProgressBoard, Recorder};
use session_types::Dur;

use crate::diag::LintCode;
use crate::machine::{MpMachine, SmMachine, StepInfo};
use crate::parallel::PROGRESS_BATCH;
use crate::profile::{ExploreProfile, FlightOpts, WorkerProfile};
use crate::{por, symmetry};

/// Either machine, so the explorer and replayer are substrate-agnostic.
#[derive(Clone, Debug)]
pub enum AnyMachine {
    /// Shared memory.
    Sm(SmMachine),
    /// Message passing.
    Mp(MpMachine),
}

impl AnyMachine {
    /// See [`SmMachine::choice_count`].
    pub fn choice_count(&self) -> usize {
        match self {
            AnyMachine::Sm(m) => m.choice_count(),
            AnyMachine::Mp(m) => m.choice_count(),
        }
    }

    /// See [`SmMachine::apply`].
    pub fn apply(&mut self, choice: usize, trace: Option<&mut session_sim::Trace>) -> StepInfo {
        match self {
            AnyMachine::Sm(m) => m.apply(choice, trace),
            AnyMachine::Mp(m) => m.apply(choice, trace),
        }
    }

    /// See [`SmMachine::is_quiescent`].
    pub fn is_quiescent(&self) -> bool {
        match self {
            AnyMachine::Sm(m) => m.is_quiescent(),
            AnyMachine::Mp(m) => m.is_quiescent(),
        }
    }

    /// See [`SmMachine::state_hash`].
    pub fn state_hash(&self) -> u64 {
        match self {
            AnyMachine::Sm(m) => m.state_hash(),
            AnyMachine::Mp(m) => m.state_hash(),
        }
    }

    /// See [`MpMachine::claimed_sessions_max`] (`None` for shared memory).
    pub fn claimed_sessions_max(&self) -> Option<u64> {
        match self {
            AnyMachine::Sm(_) => None,
            AnyMachine::Mp(m) => m.claimed_sessions_max(),
        }
    }

    /// See [`SmMachine::control_hash`] / [`MpMachine::control_hash`].
    pub(crate) fn control_hash(&self) -> u64 {
        match self {
            AnyMachine::Sm(m) => m.control_hash(),
            AnyMachine::Mp(m) => m.control_hash(),
        }
    }

    /// See [`SmMachine::initial_windows`] / [`MpMachine::initial_windows`].
    pub(crate) fn initial_windows(&self) -> Vec<(crate::machine::ZoneEvent, Dur, Dur)> {
        match self {
            AnyMachine::Sm(m) => m.initial_windows(),
            AnyMachine::Mp(m) => m.initial_windows(),
        }
    }

    /// See [`SmMachine::gap_window`] / [`MpMachine::gap_window`].
    pub(crate) fn gap_window(&self, p: usize) -> (Dur, Dur) {
        match self {
            AnyMachine::Sm(m) => m.gap_window(p),
            AnyMachine::Mp(m) => m.gap_window(p),
        }
    }

    /// See [`MpMachine::delay_window`] (`None` for shared memory, which
    /// has no messages).
    pub(crate) fn delay_window(&self) -> Option<(Dur, Dur)> {
        match self {
            AnyMachine::Sm(_) => None,
            AnyMachine::Mp(m) => Some(m.delay_window()),
        }
    }

    /// See [`SmMachine::zone_apply`] / [`MpMachine::zone_apply`].
    pub(crate) fn zone_apply(
        &mut self,
        ev: crate::machine::ZoneEvent,
    ) -> (StepInfo, Vec<crate::machine::ZoneEvent>) {
        match self {
            AnyMachine::Sm(m) => m.zone_apply(ev),
            AnyMachine::Mp(m) => m.zone_apply(ev),
        }
    }
}

/// Incremental greedy session counter, mirroring
/// `session_core::verify::count_sessions` step for step: only port steps
/// are visible; the step on which a process idles still counts; later
/// steps of an idle process never do.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct SessionCounter {
    n: usize,
    /// Sessions closed so far, saturated at `s` (further sessions cannot
    /// change any verdict, and saturating keeps the memo key space finite).
    sessions: u64,
    saturate_at: u64,
    covered: BTreeSet<usize>,
    idle: BTreeSet<usize>,
}

impl SessionCounter {
    /// A fresh counter for `n` ports, saturating at `s`.
    pub fn new(n: usize, s: u64) -> SessionCounter {
        SessionCounter {
            n,
            sessions: 0,
            saturate_at: s,
            covered: BTreeSet::new(),
            idle: BTreeSet::new(),
        }
    }

    /// Sessions closed so far (saturated at `s`).
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Feeds one applied transition.
    pub fn observe(&mut self, info: &StepInfo) {
        let Some(port) = info.port else { return };
        let p = info.process.index();
        let was_idle = self.idle.contains(&p);
        if info.idle_after {
            self.idle.insert(p);
        }
        if was_idle {
            return;
        }
        self.covered.insert(port.index());
        if self.covered.len() >= self.n {
            self.sessions = (self.sessions + 1).min(self.saturate_at);
            self.covered.clear();
        }
    }

    /// Ports required to close the current session.
    pub(crate) fn ports_missing(&self) -> usize {
        self.n - self.covered.len()
    }

    /// Whether `port` is already covered in the current session window.
    pub(crate) fn covers(&self, port: usize) -> bool {
        self.covered.contains(&port)
    }

    /// Whether the counter has marked process `p` idle (its later port
    /// steps no longer cover).
    pub(crate) fn is_idle(&self, p: usize) -> bool {
        self.idle.contains(&p)
    }

    /// Hashes the counter as it would look after renaming process/port `i`
    /// to `sigma[i]` (MP targets only: port ids coincide with process
    /// ids there, so one permutation renames both).
    pub(crate) fn hash_permuted<H: Hasher>(&self, sigma: &[usize], hasher: &mut H) {
        self.n.hash(hasher);
        self.sessions.hash(hasher);
        self.saturate_at.hash(hasher);
        let covered: BTreeSet<usize> = self.covered.iter().map(|&p| sigma[p]).collect();
        covered.hash(hasher);
        let idle: BTreeSet<usize> = self.idle.iter().map(|&p| sigma[p]).collect();
        idle.hash(hasher);
    }
}

/// A lint rule fired during exploration.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// Which rule.
    pub code: LintCode,
    /// One-line description.
    pub message: String,
    /// The branch choices leading from the root to the violation —
    /// replaying them through a clone of the root machine reproduces it
    /// exactly.
    pub path: Vec<usize>,
    /// Index of the root (first-step / period assignment) the violation
    /// was found under.
    pub root: usize,
}

/// Which reduction layers the explorer applies, and how many worker
/// threads it runs. Reductions default to off and threads to 1, so every
/// historical verdict is reproduced bit for bit unless a caller opts in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreOpts {
    /// Partial-order reduction: expand only an ample subset of each
    /// state's choice menu (see [`crate::por`]).
    pub por: bool,
    /// Symmetry reduction: canonicalize identity-free MP states under
    /// process permutation before the memo lookup (see
    /// [`crate::symmetry`]).
    pub symmetry: bool,
    /// Worker threads. `1` (the default) runs the classic serial DFS;
    /// `> 1` runs the hash-partitioned ownership explorer in
    /// [`crate::parallel`], whose findings *and counters* are
    /// bit-identical to the serial path's (see DESIGN.md §13 for the
    /// determinism argument). Must be at least 1.
    pub threads: usize,
}

impl Default for ExploreOpts {
    fn default() -> ExploreOpts {
        ExploreOpts {
            por: false,
            symmetry: false,
            threads: 1,
        }
    }
}

impl ExploreOpts {
    /// Every reduction on (still single-threaded).
    pub fn reduced() -> ExploreOpts {
        ExploreOpts {
            por: true,
            symmetry: true,
            threads: 1,
        }
    }
}

/// What the reduction layers saved during one exploration. All zeros when
/// both layers are off (the memo-hit counter is tracked either way).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Successor choices skipped by the ample-set selector.
    pub pruned: u64,
    /// Memo-table hits (revisits of an already fully explored state —
    /// with symmetry on, of any state in its orbit).
    pub memo_hits: u64,
}

/// The result of exploring one target.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Distinct states visited across all roots.
    pub states: u64,
    /// The violations found: the first witness of each distinct lint code
    /// (exploration prunes below a violation but keeps searching the rest
    /// of the space, so one target can exhibit several codes — e.g. a
    /// phantom-certifying algorithm both claims too much on some schedules
    /// and under-delivers on others).
    pub violations: Vec<FoundViolation>,
    /// `true` when at least one path was cut at the depth budget: a clean
    /// verdict then covers only the explored prefix of the space.
    pub truncated: bool,
    /// How many paths were cut at the depth budget.
    pub depth_hits: u64,
    /// What the reduction layers saved.
    pub stats: ReductionStats,
}

/// Exhaustively explores every root machine, sharing the memo across
/// roots. `s` is the required session count, `n` the number of ports,
/// `max_depth` the per-path event budget.
pub fn explore(roots: &[AnyMachine], n: usize, s: u64, max_depth: usize) -> Exploration {
    explore_recorded(roots, n, s, max_depth, &mut NullRecorder)
}

/// [`explore`] with reduction layers enabled per `opts`.
pub fn explore_with_opts(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
) -> Exploration {
    explore_recorded_opts(roots, n, s, max_depth, opts, &mut NullRecorder)
}

/// [`explore`] with instrumentation: emits `explore.memo_hits` /
/// `explore.memo_misses` counters, an `explore.frontier_depth` histogram
/// (DFS path length at each expansion) and final `explore.states` /
/// `explore.states_per_sec` gauges to `recorder`, timing each root under
/// an `explore.root` span.
pub fn explore_recorded(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    recorder: &mut dyn Recorder,
) -> Exploration {
    explore_recorded_opts(roots, n, s, max_depth, ExploreOpts::default(), recorder)
}

/// [`explore_recorded`] with reduction layers enabled per `opts`. Adds an
/// `explore.pruned_choices` counter when partial-order reduction skips
/// successors.
pub fn explore_recorded_opts(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    recorder: &mut dyn Recorder,
) -> Exploration {
    explore_flight(
        roots,
        n,
        s,
        max_depth,
        opts,
        recorder,
        &FlightOpts::default(),
    )
    .0
}

/// [`explore_recorded_opts`] with the flight recorder attached (DESIGN.md
/// §15): when `flight.profile` is set, the returned [`ExploreProfile`]
/// breaks down where the exploration spent its time — per worker for the
/// parallel path, as one degenerate all-expand worker for the serial
/// path — and when `flight.progress` carries a board, the explorer
/// publishes batched live progress to it. The `Exploration` itself is
/// bit-identical with or without either.
#[allow(clippy::cast_precision_loss)]
pub fn explore_flight(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    recorder: &mut dyn Recorder,
    flight: &FlightOpts,
) -> (Exploration, Option<ExploreProfile>) {
    assert!(opts.threads >= 1, "ExploreOpts::threads must be >= 1");
    if opts.threads > 1 {
        return crate::parallel::explore_parallel_flight(
            roots, n, s, max_depth, opts, recorder, flight,
        );
    }
    // wslint: allow(ws001): live progress reports real elapsed time by design
    let started = Instant::now();
    let progress = flight.progress.as_deref();
    if let Some(board) = progress {
        board.worker_busy();
    }
    let mut explorer = Explorer {
        memo: FxHashMap::default(),
        on_path: FxHashSet::default(),
        violations: Vec::new(),
        states: 0,
        pruned: 0,
        memo_hit_count: 0,
        depth_hits: 0,
        duplicates: 0,
        current_root: 0,
        s,
        max_depth,
        opts,
        early_stop: None,
        recorder,
        progress,
        batch_states: 0,
        batch_depth: 0,
    };
    for (root_index, root) in roots.iter().enumerate() {
        explorer.current_root = root_index;
        let counter = SessionCounter::new(n, s);
        let mut path = Vec::new();
        explorer.recorder.span_start("explore.root");
        explorer.dfs(root.clone(), &counter, &mut path);
        explorer.recorder.span_end();
    }
    explorer.flush_progress();
    let memo_entries = explorer.memo.len() as u64;
    let Explorer {
        states,
        violations,
        pruned,
        memo_hit_count,
        depth_hits,
        duplicates,
        ..
    } = explorer;
    if let Some(board) = progress {
        board.worker_idle();
    }
    if recorder.is_enabled() {
        recorder.gauge("explore.states", states as f64);
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            recorder.gauge("explore.states_per_sec", states as f64 / elapsed);
        }
    }
    let profile = flight.profile.then(|| {
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut worker = WorkerProfile::new();
        worker.states = states;
        worker.items = roots.len() as u64;
        worker.busy_ns = wall_ns;
        worker.duplicate_expansions = duplicates;
        worker.seal();
        ExploreProfile {
            target: String::new(),
            n,
            s,
            threads: 1,
            max_depth,
            por: opts.por,
            symmetry: opts.symmetry,
            states,
            unique_states: memo_entries,
            duplicate_expansions: duplicates,
            route_send: 0,
            route_recv: 0,
            local_msgs: 0,
            queue_full_spins: 0,
            rounds: 1,
            fallback: false,
            wall_ns,
            phase_a_ns: wall_ns,
            replay_ns: 0,
            phase_b_ns: 0,
            workers: vec![worker],
        }
    });
    let exploration = Exploration {
        states,
        violations,
        truncated: depth_hits > 0,
        depth_hits,
        stats: ReductionStats {
            pruned,
            memo_hits: memo_hit_count,
        },
    };
    (exploration, profile)
}

/// What a `dfs` call reports back to its parent expansion.
#[derive(Clone, Copy)]
struct SubtreeOutcome {
    /// `false` when the depth budget cut something below this state — the
    /// state must then not be memoized, so a shallower revisit gets to
    /// finish the job.
    complete: bool,
    /// `true` when this state itself closed a cycle on the DFS stack.
    /// Feeds the ample selector's cycle proviso: an ample successor that
    /// loops straight back onto the stack could postpone the pruned
    /// events forever, so the parent falls back to full expansion.
    closed_cycle: bool,
}

/// Memo value marking a subtree explored with no depth cut below it —
/// nothing on any continuation remains unseen, at any budget.
pub(crate) const MEMO_COMPLETE: usize = usize::MAX;

/// The (machine × counter) memo key: the symmetry-canonical key when the
/// reduction is on and the target is eligible, the plain combined
/// fingerprint otherwise. Shared by the serial explorer and the sharded
/// parallel memo so both paths prune identically. Equal keys imply equal
/// choice menus — [`MpMachine::eligible`] enumerates in the canonical
/// order the hash is computed over — so the key is graph-determining:
/// the ownership explorer routes, dedups and logs records by it, and
/// whichever representative of the class a worker expands first yields
/// the same record any other would have.
///
/// [`MpMachine::eligible`]: crate::machine::MpMachine
pub(crate) fn state_key(machine: &AnyMachine, counter: &SessionCounter, symmetry: bool) -> u64 {
    if symmetry {
        if let Some(canonical) = symmetry::canonical_key(machine, counter) {
            return canonical;
        }
    }
    let mut hasher = FxHasher::default();
    machine.state_hash().hash(&mut hasher);
    counter.hash(&mut hasher);
    hasher.finish()
}

/// The (machine × counter) routing key of the ownership explorer: the
/// plain combined fingerprint, never symmetry-canonicalized. Symmetry
/// reduction equates permuted states whose choice menus rename processes
/// differently, so the canonical key is *not* graph-determining — which
/// permuted representative a worker expanded first would leak into the
/// logged menu. The plain key is graph-determining, so routing and
/// record identity use it; the replay pass then collapses orbits under
/// the memo key ([`state_key`]) exactly where the serial explorer does.
/// Whenever symmetry is off — or refused for the target, which covers
/// every identity-carrying algorithm — the two keys are computed
/// identically and Phase A expands exactly the states serial visits.
pub(crate) fn route_key(machine: &AnyMachine, counter: &SessionCounter) -> u64 {
    state_key(machine, counter, false)
}

/// Step-level rules: `SA002`, `SA003`, `SA004` (un-idle). Pure edge
/// predicate — shared by every exploration mode (and exercised directly
/// by the lint-registry test suite).
pub fn check_step(
    info: &StepInfo,
    machine: &AnyMachine,
    counter: &SessionCounter,
) -> Option<(LintCode, String)> {
    if let Some(var) = info.b_violation {
        return Some((
            LintCode::BBoundViolation,
            format!(
                "variable {var} accessed by more than b distinct processes (process {} was one too many)",
                info.process
            ),
        ));
    }
    if info.is_process_step && info.was_idle && !info.idle_after {
        return Some((
            LintCode::InadmissibleStep,
            format!(
                "process {} un-idled: idle states must be closed under steps",
                info.process
            ),
        ));
    }
    if let Some(claimed) = machine.claimed_sessions_max() {
        if claimed > counter.sessions() {
            return Some((
                LintCode::StaleEvidence,
                format!(
                    "a process claims {claimed} sessions but only {} actually happened",
                    counter.sessions()
                ),
            ));
        }
    }
    None
}

/// Re-derives the canonical (serial first-witness) violation paths for a
/// known set of lint codes: runs the serial DFS in the exact order
/// [`explore_recorded_opts`] uses, but stops as soon as every wanted code
/// has a recorded witness. The parallel explorer uses this to report the
/// same counterexamples the serial path would, independent of thread
/// interleaving — and on clean targets (empty `codes`) it costs nothing.
pub(crate) fn explore_witnesses(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    codes: &BTreeSet<LintCode>,
) -> Vec<FoundViolation> {
    if codes.is_empty() {
        return Vec::new();
    }
    let mut explorer = Explorer {
        memo: FxHashMap::default(),
        on_path: FxHashSet::default(),
        violations: Vec::new(),
        states: 0,
        pruned: 0,
        memo_hit_count: 0,
        depth_hits: 0,
        duplicates: 0,
        current_root: 0,
        s,
        max_depth,
        opts: ExploreOpts { threads: 1, ..opts },
        early_stop: Some(codes.clone()),
        recorder: &mut NullRecorder,
        progress: None,
        batch_states: 0,
        batch_depth: 0,
    };
    for (root_index, root) in roots.iter().enumerate() {
        if explorer.early_stop_satisfied() {
            break;
        }
        explorer.current_root = root_index;
        let counter = SessionCounter::new(n, s);
        let mut path = Vec::new();
        explorer.dfs(root.clone(), &counter, &mut path);
    }
    explorer.violations
}

struct Explorer<'r> {
    /// States (machine × counter) already explored, mapped to the largest
    /// remaining-depth budget that exploration had: [`MEMO_COMPLETE`] for
    /// fully explored subtrees, otherwise the budget a truncated
    /// exploration ran with. A revisit with no more budget than a stored
    /// entry cannot reach anything new (every violation within the
    /// smaller budget was already recorded), so only strictly deeper
    /// revisits re-expand — this is what keeps depth-limited exploration
    /// of wide spaces from re-walking truncated subtrees exponentially.
    memo: FxHashMap<u64, usize>,
    /// States on the current DFS path, for lasso detection.
    on_path: FxHashSet<u64>,
    /// First witness per lint code.
    violations: Vec<FoundViolation>,
    states: u64,
    pruned: u64,
    memo_hit_count: u64,
    depth_hits: u64,
    /// Re-expansions of a state already memoized at a smaller budget
    /// (the serial baseline for the parallel explorer's
    /// duplicate-expansion count).
    duplicates: u64,
    current_root: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    /// When set, exploration stops as soon as every listed code has a
    /// recorded witness (the parallel explorer's witness re-derivation).
    early_stop: Option<BTreeSet<LintCode>>,
    recorder: &'r mut dyn Recorder,
    /// Live-progress scoreboard, updated in [`PROGRESS_BATCH`] batches.
    progress: Option<&'r ProgressBoard>,
    batch_states: u64,
    batch_depth: u64,
}

impl Explorer<'_> {
    fn key(&self, machine: &AnyMachine, counter: &SessionCounter) -> u64 {
        state_key(machine, counter, self.opts.symmetry)
    }

    /// Whether early-stop mode has found everything it was asked for.
    fn early_stop_satisfied(&self) -> bool {
        self.early_stop.as_ref().is_some_and(|want| {
            want.iter()
                .all(|code| self.violations.iter().any(|v| v.code == *code))
        })
    }

    fn record(&mut self, code: LintCode, message: String, path: &[usize]) {
        if self.violations.iter().any(|v| v.code == code) {
            return;
        }
        self.violations.push(FoundViolation {
            code,
            message,
            path: path.to_vec(),
            root: self.current_root,
        });
    }

    fn dfs(
        &mut self,
        machine: AnyMachine,
        counter: &SessionCounter,
        path: &mut Vec<usize>,
    ) -> SubtreeOutcome {
        let done = SubtreeOutcome {
            complete: true,
            closed_cycle: false,
        };
        if self.early_stop_satisfied() {
            // Witness re-derivation has everything it needs; unwind without
            // memoizing (a cut here is not a budget truncation).
            return SubtreeOutcome {
                complete: false,
                closed_cycle: false,
            };
        }
        if machine.is_quiescent() {
            if counter.sessions() < self.s {
                let message = format!(
                    "admissible schedule reaches quiescence with {} of {} required sessions",
                    counter.sessions(),
                    self.s
                );
                self.record(LintCode::SessionDeficit, message, path);
            }
            return done;
        }
        let key = self.key(&machine, counter);
        if self.on_path.contains(&key) {
            self.record(
                LintCode::NonTermination,
                "admissible schedule loops without reaching quiescence (lasso)".to_string(),
                path,
            );
            return SubtreeOutcome {
                complete: true,
                closed_cycle: true,
            };
        }
        let remaining = self.max_depth.saturating_sub(path.len());
        if let Some(&budget) = self.memo.get(&key) {
            if budget >= remaining {
                self.memo_hit_count += 1;
                self.recorder.counter("explore.memo_hits", 1);
                if budget == MEMO_COMPLETE {
                    return done;
                }
                // The stored exploration was cut at a budget at least as
                // large as this one, so this revisit would be cut too.
                self.depth_hits += 1;
                return SubtreeOutcome {
                    complete: false,
                    closed_cycle: false,
                };
            }
        }
        self.recorder.counter("explore.memo_misses", 1);
        if path.len() >= self.max_depth {
            self.depth_hits += 1;
            return SubtreeOutcome {
                complete: false,
                closed_cycle: false,
            };
        }
        self.states += 1;
        if self.progress.is_some() {
            self.batch_states += 1;
            self.batch_depth = self.batch_depth.max(path.len() as u64);
            if self.batch_states >= PROGRESS_BATCH {
                self.flush_progress();
            }
        }
        self.on_path.insert(key);
        let complete = self.expand(&machine, counter, path);
        self.on_path.remove(&key);
        let explored_budget = if complete { MEMO_COMPLETE } else { remaining };
        match self.memo.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                // This expansion redid work an earlier, smaller-budget walk
                // of the same state had already done.
                self.duplicates += 1;
                let stored = entry.get_mut();
                *stored = (*stored).max(explored_budget);
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(explored_budget);
            }
        }
        SubtreeOutcome {
            complete,
            closed_cycle: false,
        }
    }

    /// Publishes the batched progress counters to the scoreboard.
    fn flush_progress(&mut self) {
        let Some(board) = self.progress else { return };
        if self.batch_states > 0 {
            board.add_states(self.batch_states);
            self.batch_states = 0;
        }
        board.raise_depth(self.batch_depth);
    }

    /// Expands one choice and recurses; returns the child's outcome
    /// (`complete` when the edge was pruned at a step-level violation —
    /// pruning below a witness is deliberate, not a budget cut).
    fn explore_choice(
        &mut self,
        machine: &AnyMachine,
        counter: &SessionCounter,
        choice: usize,
        path: &mut Vec<usize>,
    ) -> SubtreeOutcome {
        path.push(choice);
        let mut next = machine.clone();
        let info = next.apply(choice, None);
        // The counter only advances on port steps — deliveries and relay
        // steps (the bulk of most menus) reuse the parent's counter
        // without cloning it.
        let observed;
        let next_counter = if info.port.is_some() {
            let mut cloned = counter.clone();
            cloned.observe(&info);
            observed = cloned;
            &observed
        } else {
            counter
        };
        let outcome = match check_step(&info, &next, next_counter) {
            Some((code, message)) => {
                self.record(code, message, path);
                SubtreeOutcome {
                    complete: true,
                    closed_cycle: false,
                }
            }
            None => self.dfs(next, next_counter, path),
        };
        path.pop();
        outcome
    }

    /// Expands a state's successors — the ample subset when partial-order
    /// reduction is on and finds one, the full menu otherwise. Returns
    /// `false` when any explored subtree was cut at the depth budget.
    fn expand(
        &mut self,
        machine: &AnyMachine,
        counter: &SessionCounter,
        path: &mut Vec<usize>,
    ) -> bool {
        let choices = machine.choice_count();
        debug_assert!(choices > 0, "non-quiescent machine must have events");
        if self.recorder.is_enabled() {
            self.recorder
                .observe("explore.frontier_depth", path.len() as f64);
        }
        let ample = if self.opts.por {
            por::select_ample(machine, counter)
        } else {
            None
        };
        let Some(ample) = ample else {
            let mut complete = true;
            for choice in 0..choices {
                complete &= self.explore_choice(machine, counter, choice, path).complete;
            }
            return complete;
        };
        debug_assert!(ample.end <= choices && !ample.is_empty());
        let mut complete = true;
        let mut closed_cycle = false;
        for choice in ample.start..ample.end {
            let outcome = self.explore_choice(machine, counter, choice, path);
            complete &= outcome.complete;
            closed_cycle |= outcome.closed_cycle;
        }
        if closed_cycle {
            // Cycle proviso: an ample successor landed back on the DFS
            // stack, so the pruned events could be postponed around that
            // loop forever. Expand the rest of the menu too.
            for choice in (0..ample.start).chain(ample.end..choices) {
                complete &= self.explore_choice(machine, counter, choice, path).complete;
            }
        } else {
            let skipped = (choices - ample.len()) as u64;
            self.pruned += skipped;
            self.recorder.counter("explore.pruned_choices", skipped);
        }
        complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_types::{PortId, ProcessId, Time};

    fn port_step(p: usize, port: usize, idle_after: bool) -> StepInfo {
        StepInfo {
            time: Time::ZERO,
            process: ProcessId::new(p),
            port: Some(PortId::new(port)),
            was_idle: false,
            idle_after,
            is_process_step: true,
            b_violation: None,
        }
    }

    #[test]
    fn counter_counts_simple_sessions() {
        let mut counter = SessionCounter::new(2, 10);
        counter.observe(&port_step(0, 0, false));
        assert_eq!(counter.sessions(), 0);
        counter.observe(&port_step(1, 1, false));
        assert_eq!(counter.sessions(), 1, "both ports covered closes a session");
        counter.observe(&port_step(0, 0, false));
        counter.observe(&port_step(0, 0, false));
        assert_eq!(counter.sessions(), 1, "one port alone cannot close another");
        counter.observe(&port_step(1, 1, false));
        assert_eq!(counter.sessions(), 2);
    }

    #[test]
    fn counter_idling_step_counts_but_later_steps_do_not() {
        let mut counter = SessionCounter::new(2, 10);
        // p0's idling step still covers port 0…
        counter.observe(&port_step(0, 0, true));
        counter.observe(&port_step(1, 1, false));
        assert_eq!(counter.sessions(), 1);
        // …but its steps after idling never cover again.
        counter.observe(&port_step(0, 0, true));
        counter.observe(&port_step(1, 1, false));
        assert_eq!(counter.sessions(), 1);
    }

    #[test]
    fn counter_ignores_deliveries() {
        let mut counter = SessionCounter::new(1, 10);
        counter.observe(&StepInfo {
            time: Time::ZERO,
            process: ProcessId::new(0),
            port: None,
            was_idle: false,
            idle_after: false,
            is_process_step: false,
            b_violation: None,
        });
        assert_eq!(counter.sessions(), 0);
    }

    #[test]
    fn counter_saturates_at_s() {
        let mut counter = SessionCounter::new(1, 2);
        for _ in 0..5 {
            counter.observe(&port_step(0, 0, false));
        }
        assert_eq!(counter.sessions(), 2);
    }

    #[test]
    fn counter_permuted_hash_is_permutation_sensitive() {
        let mut counter = SessionCounter::new(3, 5);
        counter.observe(&port_step(0, 0, false));
        counter.observe(&port_step(1, 1, true));
        // Swapping processes 0 and 1 must rename both the covered port
        // and the idle process.
        let mut swapped = SessionCounter::new(3, 5);
        swapped.observe(&port_step(1, 1, false));
        swapped.observe(&port_step(0, 0, true));
        let hash = |c: &SessionCounter, sigma: &[usize]| {
            let mut h = FxHasher::default();
            c.hash_permuted(sigma, &mut h);
            h.finish()
        };
        assert_eq!(hash(&counter, &[1, 0, 2]), hash(&swapped, &[0, 1, 2]));
        assert_ne!(hash(&counter, &[0, 1, 2]), hash(&swapped, &[0, 1, 2]));
    }
}
