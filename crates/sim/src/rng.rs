//! Deterministic randomness helpers.
//!
//! Every randomized schedule or delay policy in this workspace is driven by a
//! seeded [`StdRng`], so experiments are exactly reproducible: the same seed
//! always yields the same admissible timed computation.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use session_types::Ratio;

/// Creates a deterministic random number generator from a seed.
///
/// # Examples
///
/// ```
/// use rand::RngExt;
///
/// let mut a = session_sim::seeded_rng(7);
/// let mut b = session_sim::seeded_rng(7);
/// assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws an exact rational uniformly from the `granularity + 1` evenly spaced
/// points of `[lo, hi]` (inclusive on both ends).
///
/// Rationals have no continuous uniform distribution, so we discretize: the
/// result is `lo + (hi - lo) * k / granularity` for a uniformly random
/// integer `k ∈ [0, granularity]`. Timing models only require membership in
/// the closed interval, which the discretization preserves exactly.
///
/// # Panics
///
/// Panics if `lo > hi` or `granularity == 0`.
pub fn ratio_in_range<R: Rng + ?Sized>(
    rng: &mut R,
    lo: Ratio,
    hi: Ratio,
    granularity: u32,
) -> Ratio {
    assert!(lo <= hi, "ratio_in_range requires lo <= hi");
    assert!(granularity > 0, "ratio_in_range requires granularity > 0");
    if lo == hi {
        return lo;
    }
    let k = rng.random_range(0..=granularity);
    lo + (hi - lo) * Ratio::new(k as i128, granularity as i128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..32).all(|_| a.random_range(0..u64::MAX) == b.random_range(0..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn ratio_in_range_stays_in_bounds() {
        let mut rng = seeded_rng(9);
        let lo = Ratio::new(1, 3);
        let hi = Ratio::new(7, 2);
        for _ in 0..1000 {
            let r = ratio_in_range(&mut rng, lo, hi, 64);
            assert!(r >= lo && r <= hi, "{r} out of [{lo}, {hi}]");
        }
    }

    #[test]
    fn ratio_in_range_degenerate_interval() {
        let mut rng = seeded_rng(0);
        let x = Ratio::new(5, 4);
        assert_eq!(ratio_in_range(&mut rng, x, x, 16), x);
    }

    #[test]
    fn ratio_in_range_hits_endpoints() {
        let mut rng = seeded_rng(3);
        let lo = Ratio::ZERO;
        let hi = Ratio::ONE;
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..500 {
            let r = ratio_in_range(&mut rng, lo, hi, 4);
            saw_lo |= r == lo;
            saw_hi |= r == hi;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn ratio_in_range_rejects_inverted_interval() {
        let mut rng = seeded_rng(0);
        let _ = ratio_in_range(&mut rng, Ratio::ONE, Ratio::ZERO, 4);
    }
}
