//! Positive/negative fixture coverage for every WSxxx check. Each
//! fixture is a mini-root mirroring the workspace layout, so the stock
//! [`Config::workspace`] policy applies unchanged.

use std::path::PathBuf;

use session_wslint::{checks, Config, Report, WsCode};

fn run_fixture(name: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    assert!(root.is_dir(), "missing fixture {name}");
    checks::run(&Config::workspace(root)).expect("fixture lints")
}

fn assert_fires(name: &str, code: WsCode) -> Report {
    let report = run_fixture(name);
    assert_eq!(report.exit_code(), 1, "{name} must exit non-zero");
    assert!(
        report.findings.iter().any(|f| f.code == code),
        "{name} must contain a {} finding:\n{}",
        code.code(),
        report.to_markdown()
    );
    report
}

fn assert_clean(name: &str) {
    let report = run_fixture(name);
    assert!(
        report.findings.is_empty(),
        "{name} must be clean:\n{}",
        report.to_markdown()
    );
    assert_eq!(report.exit_code(), 0);
}

#[test]
fn ws001_positive_raw_instant_now() {
    let report = assert_fires("ws001_positive", WsCode::Ws001);
    assert_eq!(report.findings[0].file, "src/main.rs");
    assert_eq!(report.findings[0].line, 5);
}

#[test]
fn ws001_negative_annotated_test_and_allowlisted() {
    assert_clean("ws001_negative");
}

#[test]
fn ws002_positive_unbounded_channel() {
    assert_fires("ws002_positive", WsCode::Ws002);
}

#[test]
fn ws002_negative_bounded_and_test_only() {
    assert_clean("ws002_negative");
}

#[test]
fn ws003_positive_ab_ba_cycle() {
    let report = assert_fires("ws003_positive", WsCode::Ws003);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == WsCode::Ws003)
        .expect("ws003 finding");
    assert!(
        f.message.contains('a') && f.message.contains('b'),
        "cycle names both locks: {}",
        f.message
    );
}

#[test]
fn ws003_negative_consistent_order_try_lock_and_drop() {
    assert_clean("ws003_negative");
}

#[test]
fn ws004_positive_bare_unwrap() {
    assert_fires("ws004_positive", WsCode::Ws004);
}

#[test]
fn ws004_negative_annotated_test_and_out_of_scope() {
    assert_clean("ws004_negative");
}

#[test]
fn ws005_positive_unmapped_and_unreferenced_variants() {
    let report = assert_fires("ws005_positive", WsCode::Ws005);
    let ws005: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.code == WsCode::Ws005)
        .collect();
    assert_eq!(ws005.len(), 2, "{}", report.to_markdown());
    assert!(ws005.iter().any(|f| f.message.contains("Unmapped")));
    assert!(ws005.iter().any(|f| f.message.contains("NoSection")));
}

#[test]
fn ws005_negative_fully_registered() {
    assert_clean("ws005_negative");
}

#[test]
fn ws006_positive_missing_negative_test() {
    let report = assert_fires("ws006_positive", WsCode::Ws006);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("negative") && f.message.contains("SA001")),
        "{}",
        report.to_markdown()
    );
}

#[test]
fn ws006_negative_both_directions_covered() {
    assert_clean("ws006_negative");
}

/// The regression the issue demands: the old
/// `grep -o 'serve\.[a-z_]+'` gate truncated the digit-bearing
/// `serve.sessions_shed2` to the registered `serve.sessions_shed` and
/// passed silently. The exact-string check must flag it.
#[test]
fn ws007_positive_digit_bearing_name_no_longer_slips_through() {
    let report = assert_fires("ws007_positive", WsCode::Ws007);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("serve.sessions_shed2")
                && f.file == "crates/serve/src/server.rs"),
        "digit-bearing emitted name must be flagged:\n{}",
        report.to_markdown()
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("serve.undocumented")),
        "registered-but-undocumented name must be flagged:\n{}",
        report.to_markdown()
    );
}

/// The flip side of the digit hole: the old grep *false-positived* on
/// registered digit-bearing names (`serve.close_lag_p99_ms` truncates
/// to an unregistered string). Exact matching accepts them.
#[test]
fn ws007_negative_registered_digit_name_is_clean() {
    assert_clean("ws007_negative");
}
