//! The synchronous shared-memory algorithm: no communication at all.

use session_smm::{JoinSemiLattice, Knowledge, SmProcess};
use session_types::VarId;

/// In the synchronous model every process steps exactly every `c2`, so the
/// steps at times `c2, 2c2, …, s·c2` form `s` sessions with no communication
/// whatsoever (\[2\]; Table 1 row 1). Each port process simply accesses its
/// port `s` times and idles.
///
/// # Examples
///
/// ```
/// use session_core::algorithms::SyncSmPort;
/// use session_smm::{Knowledge, SmProcess};
/// use session_types::VarId;
///
/// let mut p = SyncSmPort::new(VarId::new(0), 2);
/// assert!(!p.is_idle());
/// let _ = p.step(&Knowledge::new());
/// let _ = p.step(&Knowledge::new());
/// assert!(p.is_idle());
/// ```
#[derive(Clone, Debug)]
pub struct SyncSmPort {
    port_var: VarId,
    s: u64,
    steps: u64,
}

impl SyncSmPort {
    /// Creates the port process for a port realized by `port_var`, solving
    /// the `s`-session requirement.
    pub fn new(port_var: VarId, s: u64) -> SyncSmPort {
        SyncSmPort {
            port_var,
            s,
            steps: 0,
        }
    }

    /// Port steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }
}

impl SmProcess<Knowledge> for SyncSmPort {
    fn target(&self) -> VarId {
        self.port_var
    }

    fn step(&mut self, value: &Knowledge) -> Knowledge {
        if self.steps < self.s {
            self.steps += 1;
        }
        // Nothing to communicate: write the value back unchanged.
        let mut unchanged = Knowledge::bottom();
        unchanged.join(value);
        unchanged
    }

    fn is_idle(&self) -> bool {
        self.steps >= self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idles_after_exactly_s_steps() {
        let mut p = SyncSmPort::new(VarId::new(3), 3);
        for expected in 1..=3u64 {
            assert!(!p.is_idle());
            let _ = p.step(&Knowledge::new());
            assert_eq!(p.steps_taken(), expected);
        }
        assert!(p.is_idle());
        // Idle is absorbing; extra steps change nothing.
        let _ = p.step(&Knowledge::new());
        assert!(p.is_idle());
        assert_eq!(p.steps_taken(), 3);
    }

    #[test]
    fn writes_value_back_unchanged() {
        let mut p = SyncSmPort::new(VarId::new(0), 1);
        let input: Knowledge = [(session_types::ProcessId::new(7), 9)]
            .into_iter()
            .collect();
        let output = p.step(&input);
        assert_eq!(output, input);
    }

    #[test]
    fn targets_its_port_forever() {
        let mut p = SyncSmPort::new(VarId::new(5), 1);
        assert_eq!(p.target(), VarId::new(5));
        let _ = p.step(&Knowledge::new());
        assert_eq!(p.target(), VarId::new(5));
    }
}
