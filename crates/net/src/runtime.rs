//! The real-clock runtime: one OS thread per process.
//!
//! Each thread owns its algorithm state machine ([`session_mpm::MpProcess`]),
//! its transport endpoint, a [`Pacer`](crate::Pacer) and a seeded RNG. Per
//! iteration it advances the nominal clock, sleeps to the matching
//! wall-clock instant, drains the endpoint, consumes every packet whose
//! nominal delivery time has arrived, takes one algorithm step through the
//! same [`session_mpm::step_process`] the simulator engine uses, and
//! broadcasts any produced message with a nominal delay drawn from the
//! model's `[d1, d2]` window. Quiescence is detected through a shared idle
//! board; a step-count and wall-clock watchdog aborts runs that fail to
//! quiesce.
//!
//! Threads record their telemetry through a
//! [`session_obs::SharedRecorder`]; the merged per-run counters are
//! forwarded to the caller's [`Recorder`] after the threads join.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use session_core::system::build_mp_processes;
use session_core::SessionMsg;
use session_mpm::{step_process, Envelope, MpProcess};
use session_obs::{InMemoryRecorder, MetricsSnapshot, Recorder, SharedRecorder};
use session_sim::{seeded_rng, Trace};
use session_types::{Dur, ProcessId, Result, Time};

use crate::config::RealConfig;
use crate::merge::merge_trace;
use crate::pacer::{rule_for_process, Pacer};
use crate::transport::{ChanTransport, Endpoint, Packet, Transport, TransportKind};
use crate::udp::UdpTransport;
use session_pacing::{sample, GapRule};

/// One recorded algorithm step of one process, at its nominal time.
#[derive(Clone, Copy, Debug)]
pub struct StepRecord {
    /// Nominal step time.
    pub time: Time,
    /// Messages consumed from the delivery buffer at this step.
    pub received: usize,
    /// Whether the step broadcast a message.
    pub broadcast: bool,
    /// Whether the process was idle after the step.
    pub idle_after: bool,
}

/// One recorded point-to-point copy of a broadcast.
#[derive(Clone, Copy, Debug)]
pub struct SendRecord {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Nominal send time.
    pub sent_at: Time,
    /// Nominal delivery time.
    pub deliver_at: Time,
}

/// Everything one process thread observed, in step order.
#[derive(Debug, Default)]
pub struct ProcessLog {
    /// The process's steps.
    pub steps: Vec<StepRecord>,
    /// Every copy it sent.
    pub sends: Vec<SendRecord>,
    /// Packets whose physical arrival missed their nominal delivery time
    /// (consumed at a later step than an ideal network would allow).
    pub late_packets: u64,
}

/// The result of one real-clock run.
#[derive(Debug)]
pub struct RealRunOutcome {
    /// The reconstructed global trace, at nominal times — the object the
    /// conformance harness verifies.
    pub trace: Trace,
    /// `true` if every process quiesced before a watchdog fired.
    pub terminated: bool,
    /// Total algorithm steps across all processes.
    pub steps: u64,
    /// Total late packets across all processes.
    pub late_packets: u64,
    /// Physical duration of the run.
    pub wall_clock: Duration,
    /// The run's telemetry (counters, gauges, the pacer-lag histogram).
    pub metrics: MetricsSnapshot,
}

/// Builds a [`RealRunOutcome`] from per-process logs collected by an
/// external executor (the serve shards record the same `ProcessLog`
/// shape for sampled sessions and feed them back through this seam so
/// `verify_conformance` applies unchanged).
///
/// The returned outcome carries an empty metrics snapshot — external
/// executors report telemetry through their own recorders.
pub fn outcome_from_logs(
    n: usize,
    logs: &[ProcessLog],
    terminated: bool,
    wall_clock: Duration,
) -> RealRunOutcome {
    RealRunOutcome {
        trace: merge_trace(n, logs),
        terminated,
        steps: logs.iter().map(|l| l.steps.len() as u64).sum(),
        late_packets: logs.iter().map(|l| l.late_packets).sum(),
        wall_clock,
        metrics: InMemoryRecorder::new().into_snapshot(),
    }
}

struct Board {
    idle: Vec<AtomicBool>,
    stop: AtomicBool,
    failed: AtomicBool,
}

impl Board {
    fn new(n: usize) -> Board {
        Board {
            idle: (0..n).map(|_| AtomicBool::new(false)).collect(),
            stop: AtomicBool::new(false),
            failed: AtomicBool::new(false),
        }
    }

    fn all_idle(&self) -> bool {
        self.idle.iter().all(|b| b.load(Ordering::SeqCst))
    }
}

/// Runs `config` on real clocks and returns the reconstructed outcome.
///
/// Counters, gauges, and histograms recorded by the process threads are
/// forwarded into `recorder` after the run (histograms through
/// [`Recorder::merge_histogram`], so the pacer-lag distribution shows up
/// in a `session-cli stats` unified snapshot alongside the engine and
/// analyzer metrics).
///
/// # Errors
///
/// Returns [`session_types::Error::InvalidParams`] for an invalid or
/// infeasible configuration, and propagates transport setup and send
/// failures.
///
/// # Panics
///
/// Re-raises any panic of a process thread.
pub fn run_real(config: &RealConfig, recorder: &mut dyn Recorder) -> Result<RealRunOutcome> {
    config.validate()?;
    let bounds = config.bounds()?;
    let n = config.spec.n();
    let processes = build_mp_processes(&config.spec, &bounds)?;
    let endpoints = match config.transport {
        TransportKind::Chan => ChanTransport::new().endpoints(n)?,
        TransportKind::Udp => UdpTransport::new().endpoints(n)?,
    };
    let mut setup_rng = seeded_rng(config.seed);
    let rules: Vec<GapRule> = (0..n)
        .map(|i| rule_for_process(config, &bounds, i, &mut setup_rng))
        .collect();
    let delay_window = config.delay_window(&bounds);

    let board = Board::new(n);
    let shared = SharedRecorder::new(InMemoryRecorder::new());
    let start = Instant::now();
    // Every pacer shares one origin slightly in the future, so thread
    // spawn latency cannot make the very first steps late.
    let origin = start + Duration::from_millis(5);

    let logs: Vec<ProcessLog> = {
        let board = &board;
        std::thread::scope(|scope| {
            let handles: Vec<_> = processes
                .into_iter()
                .zip(endpoints)
                .zip(rules)
                .enumerate()
                .map(|(index, ((process, endpoint), rule))| {
                    let pacer = Pacer::new(rule, config.unit, origin);
                    let shared = shared.clone();
                    let worker = Worker {
                        index,
                        n,
                        process,
                        endpoint,
                        pacer,
                        seed: config.seed
                            ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)),
                        delay_window,
                        max_steps: config.max_steps_per_process,
                        deadline: config.deadline,
                        start,
                        board,
                        recorder: shared,
                    };
                    scope.spawn(move || worker.run())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect::<Result<Vec<ProcessLog>>>()
        })?
    };

    let wall_clock = start.elapsed();
    let trace = merge_trace(n, &logs);
    let steps: u64 = logs.iter().map(|l| l.steps.len() as u64).sum();
    let broadcasts: u64 = logs
        .iter()
        .map(|l| l.steps.iter().filter(|s| s.broadcast).count() as u64)
        .sum();
    let packets_sent: u64 = logs.iter().map(|l| l.sends.len() as u64).sum();
    let packets_consumed: u64 = logs
        .iter()
        .map(|l| l.steps.iter().map(|s| s.received as u64).sum::<u64>())
        .sum();
    let late_packets: u64 = logs.iter().map(|l| l.late_packets).sum();

    let mut backend = shared.into_inner();
    backend.counter("net.steps", steps);
    backend.counter("net.broadcasts", broadcasts);
    backend.counter("net.packets_sent", packets_sent);
    backend.counter("net.packets_consumed", packets_consumed);
    backend.counter("net.late_packets", late_packets);
    backend.gauge("net.wall_clock_ms", wall_clock.as_secs_f64() * 1e3);
    if let Some(end) = trace.end_time() {
        backend.gauge("net.logical_end_time", end.to_f64());
    }
    let metrics = backend.into_snapshot();
    for (name, value) in metrics.counters() {
        recorder.counter(name, value);
    }
    for (name, value) in metrics.gauges() {
        recorder.gauge(name, value);
    }
    for (name, hist) in metrics.histograms() {
        recorder.merge_histogram(name, hist);
    }

    Ok(RealRunOutcome {
        trace,
        terminated: !board.failed.load(Ordering::SeqCst),
        steps,
        late_packets,
        wall_clock,
        metrics,
    })
}

struct Worker<'a> {
    index: usize,
    n: usize,
    process: Box<dyn MpProcess<SessionMsg>>,
    endpoint: Box<dyn Endpoint>,
    pacer: Pacer,
    seed: u64,
    delay_window: (Dur, Dur),
    max_steps: u64,
    deadline: Duration,
    start: Instant,
    board: &'a Board,
    recorder: SharedRecorder<InMemoryRecorder>,
}

impl Worker<'_> {
    fn run(mut self) -> Result<ProcessLog> {
        let me = ProcessId::new(self.index);
        let mut rng = seeded_rng(self.seed);
        let mut log = ProcessLog::default();
        let mut pending: Vec<Packet> = Vec::new();
        let mut prev_time = Time::ZERO;
        loop {
            let t = self.pacer.next_time(&mut rng);
            let lag = self.pacer.sleep_until(t);
            self.recorder.observe("net.pacer_lag_ms", lag);
            if self.board.stop.load(Ordering::SeqCst) {
                break;
            }
            pending.extend(self.endpoint.drain());
            // Consume every packet whose nominal delivery time has
            // arrived, in (deliver_at, sender) order — the simulator's
            // FIFO tie-break.
            let mut inbox_packets: Vec<Packet> = Vec::new();
            pending.retain(|p| {
                if p.deliver_at <= t {
                    inbox_packets.push(*p);
                    false
                } else {
                    true
                }
            });
            inbox_packets.sort_by_key(|p| (p.deliver_at, p.from.index()));
            log.late_packets += inbox_packets
                .iter()
                .filter(|p| p.deliver_at < prev_time)
                .count() as u64;
            let inbox: Vec<Envelope<SessionMsg>> = inbox_packets
                .iter()
                .map(|p| Envelope::new(p.from, SessionMsg::new(p.value)))
                .collect();
            let result = step_process(self.process.as_mut(), inbox);
            log.steps.push(StepRecord {
                time: t,
                received: result.received,
                broadcast: result.broadcast.is_some(),
                idle_after: result.idle_after,
            });
            if let Some(payload) = result.broadcast {
                for q in 0..self.n {
                    let delay = sample(&mut rng, self.delay_window.0, self.delay_window.1);
                    let packet = Packet {
                        from: me,
                        value: payload.value,
                        sent_at: t,
                        deliver_at: t + delay,
                    };
                    self.endpoint.send(ProcessId::new(q), &packet)?;
                    log.sends.push(SendRecord {
                        from: me,
                        to: ProcessId::new(q),
                        sent_at: t,
                        deliver_at: t + delay,
                    });
                }
            }
            self.board.idle[self.index].store(result.idle_after, Ordering::SeqCst);
            if result.idle_after && self.board.all_idle() {
                self.board.stop.store(true, Ordering::SeqCst);
                break;
            }
            if log.steps.len() as u64 >= self.max_steps || self.start.elapsed() >= self.deadline {
                self.board.failed.store(true, Ordering::SeqCst);
                self.board.stop.store(true, Ordering::SeqCst);
                break;
            }
            prev_time = t;
        }
        Ok(log)
    }
}
