//! Quickstart: solve one `(s, n)`-session instance in two timing models and
//! inspect the run the way the paper measures it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use session_problem::core::report::{run_mp, run_sm, MpConfig, SmConfig};
use session_problem::core::verify::check_admissible;
use session_problem::sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_problem::smm::TreeSpec;
use session_problem::types::{Dur, Error, KnownBounds, SessionSpec, TimingModel};

fn main() -> Result<(), Error> {
    let spec = SessionSpec::new(5, 4, 2)?;
    println!("Solving the {spec}\n");

    // --- Periodic message passing: A(p). -----------------------------
    // Processes step at constant rates (2, 3, 5, 7) they do not know;
    // the only known constant is the delay bound d2 = 8.
    let bounds = KnownBounds::periodic(Dur::from_int(8))?;
    let mut schedule = FixedPeriods::new([2, 3, 5, 7].map(Dur::from_int).to_vec())?;
    let mut delays = ConstantDelay::new(Dur::from_int(8))?;
    let report = run_mp(
        MpConfig {
            model: TimingModel::Periodic,
            spec,
            bounds,
        },
        &mut schedule,
        &mut delays,
        RunLimits::default(),
    )?;
    check_admissible(&report.trace, &bounds)?;
    println!(
        "periodic MP  : {} sessions (needed {}) by t = {}",
        report.sessions,
        spec.s(),
        report.running_time.expect("terminated")
    );
    println!(
        "               {} steps, {} rounds, γ = {}",
        report.steps, report.rounds, report.gamma
    );

    // --- Semi-synchronous shared memory over the tree network. -------
    let c1 = Dur::from_int(1);
    let c2 = Dur::from_int(4);
    let bounds = KnownBounds::semi_synchronous(c1, c2, Dur::from_int(1))?;
    let tree = TreeSpec::build(spec.n(), spec.b());
    let mut schedule = FixedPeriods::uniform(spec.n() + tree.num_relays(), c2)?;
    let report = run_sm(
        SmConfig {
            model: TimingModel::SemiSynchronous,
            spec,
            bounds,
        },
        &mut schedule,
        RunLimits::default(),
    )?;
    check_admissible(&report.trace, &bounds)?;
    println!(
        "semi-sync SM : {} sessions (needed {}) by t = {}",
        report.sessions,
        spec.s(),
        report.running_time.expect("terminated")
    );
    println!(
        "               tree: {} relays, flood bound {} rounds",
        tree.num_relays(),
        tree.flood_rounds_bound()
    );

    println!("\nBoth traces re-verified: sessions recounted greedily, timing");
    println!("constraints checked exactly (rational time, no tolerances).");
    Ok(())
}
