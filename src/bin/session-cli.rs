//! Command-line front end: run any session-problem configuration and print
//! the verified report, run the static analyzer over the algorithm
//! registry (serially or across worker threads via `analyze threads=N`),
//! or export instrumented traces. See
//! `session_problem::cli::CliConfig::USAGE` and the `USAGE` constants of
//! the `analyze` / `trace` / `stats` subcommand modules.

use session_problem::analyze::AnalyzeConfig;
use session_problem::cli::CliConfig;
use session_problem::run_real::RunRealConfig;
use session_problem::serve_cmd::ServeCmdConfig;
use session_problem::stats::StatsConfig;
use session_problem::trace_cmd::TraceConfig;

fn fail(err: &dyn std::fmt::Display) -> ! {
    eprintln!("{err}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wants_help = |rest: &[String]| {
        rest.iter()
            .any(|a| a == "--help" || a == "-h" || a == "help")
    };
    match args.first().map(String::as_str) {
        Some("analyze") => {
            if wants_help(&args[1..]) {
                println!("{}", AnalyzeConfig::USAGE);
                return;
            }
            match AnalyzeConfig::parse(&args[1..]).and_then(|config| config.execute()) {
                Ok((report, code)) => {
                    print!("{report}");
                    if code != 0 {
                        std::process::exit(code);
                    }
                }
                Err(err) => fail(&err),
            }
        }
        Some("trace") => {
            if wants_help(&args[1..]) {
                println!("{}", TraceConfig::USAGE);
                return;
            }
            match TraceConfig::parse(&args[1..]).and_then(|config| config.execute()) {
                Ok(summary) => print!("{summary}"),
                Err(err) => fail(&err),
            }
        }
        Some("run-real") => {
            if wants_help(&args[1..]) {
                println!("{}", RunRealConfig::USAGE);
                return;
            }
            match RunRealConfig::parse(&args[1..]).and_then(|config| config.execute()) {
                Ok(report) => print!("{report}"),
                Err(err) => fail(&err),
            }
        }
        Some("serve") => {
            if wants_help(&args[1..]) {
                println!("{}", ServeCmdConfig::USAGE);
                return;
            }
            match ServeCmdConfig::parse(&args[1..]).and_then(|config| config.execute()) {
                Ok(report) => print!("{report}"),
                Err(err) => fail(&err),
            }
        }
        Some("stats") => {
            if wants_help(&args[1..]) {
                println!("{}", StatsConfig::USAGE);
                return;
            }
            match StatsConfig::parse(&args[1..]).and_then(|config| config.execute()) {
                Ok(report) => print!("{report}"),
                Err(err) => fail(&err),
            }
        }
        _ => {
            if wants_help(&args) {
                println!("{}", CliConfig::USAGE);
                return;
            }
            match CliConfig::parse(&args).and_then(|config| config.execute()) {
                Ok(report) => print!("{report}"),
                Err(err) => fail(&err),
            }
        }
    }
}
