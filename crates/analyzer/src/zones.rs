//! Zone-graph symbolic timing verifier: pairs the discrete control states
//! of [`AnyMachine`] with a [`Dbm`] over event clocks instead of concrete
//! firing times.
//!
//! The explicit explorer ([`crate::explore`]) enumerates every admissible
//! schedule over the scope's finite gap/delay *menus*; one state per
//! concrete time assignment. The zone walker replaces the menus with their
//! convex hulls — one clock per pending event, constrained to fire within
//! its scheduling window — so all schedules that produce the same event
//! *order* collapse into a single zone-graph node. The discrete semantics
//! stay bit-for-bit the machine's own (`zone_apply` shares the step body
//! with `apply`), which is what makes the SA012 cross-check meaningful.
//!
//! Clock layout: DBM clock 0 is the constant reference, clock 1 is the
//! global elapsed time `T` (never reset — its upper bound at the closing
//! step *is* the worst-case session-close time), and clocks 2.. track the
//! age of each pending event (one permanent clock per process step,
//! dynamic clocks for in-flight deliveries). Firing event `e` is the
//! standard zone transition: `up` (let time pass), intersect every pending
//! event's deadline invariant, apply `e`'s lower-window guard, then — if
//! the zone is non-empty — apply the discrete step and reset/retire/spawn
//! clocks.
//!
//! Three lints live here:
//! * `SA010` — a gap/delay menu entry whose guard zone is empty under the
//!   model window from [`KnownBounds`]: the branch can never fire in any
//!   admissible execution.
//! * `SA011` — the zone graph's worst-case session-close time, carried as
//!   a symbolic linear expression over `c1,c2,d1,d2` ([`SymExpr`]),
//!   exceeds the paper's Table 1 bound for the target.
//! * `SA012` — the differential cross-check: the zone walker fails to
//!   reach a discrete control state the explicit explorer reaches. The
//!   zone graph explores the convex hull of the menus — a superset of the
//!   explicit schedules, still inside the model window — so it must
//!   *cover* explicit reachability; a gap is a soundness alarm on one of
//!   the engines. (Zone-only controls are legitimate: hull-interior
//!   schedules the finite menu cannot realize.)
//!
//! The walker also re-checks the discrete lints (`SA001`–`SA005`): the
//! session counter, the step rules and lasso detection only consume
//! time-independent step facts, so the naive witnesses trip their codes
//! symbolically too.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use rustc_hash::{FxHashMap, FxHashSet, FxHasher};
use session_obs::Histogram;
use session_types::{Dur, KnownBounds, Ratio};

use crate::dbm::{Bound, Dbm};
use crate::diag::LintCode;
use crate::explore::{check_step, AnyMachine, SessionCounter};
use crate::machine::ZoneEvent;
use crate::scope::Scope;

/// DBM index of the global elapsed-time clock.
const T_CLOCK: usize = 1;
/// DBM index of the first event clock.
const CLOCK_BASE: usize = 2;

/// A symbolic duration: a linear expression over the timing parameters
/// `c1,c2,d1,d2` plus a rational constant. The walker threads these
/// alongside the numeric DBM bounds so `SA011` can report *why* the
/// worst case is what it is (e.g. `3*c2 + d2`), not just its value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SymExpr {
    k: Ratio,
    c1: Ratio,
    c2: Ratio,
    d1: Ratio,
    d2: Ratio,
}

impl SymExpr {
    /// The zero expression.
    pub const ZERO: SymExpr = SymExpr {
        k: Ratio::ZERO,
        c1: Ratio::ZERO,
        c2: Ratio::ZERO,
        d1: Ratio::ZERO,
        d2: Ratio::ZERO,
    };

    fn constant(v: Dur) -> SymExpr {
        SymExpr {
            k: v.as_ratio(),
            ..SymExpr::ZERO
        }
    }

    fn unit_c2() -> SymExpr {
        SymExpr {
            c2: Ratio::ONE,
            ..SymExpr::ZERO
        }
    }

    fn unit_d2() -> SymExpr {
        SymExpr {
            d2: Ratio::ONE,
            ..SymExpr::ZERO
        }
    }

    fn add(self, other: SymExpr) -> SymExpr {
        SymExpr {
            k: self.k + other.k,
            c1: self.c1 + other.c1,
            c2: self.c2 + other.c2,
            d1: self.d1 + other.d1,
            d2: self.d2 + other.d2,
        }
    }

    fn sub(self, other: SymExpr) -> SymExpr {
        SymExpr {
            k: self.k - other.k,
            c1: self.c1 - other.c1,
            c2: self.c2 - other.c2,
            d1: self.d1 - other.d1,
            d2: self.d2 - other.d2,
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut terms: Vec<String> = Vec::new();
        for (coef, name) in [
            (self.c1, "c1"),
            (self.c2, "c2"),
            (self.d1, "d1"),
            (self.d2, "d2"),
        ] {
            if coef.is_zero() {
                continue;
            }
            if coef == Ratio::ONE {
                terms.push(name.to_string());
            } else {
                terms.push(format!("{coef}*{name}"));
            }
        }
        if !self.k.is_zero() || terms.is_empty() {
            terms.push(format!("{}", self.k));
        }
        f.write_str(&terms.join(" + "))
    }
}

/// One pending event's clock: identity, scheduling window (relative to
/// the instant the event was scheduled) and the symbolic latest schedule
/// instant, from which `SA011`'s expression is accumulated.
#[derive(Clone)]
struct ClockInfo {
    ev: ZoneEvent,
    lo: Dur,
    hi: Dur,
    hi_sym: SymExpr,
    /// The latest possible instant this event was scheduled at (numeric),
    /// under the latest-firing schedule of its causes.
    sched_val: Dur,
    /// The same instant symbolically.
    sched_sym: SymExpr,
}

/// What one zone walk found.
#[derive(Debug)]
pub struct ZoneWalk {
    /// Zone-graph nodes expanded (the symbolic analogue of the explicit
    /// state count).
    pub zone_states: u64,
    /// Whether any path was cut at the depth budget.
    pub truncated: bool,
    /// Findings, one per code (first message wins), in code order.
    pub findings: Vec<(LintCode, String)>,
    /// The worst-case session-close time over all explored paths:
    /// numeric value and symbolic expression.
    pub worst_close: Option<(Dur, SymExpr)>,
    /// Reachable discrete control-state hashes (for the SA012
    /// cross-check).
    pub controls: FxHashSet<u64>,
    /// Guard-zone constructions (clone + `up` + invariants + emptiness
    /// check — one per attempted event firing): the walker's DBM work.
    pub dbm_closures: u64,
    /// Budget-sufficient memo reuses of a subtree's relative worst-close
    /// offset — the zone analogue of the explicit memo-hit count.
    pub worst_close_memo_hits: u64,
    /// Per-guard-zone construction times in microseconds. Empty unless
    /// the walk ran timed (`zone_walk_timed` with `timed = true`): plain
    /// walks never read the clock.
    pub dbm_close: Histogram,
}

/// What the mirror explicit walk (full menus, no reductions) reaches —
/// the other half of the SA012 cross-check.
#[derive(Debug)]
pub struct ExplicitReach {
    /// Explicit states expanded.
    pub states: u64,
    /// Whether any path was cut at the depth budget.
    pub truncated: bool,
    /// Reachable discrete control-state hashes.
    pub controls: FxHashSet<u64>,
}

/// The complete symbolic analysis of one target: dead-branch scan, zone
/// walk, bound comparison and explicit cross-check.
#[derive(Debug)]
pub struct SymbolicAnalysis {
    /// All findings (SA010, SA011, SA012 and the discrete codes the zone
    /// walk re-derives), in code order.
    pub findings: Vec<(LintCode, String)>,
    /// Zone-graph nodes expanded.
    pub zone_states: u64,
    /// Explicit states the mirror walk expanded.
    pub explicit_states: u64,
    /// Whether either walk was cut at the depth budget (SA011 within-bound
    /// verdicts and SA012 are then skipped as incomparable).
    pub truncated: bool,
    /// Worst-case session-close time: numeric value and rendered symbolic
    /// expression.
    pub worst_close: Option<(Dur, String)>,
    /// See [`ZoneWalk::dbm_closures`].
    pub dbm_closures: u64,
    /// See [`ZoneWalk::worst_close_memo_hits`].
    pub worst_close_memo_hits: u64,
    /// See [`ZoneWalk::dbm_close`].
    pub dbm_close: Histogram,
}

fn window_str(lo: Option<Dur>, hi: Option<Dur>) -> String {
    let lo = lo.map_or("0".to_string(), |v| v.to_string());
    match hi {
        Some(hi) => format!("[{lo}, {hi}]"),
        None => format!("[{lo}, inf)"),
    }
}

/// `SA010`: menu entries that can never fire under the model window. An
/// entry `v` is dead when the zone `x = v` intersected with the model's
/// admissible window (`[c1, c2]` for gaps, `[d1, d2]` for delays, from
/// [`KnownBounds`]) is empty — the scope menu promises a branch the
/// timing model never allows.
pub fn dead_branch_findings(scope: &Scope, bounds: &KnownBounds) -> Vec<(LintCode, String)> {
    let mut out = Vec::new();
    let entry_dead = |v: Dur, lo: Option<Dur>, hi: Option<Dur>| -> bool {
        let mut z = Dbm::zeroed(2);
        z.up();
        z.constrain(1, 0, Bound::Le(v));
        z.constrain(0, 1, Bound::Le(-v));
        if let Some(lo) = lo {
            z.constrain(0, 1, Bound::Le(-lo));
        }
        if let Some(hi) = hi {
            z.constrain(1, 0, Bound::Le(hi));
        }
        z.is_empty()
    };
    for &v in &scope.gaps {
        if entry_dead(v, bounds.c1(), bounds.c2()) {
            out.push((
                LintCode::DeadTimingBranch,
                format!(
                    "gap menu entry {v} lies outside the model step window {}: the branch can never fire",
                    window_str(bounds.c1(), bounds.c2())
                ),
            ));
        }
    }
    for &v in &scope.delays {
        if entry_dead(v, bounds.d1(), bounds.d2()) {
            out.push((
                LintCode::DeadTimingBranch,
                format!(
                    "delay menu entry {v} lies outside the model delivery window {}: the branch can never fire",
                    window_str(bounds.d1(), bounds.d2())
                ),
            ));
        }
    }
    out
}

fn gap_hi_sym(hi: Dur, bounds: &KnownBounds) -> SymExpr {
    if bounds.c2() == Some(hi) {
        SymExpr::unit_c2()
    } else {
        SymExpr::constant(hi)
    }
}

fn delay_hi_sym(hi: Dur, bounds: &KnownBounds) -> SymExpr {
    if bounds.d2() == Some(hi) {
        SymExpr::unit_d2()
    } else {
        SymExpr::constant(hi)
    }
}

struct MemoEntry {
    /// Largest remaining-depth budget this zone state was expanded with
    /// (`usize::MAX` once a fully explored expansion happened).
    budget: usize,
    /// The worst session-close found in the subtree below this zone,
    /// *relative* to the zone's latest-arrival time. The elapsed-time
    /// clock `T` is never reset and no guard mentions it, so a zone's
    /// future behavior depends only on its `T`-projected state (the memo
    /// key) and future close instants shift additively with the arrival
    /// time — a revisit arriving later reconstructs its absolute worst
    /// close as `arrival + offset` instead of re-expanding the subtree.
    close: Option<(Dur, SymExpr)>,
}

struct ZoneWalker<'a> {
    scope: &'a Scope,
    bounds: &'a KnownBounds,
    memo: FxHashMap<u64, MemoEntry>,
    on_path: FxHashSet<u64>,
    zone_states: u64,
    truncated: bool,
    findings: BTreeMap<LintCode, String>,
    worst_close: Option<(Dur, SymExpr)>,
    controls: FxHashSet<u64>,
    /// Whether guard-zone constructions are individually timed (only the
    /// recorded `stats` path asks for this; plain walks never read the
    /// clock).
    timed: bool,
    dbm_closures: u64,
    worst_close_memo_hits: u64,
    dbm_close: Histogram,
}

/// A clock's identity for the memo key: which event it tracks. The
/// delivery `seq` is an enumeration artifact (it numbers the order sends
/// happened to be explored in), so it is excluded — the clock's identity
/// is which message it ages.
fn clock_tag(c: &ClockInfo) -> (u8, usize, usize, u64) {
    match c.ev {
        ZoneEvent::Step(p) => (0, p, 0, 0),
        ZoneEvent::Deliver {
            to, from, value, ..
        } => (1, to, from, value),
    }
}

fn zone_key(
    machine: &AnyMachine,
    counter: &SessionCounter,
    dbm: &Dbm,
    clocks: &[ClockInfo],
) -> u64 {
    let mut h = FxHasher::default();
    machine.control_hash().hash(&mut h);
    counter.hash(&mut h);
    // Canonical clock order: the walker's clock vector is permuted by the
    // order events fired, which is irrelevant to the state itself. Sorting
    // by identity (and hashing the DBM under the same permutation) merges
    // zone states that differ only in that bookkeeping order.
    let mut order: Vec<usize> = (0..clocks.len()).collect();
    order.sort_by_key(|&i| (clock_tag(&clocks[i]), clocks[i].lo, clocks[i].hi));
    for &i in &order {
        let c = &clocks[i];
        clock_tag(c).hash(&mut h);
        c.lo.hash(&mut h);
        c.hi.hash(&mut h);
    }
    // The DBM under the canonical permutation, with the reference clock
    // kept and the ever-growing elapsed-time clock projected out.
    let indices: Vec<usize> = std::iter::once(0)
        .chain(order.iter().map(|&i| i + CLOCK_BASE))
        .collect();
    dbm.hash_permuted(&indices, &mut h);
    h.finish()
}

impl ZoneWalker<'_> {
    fn finding(&mut self, code: LintCode, message: String) {
        self.findings.entry(code).or_insert(message);
    }

    fn record_close(&mut self, val: Dur, sym: SymExpr) {
        match &self.worst_close {
            Some((best, _)) if *best >= val => {}
            _ => self.worst_close = Some((val, sym)),
        }
    }

    /// Mirrors `Explorer::dfs`: quiescent leaves, lasso detection on the
    /// current path, budget-aware memoization — over zone states instead
    /// of timed states. `t_sym` is the symbolic expression for the zone's
    /// latest-arrival time (the DBM's upper bound on the elapsed-time
    /// clock). Returns completeness plus the subtree's worst absolute
    /// session-close, for the parent's memo entry.
    fn dfs(
        &mut self,
        machine: AnyMachine,
        counter: &SessionCounter,
        dbm: Dbm,
        clocks: Vec<ClockInfo>,
        depth: usize,
        t_sym: SymExpr,
    ) -> (bool, Option<(Dur, SymExpr)>) {
        if machine.is_quiescent() {
            if counter.sessions() < self.scope.s {
                self.finding(
                    LintCode::SessionDeficit,
                    format!(
                        "admissible schedule reaches quiescence with {} of {} required sessions",
                        counter.sessions(),
                        self.scope.s
                    ),
                );
            }
            return (true, None);
        }
        let key = zone_key(&machine, counter, &dbm, &clocks);
        if self.on_path.contains(&key) {
            self.finding(
                LintCode::NonTermination,
                "admissible schedule loops without reaching quiescence (lasso)".to_string(),
            );
            return (true, None);
        }
        let remaining = self.scope.max_depth.saturating_sub(depth);
        let t_upper = dbm.upper(T_CLOCK).value().unwrap_or(Dur::ZERO);
        if let Some(entry) = self.memo.get(&key) {
            if entry.budget >= remaining {
                self.worst_close_memo_hits += 1;
                let complete = entry.budget == usize::MAX;
                // The stored close offset is relative to the arrival time;
                // this arrival reconstructs its absolute worst close (the
                // symbolic attribution is the first visit's — values are
                // exact either way).
                let close = entry
                    .close
                    .map(|(dv, dsym)| (t_upper + dv, t_sym.add(dsym)));
                if let Some((v, sym)) = close {
                    self.record_close(v, sym);
                }
                return (complete, close);
            }
        }
        if depth >= self.scope.max_depth {
            self.truncated = true;
            return (false, None);
        }
        self.zone_states += 1;
        self.controls.insert(machine.control_hash());
        self.on_path.insert(key);
        let mut complete = true;
        let mut close: Option<(Dur, SymExpr)> = None;
        for ci in 0..clocks.len() {
            let (sub_complete, sub_close) = self.fire(&machine, counter, &dbm, &clocks, ci, depth);
            complete &= sub_complete;
            close = max_close(close, sub_close);
        }
        self.on_path.remove(&key);
        let budget = if complete { usize::MAX } else { remaining };
        let rel = close.map(|(v, sym)| (v - t_upper, sym.sub(t_sym)));
        let entry = self
            .memo
            .entry(key)
            .or_insert(MemoEntry { budget, close: rel });
        entry.budget = entry.budget.max(budget);
        entry.close = max_close(entry.close, rel);
        (complete, close)
    }

    /// Fires the event on clock `ci`, if its guard zone is non-empty:
    /// `up`, intersect all deadline invariants, apply the lower-window
    /// guard, then step the machine and reschedule clocks. Returns
    /// completeness plus the worst absolute session-close at or below
    /// this transition.
    fn fire(
        &mut self,
        machine: &AnyMachine,
        counter: &SessionCounter,
        dbm: &Dbm,
        clocks: &[ClockInfo],
        ci: usize,
        depth: usize,
    ) -> (bool, Option<(Dur, SymExpr)>) {
        let idx = ci + CLOCK_BASE;
        self.dbm_closures += 1;
        // wslint: allow(ws001): DBM-closure profiling measures real elapsed time by design
        let close_started = self.timed.then(Instant::now);
        let mut z = dbm.clone();
        z.up();
        for (j, c) in clocks.iter().enumerate() {
            z.constrain(j + CLOCK_BASE, 0, Bound::Le(c.hi));
        }
        z.constrain(0, idx, Bound::Le(-clocks[ci].lo));
        let empty = z.is_empty();
        if let Some(started) = close_started {
            #[allow(clippy::cast_precision_loss)]
            self.dbm_close
                .record(started.elapsed().as_nanos() as f64 / 1000.0);
        }
        if empty {
            // The order is infeasible under the windows — not a cut, the
            // branch simply does not exist.
            return (true, None);
        }

        // The latest possible firing instant: the DBM's elapsed-time upper
        // bound is exact; the symbolic attribution picks the pending
        // deadline that realizes it (min over `sched + hi`).
        let fire_val = z
            .upper(T_CLOCK)
            .value()
            .expect("pending deadlines bound elapsed time");
        let mut fire_sym = SymExpr::constant(fire_val);
        let mut best: Option<Dur> = None;
        for c in clocks {
            let v = c.sched_val + c.hi;
            if best.is_none_or(|b| v < b) {
                best = Some(v);
                if v == fire_val {
                    fire_sym = c.sched_sym.add(c.hi_sym);
                }
            }
        }

        let mut next = machine.clone();
        let (info, scheduled) = next.zone_apply(clocks[ci].ev);
        let observed;
        let next_counter = if info.port.is_some() {
            let mut cloned = counter.clone();
            cloned.observe(&info);
            observed = cloned;
            &observed
        } else {
            counter
        };
        let mut close = None;
        if counter.sessions() < self.scope.s && next_counter.sessions() >= self.scope.s {
            self.record_close(fire_val, fire_sym);
            close = Some((fire_val, fire_sym));
        }
        if let Some((code, message)) = check_step(&info, &next, next_counter) {
            self.finding(code, message);
            return (true, close);
        }

        let mut new_clocks = clocks.to_vec();
        z.remove_clock(idx);
        new_clocks.remove(ci);
        for ev in scheduled {
            let (lo, hi, hi_sym) = match ev {
                ZoneEvent::Step(p) => {
                    let (lo, hi) = next.gap_window(p);
                    (lo, hi, gap_hi_sym(hi, self.bounds))
                }
                ZoneEvent::Deliver { .. } => {
                    let (lo, hi) = next
                        .delay_window()
                        .expect("deliveries only exist on message-passing machines");
                    (lo, hi, delay_hi_sym(hi, self.bounds))
                }
            };
            let di = z.add_clock();
            debug_assert_eq!(di, new_clocks.len() + CLOCK_BASE);
            new_clocks.push(ClockInfo {
                ev,
                lo,
                hi,
                hi_sym,
                sched_val: fire_val,
                sched_sym: fire_sym,
            });
        }
        let (complete, sub_close) =
            self.dfs(next, next_counter, z, new_clocks, depth + 1, fire_sym);
        (complete, max_close(close, sub_close))
    }
}

/// The later of two optional session-close records, by value.
fn max_close(a: Option<(Dur, SymExpr)>, b: Option<(Dur, SymExpr)>) -> Option<(Dur, SymExpr)> {
    match (a, b) {
        (Some((av, asym)), Some((bv, _))) if av >= bv => Some((av, asym)),
        (Some(_), Some(b)) => Some(b),
        (a, None) => a,
        (None, b) => b,
    }
}

/// Walks the zone graph of every root and returns the combined outcome.
/// Roots share the memo, exactly as the explicit explorer shares its memo
/// across first-step and period assignments.
pub fn zone_walk(roots: &[AnyMachine], scope: &Scope, bounds: &KnownBounds) -> ZoneWalk {
    zone_walk_timed(roots, scope, bounds, false)
}

/// [`zone_walk`] with per-guard-zone timing toggled by `timed`: the
/// recorded `stats` path turns it on to fill [`ZoneWalk::dbm_close`];
/// everything else leaves it off and never reads the clock.
pub fn zone_walk_timed(
    roots: &[AnyMachine],
    scope: &Scope,
    bounds: &KnownBounds,
    timed: bool,
) -> ZoneWalk {
    let mut walker = ZoneWalker {
        scope,
        bounds,
        memo: FxHashMap::default(),
        on_path: FxHashSet::default(),
        zone_states: 0,
        truncated: false,
        findings: BTreeMap::new(),
        worst_close: None,
        controls: FxHashSet::default(),
        timed,
        dbm_closures: 0,
        worst_close_memo_hits: 0,
        dbm_close: Histogram::new(),
    };
    for root in roots {
        let counter = SessionCounter::new(scope.n, scope.s);
        let windows = root.initial_windows();
        let dbm = Dbm::zeroed(CLOCK_BASE + windows.len());
        let clocks: Vec<ClockInfo> = windows
            .into_iter()
            .map(|(ev, lo, hi)| ClockInfo {
                ev,
                lo,
                hi,
                // First windows are concrete root choices, not model
                // parameters.
                hi_sym: SymExpr::constant(hi),
                sched_val: Dur::ZERO,
                sched_sym: SymExpr::ZERO,
            })
            .collect();
        walker.dfs(root.clone(), &counter, dbm, clocks, 0, SymExpr::ZERO);
    }
    ZoneWalk {
        zone_states: walker.zone_states,
        truncated: walker.truncated,
        findings: walker.findings.into_iter().collect(),
        worst_close: walker.worst_close,
        controls: walker.controls,
        dbm_closures: walker.dbm_closures,
        worst_close_memo_hits: walker.worst_close_memo_hits,
        dbm_close: walker.dbm_close,
    }
}

struct ControlCollector {
    s: u64,
    max_depth: usize,
    memo: FxHashMap<u64, usize>,
    on_path: FxHashSet<u64>,
    states: u64,
    truncated: bool,
    controls: FxHashSet<u64>,
}

impl ControlCollector {
    /// Mirrors `Explorer::dfs` / `explore_choice` over the full menu (no
    /// reductions): same leaf, lasso, budget-memo and prune-below-violation
    /// semantics, collecting control hashes at exactly the states the zone
    /// walker collects them (expanded, non-quiescent nodes).
    fn dfs(&mut self, machine: AnyMachine, counter: &SessionCounter, depth: usize) -> bool {
        if machine.is_quiescent() {
            return true;
        }
        let mut hasher = FxHasher::default();
        machine.state_hash().hash(&mut hasher);
        counter.hash(&mut hasher);
        let key = hasher.finish();
        if self.on_path.contains(&key) {
            return true;
        }
        let remaining = self.max_depth.saturating_sub(depth);
        if let Some(&budget) = self.memo.get(&key) {
            if budget >= remaining {
                return budget == usize::MAX;
            }
        }
        if depth >= self.max_depth {
            self.truncated = true;
            return false;
        }
        self.states += 1;
        self.controls.insert(machine.control_hash());
        self.on_path.insert(key);
        let mut complete = true;
        for choice in 0..machine.choice_count() {
            let mut next = machine.clone();
            let info = next.apply(choice, None);
            let observed;
            let next_counter = if info.port.is_some() {
                let mut cloned = counter.clone();
                cloned.observe(&info);
                observed = cloned;
                &observed
            } else {
                counter
            };
            if check_step(&info, &next, next_counter).is_some() {
                continue;
            }
            complete &= self.dfs(next, next_counter, depth + 1);
        }
        self.on_path.remove(&key);
        let budget = if complete { usize::MAX } else { remaining };
        let entry = self.memo.entry(key).or_insert(budget);
        *entry = (*entry).max(budget);
        complete
    }
}

/// The explicit side of the SA012 cross-check: a serial full-menu walk
/// (no POR, no symmetry — reductions must not be able to mask a
/// divergence) collecting the reachable control-hash set.
pub fn explicit_control_reach(roots: &[AnyMachine], scope: &Scope) -> ExplicitReach {
    let mut collector = ControlCollector {
        s: scope.s,
        max_depth: scope.max_depth,
        memo: FxHashMap::default(),
        on_path: FxHashSet::default(),
        states: 0,
        truncated: false,
        controls: FxHashSet::default(),
    };
    for root in roots {
        let counter = SessionCounter::new(scope.n, collector.s);
        collector.dfs(root.clone(), &counter, 0);
    }
    ExplicitReach {
        states: collector.states,
        truncated: collector.truncated,
        controls: collector.controls,
    }
}

/// The `SA012` detector on its own: the zone walker explores the convex
/// hull of the menus — a superset of the explicit schedules (so it must
/// reach every explicit control state) but still a subset of the model
/// window, so extra *zone-only* controls are legitimate
/// over-approximation, not a bug. Coverage, not equality: a finding is
/// raised exactly when the explicit explorer reached a control state the
/// zone walker did not.
pub fn coverage_finding(
    zone_controls: &FxHashSet<u64>,
    explicit_controls: &FxHashSet<u64>,
) -> Option<(LintCode, String)> {
    let explicit_only = explicit_controls.difference(zone_controls).count();
    if explicit_only == 0 {
        return None;
    }
    Some((
        LintCode::SymbolicDivergence,
        format!(
            "zone graph fails to cover explicit reachability: {explicit_only} control states reachable by the explicit explorer but not the zone walker ({} explicit vs {} symbolic)",
            explicit_controls.len(),
            zone_controls.len()
        ),
    ))
}

/// Runs the full symbolic pipeline for one target: SA010 dead-branch
/// scan, the zone walk (which re-derives the discrete codes), the SA011
/// comparison against the target's Table 1 bound (when the model bounds
/// session-close time at all), and the SA012 explicit/symbolic
/// cross-check.
pub fn analyze_symbolic(
    roots: &[AnyMachine],
    scope: &Scope,
    bounds: &KnownBounds,
    table1: Option<(Dur, String)>,
) -> SymbolicAnalysis {
    analyze_symbolic_timed(roots, scope, bounds, table1, false)
}

/// [`analyze_symbolic`] with per-guard-zone DBM timing toggled by `timed`
/// (see [`zone_walk_timed`]).
pub fn analyze_symbolic_timed(
    roots: &[AnyMachine],
    scope: &Scope,
    bounds: &KnownBounds,
    table1: Option<(Dur, String)>,
    timed: bool,
) -> SymbolicAnalysis {
    let mut findings = dead_branch_findings(scope, bounds);
    let walk = zone_walk_timed(roots, scope, bounds, timed);
    findings.extend(walk.findings.iter().cloned());

    if let (Some((bound_val, bound_desc)), Some((val, sym))) = (&table1, &walk.worst_close) {
        if val > bound_val {
            findings.push((
                LintCode::SymbolicBoundExceeded,
                format!(
                    "worst-case session-close time {sym} = {val} exceeds the Table 1 bound {bound_desc} = {bound_val}"
                ),
            ));
        }
    }

    let explicit = explicit_control_reach(roots, scope);
    if !walk.truncated && !explicit.truncated {
        findings.extend(coverage_finding(&walk.controls, &explicit.controls));
    }

    findings.sort_by_key(|(code, _)| *code);
    SymbolicAnalysis {
        findings,
        zone_states: walk.zone_states,
        explicit_states: explicit.states,
        truncated: walk.truncated || explicit.truncated,
        worst_close: walk.worst_close.map(|(v, sym)| (v, sym.to_string())),
        dbm_closures: walk.dbm_closures,
        worst_close_memo_hits: walk.worst_close_memo_hits,
        dbm_close: walk.dbm_close,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_types::TimingModel;

    fn d(v: i128) -> Dur {
        Dur::from_int(v)
    }

    fn scope(model: TimingModel, gaps: Vec<Dur>, delays: Vec<Dur>) -> Scope {
        Scope {
            n: 2,
            s: 2,
            b: 2,
            model,
            gaps,
            delays,
            max_depth: 24,
        }
    }

    #[test]
    fn sym_expr_renders_terms() {
        let e = SymExpr::unit_c2()
            .add(SymExpr::unit_c2())
            .add(SymExpr::unit_d2())
            .add(SymExpr::constant(d(3)));
        assert_eq!(e.to_string(), "2*c2 + d2 + 3");
        assert_eq!(SymExpr::ZERO.to_string(), "0");
        assert_eq!(SymExpr::unit_c2().to_string(), "c2");
    }

    #[test]
    fn sa010_positive_dead_gap_and_delay_entries() {
        // Step window [1, 2] but the menu promises a gap of 5; delivery
        // window [0, 1] but a delay of 4: both branches are dead.
        let bounds = KnownBounds::semi_synchronous(d(1), d(2), d(1)).expect("valid bounds");
        let sc = scope(
            TimingModel::SemiSynchronous,
            vec![d(1), d(5)],
            vec![Dur::ZERO, d(4)],
        );
        let findings = dead_branch_findings(&sc, &bounds);
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .all(|(code, _)| *code == LintCode::DeadTimingBranch));
        assert!(findings[0].1.contains("gap menu entry 5"));
        assert!(findings[1].1.contains("delay menu entry 4"));
    }

    #[test]
    fn sa010_negative_in_window_menus_are_alive() {
        let bounds = KnownBounds::semi_synchronous(d(1), d(3), d(1)).expect("valid bounds");
        let sc = scope(
            TimingModel::SemiSynchronous,
            vec![d(1), d(3)],
            vec![Dur::ZERO, d(1)],
        );
        assert!(dead_branch_findings(&sc, &bounds).is_empty());
        // Width-zero windows (c1 = c2) accept exactly the boundary entry.
        let exact = KnownBounds::synchronous(d(2), d(1)).expect("valid bounds");
        let sc = scope(TimingModel::Synchronous, vec![d(2)], vec![d(1)]);
        assert!(dead_branch_findings(&sc, &exact).is_empty());
    }
}
