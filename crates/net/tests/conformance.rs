//! End-to-end conformance: every MP timing model runs on real clocks and
//! the reconstructed trace verifies as an admissible timed computation
//! achieving at least `s` sessions.

use std::time::Duration;

use session_net::{run_real, verify_conformance, RealConfig, TransportKind};
use session_obs::{InMemoryRecorder, NullRecorder};
use session_rt::bridge::sporadic_gap_script;
use session_rt::sched::{simulate, Policy};
use session_rt::{PeriodicTask, TaskSet};
use session_types::{Dur, SessionSpec, Time, TimingModel};

fn fast(mut config: RealConfig) -> RealConfig {
    // 200 µs per logical unit keeps each run well under a second while
    // still forcing real sleeps between steps.
    config.unit = Duration::from_micros(200);
    config
}

fn run_and_verify(config: &RealConfig) {
    let outcome = run_real(config, &mut NullRecorder).expect("run failed");
    assert!(
        outcome.terminated,
        "{} run hit a watchdog instead of quiescing",
        config.model
    );
    let report = verify_conformance(&outcome, &config.spec, &config.bounds().unwrap());
    assert!(
        report.admissible,
        "{} run inadmissible: {:?}",
        config.model, report.violation
    );
    assert!(
        report.sessions >= config.spec.s(),
        "{} run achieved {} of {} sessions",
        config.model,
        report.sessions,
        config.spec.s()
    );
    assert!(report.solved, "{}", report.render());
    assert!(
        report.causally_clean,
        "{} run fired causality lints: {}",
        config.model,
        report.render()
    );
}

#[test]
fn every_model_solves_s3_n4_over_channels() {
    let spec = SessionSpec::new(3, 4, 2).unwrap();
    for model in TimingModel::ALL {
        run_and_verify(&fast(RealConfig::new(model, spec)));
    }
}

#[test]
fn seeds_vary_the_schedule_but_not_the_verdict() {
    let spec = SessionSpec::new(2, 3, 2).unwrap();
    for seed in [1, 7, 1234] {
        let mut config = fast(RealConfig::new(TimingModel::SemiSynchronous, spec));
        config.seed = seed;
        run_and_verify(&config);
    }
}

#[test]
fn sporadic_runs_under_an_rt_gap_script() {
    // Drive the sporadic pacer with job-completion gaps from an EDF
    // schedule, the paper's motivating workload (§1).
    let spec = SessionSpec::new(2, 2, 2).unwrap();
    let tasks = TaskSet::periodic(vec![
        PeriodicTask::new(Dur::from_int(3), Dur::ONE).unwrap(),
        PeriodicTask::new(Dur::from_int(4), Dur::ONE).unwrap(),
    ])
    .unwrap();
    let outcome = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(40)).unwrap();
    let mut config = fast(RealConfig::new(TimingModel::Sporadic, spec));
    let scripts = sporadic_gap_script(&tasks, &outcome, config.c1).unwrap();
    config.sporadic_gaps = Some(scripts);
    run_and_verify(&config);
}

#[test]
fn run_real_forwards_telemetry_to_the_caller() {
    let spec = SessionSpec::new(2, 2, 2).unwrap();
    let config = fast(RealConfig::new(TimingModel::Periodic, spec));
    let mut recorder = InMemoryRecorder::new();
    let outcome = run_real(&config, &mut recorder).unwrap();
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("net.steps"), outcome.steps);
    assert!(snap.counter("net.packets_sent") >= snap.counter("net.packets_consumed"));
    assert!(snap.gauges().any(|(name, _)| name == "net.wall_clock_ms"));
    // The pacer-lag histogram stays in the outcome's own metrics.
    assert!(outcome
        .metrics
        .histograms()
        .any(|(name, _)| name == "net.pacer_lag_ms"));
}

#[test]
fn udp_loopback_smoke() {
    // UDP may drop datagrams under pressure, so this is a smoke test at a
    // small scope rather than part of the deterministic matrix: the run
    // must quiesce and its nominal trace must stay admissible.
    let spec = SessionSpec::new(2, 2, 2).unwrap();
    let mut config = RealConfig::new(TimingModel::Periodic, spec);
    // Loopback delivery needs real slack: 2 ms per unit.
    config.unit = Duration::from_millis(2);
    config.transport = TransportKind::Udp;
    let outcome = run_real(&config, &mut NullRecorder).expect("udp run failed");
    assert!(outcome.terminated, "udp run hit a watchdog");
    let report = verify_conformance(&outcome, &config.spec, &config.bounds().unwrap());
    assert!(
        report.admissible,
        "udp run inadmissible: {:?}",
        report.violation
    );
    assert!(report.solved, "{}", report.render());
}

#[test]
fn watchdog_aborts_a_run_that_cannot_quiesce() {
    // An impossible deadline: the run must abort as failed, not hang.
    let spec = SessionSpec::new(3, 4, 2).unwrap();
    let mut config = fast(RealConfig::new(TimingModel::Asynchronous, spec));
    config.deadline = Duration::from_nanos(1);
    let outcome = run_real(&config, &mut NullRecorder).unwrap();
    assert!(!outcome.terminated);
    let report = verify_conformance(&outcome, &config.spec, &config.bounds().unwrap());
    assert!(!report.solved, "an aborted run must not count as solved");
}
