//! Real-clock execution runtime for the session-problem reproduction.
//!
//! Everything else in this workspace runs the paper's algorithms inside a
//! discrete-event simulator. This crate runs them *for real*: one OS
//! thread per process, real `thread::sleep` pacing, and broadcasts
//! carried by an actual transport — in-process channels
//! ([`ChanTransport`]) or UDP datagrams over the loopback interface
//! ([`UdpTransport`]). The bridge back to the paper is the
//! **conformance harness**: the run records nominal step and delivery
//! times, reconstructs a [`session_sim::Trace`], and replays it through
//! the same `check_admissible` / `count_sessions` stack the simulator
//! uses, proving that the real execution is an admissible timed
//! computation of its model achieving the required `s` sessions.
//!
//! Pipeline:
//!
//! 1. [`RealConfig`] — model, `(s, n)` instance, `[c1, c2]` / `[d1, d2]`
//!    windows, transport, seed, and wall-clock realization knobs;
//!    validated through the analyzer's `SA006 infeasible-timing` gate.
//! 2. [`run_real`] — spawns the threads, paces them with [`Pacer`],
//!    detects quiescence, and merges the per-thread logs into a trace
//!    ([`RealRunOutcome`]).
//! 3. [`verify_conformance`] — the verdict ([`ConformanceReport`]).
//!
//! # Examples
//!
//! ```
//! use session_net::{run_real, verify_conformance, RealConfig};
//! use session_obs::NullRecorder;
//! use session_types::{SessionSpec, TimingModel};
//!
//! let mut config = RealConfig::new(
//!     TimingModel::Synchronous,
//!     SessionSpec::new(2, 2, 2).unwrap(),
//! );
//! config.unit = std::time::Duration::from_micros(200);
//! let outcome = run_real(&config, &mut NullRecorder).unwrap();
//! let report = verify_conformance(&outcome, &config.spec, &config.bounds().unwrap());
//! assert!(report.solved, "{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod conformance;
mod merge;
mod pacer;
mod runtime;
mod transport;
mod udp;

pub use config::RealConfig;
pub use conformance::{verify_conformance, ConformanceReport};
pub use pacer::{rule_for_process, Pacer};
pub use runtime::{
    outcome_from_logs, run_real, ProcessLog, RealRunOutcome, SendRecord, StepRecord,
};
pub use session_pacing::{sample, GapRule, NominalClock, GRANULARITY};
pub use transport::{ChanTransport, Endpoint, Packet, Transport, TransportKind};
pub use udp::UdpTransport;
