//! The lint configuration: which paths each discipline covers.
//!
//! The defaults *are* the workspace policy (DESIGN.md §17). Fixture
//! tests reuse them by mirroring the workspace layout inside the fixture
//! root, so a fixture exercises exactly the configuration the real run
//! uses.

use std::path::PathBuf;

/// Path-scoped policy knobs for the WSxxx checks. All entries are
/// `/`-separated prefixes relative to the lint root.
#[derive(Debug, Clone)]
pub struct Config {
    /// Root of the tree to lint (the workspace root).
    pub root: PathBuf,
    /// WS001: module prefixes where raw wall-clock reads
    /// (`Instant::now` / `SystemTime::now`) are the module's job.
    pub wallclock_allow: Vec<String>,
    /// WS004: prefixes whose non-test panic paths must be annotated —
    /// the resident service/runtime code where a panic is an
    /// availability bug, not a one-shot CLI abort.
    pub panic_scope: Vec<String>,
    /// WS005/WS006: the lint-code registry source.
    pub diag_path: String,
    /// WS006: directories searched for `saXXX_positive_*` /
    /// `saXXX_negative_*` test fns.
    pub registry_test_dirs: Vec<String>,
    /// WS007: the metric-name registry source.
    pub metrics_path: String,
    /// WS007: the design document carrying the §15 metric table.
    pub design_path: String,
    /// WS007: the service sources whose emitted `serve.*` strings must
    /// be registered.
    pub serve_src: String,
}

impl Config {
    /// The workspace policy rooted at `root`.
    pub fn workspace(root: PathBuf) -> Config {
        Config {
            root,
            wallclock_allow: [
                // Pacing is the wall-clock discipline's enforcement
                // point; the net pacer/runtime pair translates nominal
                // schedules to real sleeps; the serve modules implement
                // the real-clock service itself (nominal-time recording
                // is structural there, see DESIGN.md §16); obs recorders
                // timestamp spans; bench measures wall time on purpose.
                "crates/pacing/",
                "crates/net/src/pacer.rs",
                "crates/net/src/runtime.rs",
                "crates/serve/src/server.rs",
                "crates/serve/src/shard.rs",
                "crates/serve/src/session.rs",
                "crates/serve/src/peer.rs",
                "crates/serve/src/client.rs",
                "crates/obs/src/memory.rs",
                "crates/obs/src/jsonl.rs",
                "crates/bench/",
            ]
            .map(str::to_owned)
            .to_vec(),
            panic_scope: [
                // Resident / multi-threaded runtime surfaces: a panic
                // here takes down a thread other sessions depend on.
                // Offline analysis tools (analyzer, sim, smm, mpm,
                // bench, …) are out of scope: a panic there aborts one
                // CLI invocation and nothing else (DESIGN.md §9, §17).
                "crates/serve/src/",
                "crates/net/src/",
                "crates/obs/src/",
                "crates/rt/src/",
                "crates/pacing/src/",
                "crates/wslint/src/",
                "src/",
            ]
            .map(str::to_owned)
            .to_vec(),
            diag_path: "crates/analyzer/src/diag.rs".to_owned(),
            registry_test_dirs: vec![
                "crates/analyzer/src".to_owned(),
                "crates/analyzer/tests".to_owned(),
            ],
            metrics_path: "crates/obs/src/metrics.rs".to_owned(),
            design_path: "DESIGN.md".to_owned(),
            serve_src: "crates/serve/src".to_owned(),
        }
    }

    /// Whether `rel_path` is under one of `prefixes`.
    pub fn matches(rel_path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| rel_path.starts_with(p.as_str()))
    }
}
