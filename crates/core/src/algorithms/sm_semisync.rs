//! The semi-synchronous shared-memory algorithm (§5): the cheaper of
//! step-counting and communicating, chosen from the known constants.

use session_smm::{JoinSemiLattice, Knowledge, SmProcess};
use session_types::{Dur, Error, ProcessId, Result, VarId};

use super::sm_async::AsyncSmPort;

/// Which arm of the `min{⌊c2/c1⌋ + 1, O(log_b n)}` upper bound the
/// algorithm executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmStrategy {
    /// Count own steps: `⌊c2/c1⌋ + 1` own steps span more than `c2` of real
    /// time, hence contain at least one step of every other process — one
    /// session per block with no communication.
    StepCounting,
    /// Communicate through the tree network, one flood per session, as in
    /// the asynchronous algorithm.
    Communicating,
}

/// The silent arm: `(s − 1) · (⌊c2/c1⌋ + 1) + 1` port steps, then idle.
///
/// Correctness: `B = ⌊c2/c1⌋ + 1` own steps take at least `B · c1 > c2`
/// real time, and every other process steps at least once in any window of
/// length `c2` — so each block of `B` own steps closes a session, and the
/// final `+1` step seals the `s`-th.
#[derive(Clone, Debug)]
pub struct StepCountingSmPort {
    port_var: VarId,
    needed: u64,
    steps: u64,
}

impl StepCountingSmPort {
    /// Creates the port process.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `c1 <= 0` or `c1 > c2`.
    pub fn new(port_var: VarId, s: u64, c1: Dur, c2: Dur) -> Result<StepCountingSmPort> {
        let block = block_size(c1, c2)?;
        Ok(StepCountingSmPort {
            port_var,
            needed: (s - 1) * block + 1,
            steps: 0,
        })
    }

    /// Total port steps this process will take before idling.
    pub fn steps_needed(&self) -> u64 {
        self.needed
    }
}

/// `B = ⌊c2/c1⌋ + 1`, the number of own steps that certainly spans `c2`.
pub(crate) fn block_size(c1: Dur, c2: Dur) -> Result<u64> {
    if !c1.is_positive() {
        return Err(Error::invalid_params("step counting requires c1 > 0"));
    }
    if c1 > c2 {
        return Err(Error::invalid_params("step counting requires c1 <= c2"));
    }
    Ok(c2.div_floor(c1) as u64 + 1)
}

impl SmProcess<Knowledge> for StepCountingSmPort {
    fn target(&self) -> VarId {
        self.port_var
    }

    fn step(&mut self, value: &Knowledge) -> Knowledge {
        if self.steps < self.needed {
            self.steps += 1;
        }
        let mut unchanged = Knowledge::bottom();
        unchanged.join(value);
        unchanged
    }

    fn is_idle(&self) -> bool {
        self.steps >= self.needed
    }
}

/// The semi-synchronous port process: picks the cheaper arm by comparing
/// the step-counting block `⌊c2/c1⌋ + 1` against the concrete tree-network
/// flood bound, realizing the `min{…}` of the Table 1 upper bound
/// `min{(⌊c2/c1⌋ + 1) · c2, O(log_b n) · c2} · (s − 1) + c2`.
#[derive(Clone, Debug)]
pub enum SemiSyncSmPort {
    /// Step-counting arm.
    Silent(StepCountingSmPort),
    /// Communicating arm (asynchronous wave protocol).
    Talking(AsyncSmPort),
}

impl SemiSyncSmPort {
    /// Creates the port process, choosing the strategy from the known
    /// constants: step counting iff `⌊c2/c1⌋ + 1 <= comm_rounds` (the tree
    /// network's flood bound in rounds).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `c1 <= 0` or `c1 > c2`.
    pub fn new(
        id: ProcessId,
        port_var: VarId,
        s: u64,
        n: usize,
        c1: Dur,
        c2: Dur,
        comm_rounds: u64,
    ) -> Result<SemiSyncSmPort> {
        let block = block_size(c1, c2)?;
        let strategy = if block <= comm_rounds {
            SmStrategy::StepCounting
        } else {
            SmStrategy::Communicating
        };
        SemiSyncSmPort::with_strategy(id, port_var, s, n, c1, c2, strategy)
    }

    /// Creates the port process with an explicit strategy (used by the
    /// crossover experiments to measure both arms).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if the step-counting arm is chosen
    /// with `c1 <= 0` or `c1 > c2`.
    pub fn with_strategy(
        id: ProcessId,
        port_var: VarId,
        s: u64,
        n: usize,
        c1: Dur,
        c2: Dur,
        strategy: SmStrategy,
    ) -> Result<SemiSyncSmPort> {
        Ok(match strategy {
            SmStrategy::StepCounting => {
                SemiSyncSmPort::Silent(StepCountingSmPort::new(port_var, s, c1, c2)?)
            }
            SmStrategy::Communicating => {
                SemiSyncSmPort::Talking(AsyncSmPort::new(id, port_var, s, n))
            }
        })
    }

    /// The strategy in effect.
    pub fn strategy(&self) -> SmStrategy {
        match self {
            SemiSyncSmPort::Silent(_) => SmStrategy::StepCounting,
            SemiSyncSmPort::Talking(_) => SmStrategy::Communicating,
        }
    }
}

impl SmProcess<Knowledge> for SemiSyncSmPort {
    fn target(&self) -> VarId {
        match self {
            SemiSyncSmPort::Silent(p) => p.target(),
            SemiSyncSmPort::Talking(p) => p.target(),
        }
    }

    fn step(&mut self, value: &Knowledge) -> Knowledge {
        match self {
            SemiSyncSmPort::Silent(p) => p.step(value),
            SemiSyncSmPort::Talking(p) => p.step(value),
        }
    }

    fn is_idle(&self) -> bool {
        match self {
            SemiSyncSmPort::Silent(p) => p.is_idle(),
            SemiSyncSmPort::Talking(p) => p.is_idle(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: i128) -> Dur {
        Dur::from_int(x)
    }

    #[test]
    fn block_size_exceeds_c2_over_c1() {
        assert_eq!(block_size(d(2), d(7)).unwrap(), 4); // floor(7/2)+1
        assert_eq!(block_size(d(1), d(1)).unwrap(), 2);
        assert!(block_size(d(0), d(1)).is_err());
        assert!(block_size(d(3), d(2)).is_err());
    }

    #[test]
    fn step_counter_takes_the_advertised_number_of_steps() {
        // s = 3, c1 = 1, c2 = 4 => B = 5, needed = 2*5 + 1 = 11.
        let mut p = StepCountingSmPort::new(VarId::new(0), 3, d(1), d(4)).unwrap();
        assert_eq!(p.steps_needed(), 11);
        for _ in 0..10 {
            let _ = p.step(&Knowledge::new());
            assert!(!p.is_idle());
        }
        let _ = p.step(&Knowledge::new());
        assert!(p.is_idle());
    }

    #[test]
    fn strategy_choice_follows_the_min() {
        // Small c2/c1: step counting wins against a 10-round flood.
        let p =
            SemiSyncSmPort::new(ProcessId::new(0), VarId::new(0), 2, 4, d(1), d(3), 10).unwrap();
        assert_eq!(p.strategy(), SmStrategy::StepCounting);
        // Huge c2/c1: communication wins.
        let p =
            SemiSyncSmPort::new(ProcessId::new(0), VarId::new(0), 2, 4, d(1), d(100), 10).unwrap();
        assert_eq!(p.strategy(), SmStrategy::Communicating);
    }

    #[test]
    fn explicit_strategy_is_respected() {
        let p = SemiSyncSmPort::with_strategy(
            ProcessId::new(0),
            VarId::new(0),
            2,
            4,
            d(1),
            d(3),
            SmStrategy::Communicating,
        )
        .unwrap();
        assert_eq!(p.strategy(), SmStrategy::Communicating);
    }

    #[test]
    fn delegation_matches_inner_process() {
        let mut p = SemiSyncSmPort::with_strategy(
            ProcessId::new(0),
            VarId::new(7),
            1,
            1,
            d(1),
            d(2),
            SmStrategy::StepCounting,
        )
        .unwrap();
        assert_eq!(p.target(), VarId::new(7));
        assert!(!p.is_idle());
        let _ = p.step(&Knowledge::new());
        assert!(p.is_idle()); // s = 1 => needed = 1
    }
}
