//! Positive for WS006: the registry itself is fine, but SA001 has no
//! negative test.

/// The trace lint codes.
pub enum LintCode {
    /// Sessions may interleave (§3.2).
    Interleaving,
}

impl LintCode {
    pub fn code(self) -> &'static str {
        match self {
            LintCode::Interleaving => "SA001",
        }
    }
}
