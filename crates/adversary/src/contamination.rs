//! The contamination analysis of Theorem 4.3 (periodic shared memory).
//!
//! The theorem's lower bound `⌊log_{2b−1}(2n−1)⌋ · c_min` rests on an
//! information-flow argument: slow one port process `p'` down and compare
//! the perturbed computation `α'` against the original round-robin
//! computation `α`, subround by subround. A variable is *contaminated* once
//! its value diverges from `α`; a process is contaminated once it reads a
//! contaminated variable. Lemma 4.4 bounds the spread:
//! `|P(t)| ≤ P_t = ((2b−1)^t − 1) / 2`, so after fewer than
//! `⌊log_{2b−1}(2n−1)⌋` subrounds some port process is still uncontaminated
//! — it behaves exactly as in `α` and idles before `p'` ever steps.
//!
//! This module runs both computations side by side (using the engines'
//! scripted execution and exact value comparison), computes the
//! contaminated sets, and checks the lemma's bound — executing the proof
//! rather than merely citing it.

use std::collections::BTreeSet;

use session_smm::SmEngine;
use session_types::{ProcessId, Result, Time, VarId};

/// `P_t = ((2b−1)^t − 1) / 2`, the Lemma 4.4 bound on the number of
/// contaminated processes after `t` subrounds.
pub fn lemma_bound(t: u32, b: usize) -> u128 {
    let base = (2 * b - 1) as u128;
    (base.pow(t) - 1) / 2
}

/// The contamination state after one subround.
#[derive(Clone, Debug)]
pub struct SubroundContamination {
    /// The subround index (1-based `t`).
    pub subround: u32,
    /// Variables whose values first diverged from `α` in this subround.
    pub newly_contaminated_vars: BTreeSet<VarId>,
    /// All processes contaminated by the end of this subround.
    pub contaminated_processes: BTreeSet<ProcessId>,
}

/// The full analysis.
#[derive(Clone, Debug)]
pub struct ContaminationReport {
    /// Per-subround contamination, in order.
    pub subrounds: Vec<SubroundContamination>,
    /// Whether `|P(t)| <= ((2b−1)^t − 1)/2` held at every subround.
    pub lemma_holds: bool,
    /// Port processes (other than the slowed one) never contaminated
    /// within the analyzed window.
    pub uncontaminated_ports: BTreeSet<ProcessId>,
    /// The fan-in bound used for the lemma.
    pub b: usize,
}

/// Runs the original round-robin computation and the perturbation in which
/// `slow` takes **no** steps within the analyzed window (the extreme of the
/// paper's slowed period `⌊log_{2b−1}(2n−1)⌋ · c_min`), tracking value
/// divergence for `subrounds` subrounds.
///
/// `factory` must build the same initial system each time; `n_ports` is the
/// number of port processes (ids `p0 .. p(n_ports-1)`).
///
/// # Errors
///
/// Propagates engine construction/execution errors.
pub fn contamination_analysis<F>(
    factory: F,
    n_ports: usize,
    slow: ProcessId,
    subrounds: u32,
    b: usize,
) -> Result<ContaminationReport>
where
    F: Fn() -> Result<SmEngine<session_smm::Knowledge>>,
{
    let mut original = factory()?;
    let mut perturbed = factory()?;
    let num_processes = original.num_processes();

    let mut contaminated_vars: BTreeSet<VarId> = BTreeSet::new();
    let mut contaminated_procs: BTreeSet<ProcessId> = BTreeSet::new();
    let mut report = Vec::with_capacity(subrounds as usize);
    let mut lemma_holds = true;

    for t in 1..=subrounds {
        let now = Time::from_int(t as i128);
        let mut newly: BTreeSet<VarId> = BTreeSet::new();
        for i in 0..num_processes {
            let p = ProcessId::new(i);
            // α: everyone steps, including the (not yet slowed) process.
            let var_a = original.process(p).target();
            original.run_scripted(&[(now, p)])?;
            let value_a = original.memory().value(var_a).clone();

            if p == slow {
                // α': p' does not step in this window. Its leaf variable
                // diverges the moment α would have had it write: mark it.
                if perturbed.memory().value(var_a) != &value_a && contaminated_vars.insert(var_a) {
                    newly.insert(var_a);
                }
                continue;
            }
            // α': p steps on its own target.
            let var_b = perturbed.process(p).target();
            if contaminated_vars.contains(&var_b) {
                contaminated_procs.insert(p);
            }
            perturbed.run_scripted(&[(now, p)])?;
            let value_b = perturbed.memory().value(var_b).clone();
            // Divergence from α (same process, same subround).
            let diverged = var_a != var_b || value_b != value_a;
            if diverged && contaminated_vars.insert(var_b) {
                newly.insert(var_b);
            }
        }
        if contaminated_procs.len() as u128 > lemma_bound(t, b) {
            lemma_holds = false;
        }
        report.push(SubroundContamination {
            subround: t,
            newly_contaminated_vars: newly,
            contaminated_processes: contaminated_procs.clone(),
        });
    }

    let uncontaminated_ports = (0..n_ports)
        .map(ProcessId::new)
        .filter(|p| *p != slow && !contaminated_procs.contains(p))
        .collect();

    Ok(ContaminationReport {
        subrounds: report,
        lemma_holds,
        uncontaminated_ports,
        b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_core::system::build_sm_system;
    use session_types::{Dur, KnownBounds, SessionSpec};

    #[test]
    fn lemma_bound_values() {
        // b = 2: base 3. P_1 = 1, P_2 = 4, P_3 = 13.
        assert_eq!(lemma_bound(1, 2), 1);
        assert_eq!(lemma_bound(2, 2), 4);
        assert_eq!(lemma_bound(3, 2), 13);
        // b = 3: base 5. P_2 = 12.
        assert_eq!(lemma_bound(2, 3), 12);
        assert_eq!(lemma_bound(0, 2), 0);
    }

    #[test]
    fn contamination_spread_respects_lemma_bound() {
        // A(p) over an 8-leaf binary tree; slow p7; analyze 6 subrounds.
        let spec = SessionSpec::new(3, 8, 2).unwrap();
        let bounds = KnownBounds::periodic(Dur::from_int(1)).unwrap();
        let factory = || build_sm_system(&spec, &bounds);
        let report = contamination_analysis(factory, 8, ProcessId::new(7), 6, spec.b()).unwrap();
        assert!(report.lemma_holds, "Lemma 4.4 bound violated: {report:#?}");
        // Contamination monotonically grows.
        for w in report.subrounds.windows(2) {
            assert!(w[0].contaminated_processes.len() <= w[1].contaminated_processes.len());
        }
    }

    #[test]
    fn early_subrounds_leave_some_port_uncontaminated() {
        // n = 8, b = 2: contamination depth floor(log3 15) = 2. In 1
        // subround at most P_1 = 1 process is contaminated, so at least 6
        // of the 7 other ports are clean.
        let spec = SessionSpec::new(2, 8, 2).unwrap();
        let bounds = KnownBounds::periodic(Dur::from_int(1)).unwrap();
        let factory = || build_sm_system(&spec, &bounds);
        let report = contamination_analysis(factory, 8, ProcessId::new(0), 1, spec.b()).unwrap();
        assert!(
            !report.uncontaminated_ports.is_empty(),
            "some port must still behave as in α"
        );
        assert!(report.subrounds[0].contaminated_processes.len() <= 1);
    }

    #[test]
    fn contamination_eventually_reaches_ports() {
        // Given enough subrounds the divergence must spread beyond p'
        // (A(p) announces counters that relays flood).
        let spec = SessionSpec::new(3, 4, 2).unwrap();
        let bounds = KnownBounds::periodic(Dur::from_int(1)).unwrap();
        let factory = || build_sm_system(&spec, &bounds);
        let report = contamination_analysis(factory, 4, ProcessId::new(3), 20, spec.b()).unwrap();
        assert!(report.lemma_holds);
        let final_contaminated = &report.subrounds.last().unwrap().contaminated_processes;
        assert!(
            !final_contaminated.is_empty(),
            "the slowed process's silence must eventually be observable"
        );
    }
}
