//! End-to-end runs of the Theorem 5.1 reorder-and-retime adversary.

use session_adversary::naive::naive_sm_system;
use session_adversary::retime::{block_constant, retiming_attack};
use session_core::system::build_sm_system;
use session_sim::RunLimits;
use session_types::{Dur, KnownBounds, SessionSpec};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

/// The witness: a silent algorithm that takes only `s` port steps —
/// terminating in `s · c2 < B · c2 · (s − 1)` — is defeated: the
/// construction yields an *admissible*, state-equivalent semi-synchronous
/// computation with fewer than `s` sessions.
#[test]
fn retiming_defeats_a_too_fast_algorithm() {
    let spec = SessionSpec::new(3, 8, 2).unwrap(); // floor(log2 8) = 3
    let c1 = d(1);
    let c2 = d(8); // B = min(4, 3) = 3
    assert_eq!(block_constant(&spec, c1, c2), 3);

    let factory = || naive_sm_system(&spec, spec.s());
    let outcome = retiming_attack(factory, &spec, c1, c2, RunLimits::default()).unwrap();

    assert!(outcome.admissible, "retimed computation must be admissible");
    assert!(
        outcome.same_global_state,
        "Claim 5.2: the reordering reaches the same global state"
    );
    assert!(
        outcome.sessions < spec.s(),
        "expected a session deficit, got {} of {}",
        outcome.sessions,
        spec.s()
    );
    assert!(outcome.defeated());
    assert!(outcome.blocks <= (spec.s() - 1) as usize + 1);
}

/// The honest semi-synchronous algorithm is slow enough that the very same
/// construction cannot find a deficit: the retimed computation is a real
/// admissible computation of a *correct* algorithm, so it must contain `s`
/// sessions.
#[test]
fn retiming_cannot_defeat_the_honest_algorithm() {
    let spec = SessionSpec::new(3, 8, 2).unwrap();
    let c1 = d(1);
    let c2 = d(8);
    let bounds = KnownBounds::semi_synchronous(c1, c2, d(1)).unwrap();

    let factory = || build_sm_system(&spec, &bounds);
    let outcome = retiming_attack(factory, &spec, c1, c2, RunLimits::default()).unwrap();

    assert!(outcome.admissible);
    assert!(outcome.same_global_state);
    assert!(
        outcome.sessions >= spec.s(),
        "a correct algorithm keeps its sessions under any admissible retiming: {} < {}",
        outcome.sessions,
        spec.s()
    );
    assert!(!outcome.defeated());
}

/// Larger instances: the deficit persists across sizes.
#[test]
fn retiming_defeats_witnesses_across_sizes() {
    for (s, n, c2) in [(2u64, 8usize, 8i128), (4, 16, 12), (3, 27, 16)] {
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let c1 = d(1);
        let c2 = d(c2);
        if block_constant(&spec, c1, c2) < 2 {
            continue;
        }
        let factory = || naive_sm_system(&spec, spec.s());
        let outcome = retiming_attack(factory, &spec, c1, c2, RunLimits::default()).unwrap();
        assert!(
            outcome.defeated(),
            "s={s}, n={n}: sessions {} of {} (admissible: {}, same state: {})",
            outcome.sessions,
            outcome.s,
            outcome.admissible,
            outcome.same_global_state
        );
    }
}

/// Degenerate parameters are rejected rather than silently mis-built.
#[test]
fn retiming_rejects_degenerate_parameters() {
    let spec = SessionSpec::new(3, 8, 2).unwrap();
    let factory = || naive_sm_system(&spec, spec.s());
    // c2 < 4 c1.
    assert!(retiming_attack(factory, &spec, d(2), d(6), RunLimits::default()).is_err());
    // log_b n too small for B >= 2: n = 2, b = 2 => floor(log2 2) = 1.
    let tiny = SessionSpec::new(3, 2, 2).unwrap();
    let factory = || naive_sm_system(&tiny, tiny.s());
    assert!(retiming_attack(factory, &tiny, d(1), d(8), RunLimits::default()).is_err());
}
