//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace is built in environments with no access to crates.io, so
//! the tiny slice of `rand` it actually uses is reimplemented here:
//!
//! * [`rngs::StdRng`] — a deterministic generator (xoshiro256++ seeded via
//!   SplitMix64, the same construction the real `rand` uses for
//!   `seed_from_u64`);
//! * [`SeedableRng::seed_from_u64`];
//! * [`RngExt::random_range`] over integer ranges.
//!
//! Determinism is the only contract the workspace relies on: the same seed
//! must always produce the same sequence (traces and experiments are
//! reproducible by seed), and distinct seeds should produce distinct
//! streams. Statistical quality beyond that is a non-goal, though
//! xoshiro256++ is a respectable generator in its own right.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64` words. Mirror of `rand::RngCore`, reduced to
/// the one method everything else can be derived from.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Marker mirroring `rand::Rng`; implemented for every [`RngCore`].
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension trait mirroring `rand::RngExt`: high-level sampling methods.
pub trait RngExt: RngCore {
    /// A uniform sample from `range`. Panics if the range is empty.
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// A generator constructible from a `u64` seed. Mirror of
/// `rand::SeedableRng`, reduced to `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// A range that knows how to draw a uniform sample from an [`RngCore`].
/// Mirror of `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Rejection zone keeps the sample exactly uniform.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if wide <= zone {
            return wide % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = uniform_below(rng, span);
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let offset = uniform_below(rng, span);
                ((start as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

// u64 and i128 cover the full i128 arithmetic width, so they get direct
// implementations instead of the widening macro above.
impl SampleRange<u64> for Range<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = u128::from(self.end) - u128::from(self.start);
        self.start + uniform_below(rng, span) as u64
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let span = u128::from(end) - u128::from(start) + 1;
        if span == 0 {
            return rng.next_u64(); // full u64 range
        }
        start + uniform_below(rng, span) as u64
    }
}

impl SampleRange<i128> for Range<i128> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(uniform_below(rng, span) as i128)
    }
}

impl SampleRange<i128> for RangeInclusive<i128> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let span = end.wrapping_sub(start) as u128;
        if span == u128::MAX {
            let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            return wide as i128; // full i128 range
        }
        start.wrapping_add(uniform_below(rng, span + 1) as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).all(|_| a.random_range(0..u64::MAX) == b.random_range(0..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn ranges_hit_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw = [false; 5];
        for _ in 0..500 {
            saw[rng.random_range(0..=4usize)] = true;
        }
        assert!(saw.iter().all(|&x| x));
    }

    #[test]
    fn half_open_range_excludes_end() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let x = rng.random_range(-3i128..3);
            assert!((-3..3).contains(&x));
        }
    }
}
