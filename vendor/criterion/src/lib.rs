//! Offline vendored stand-in for the `criterion` crate.
//!
//! This workspace is built in environments with no access to crates.io, so
//! the benchmark API its benches use is reimplemented as a small wall-clock
//! harness: each `Bencher::iter` target is warmed up, then timed over a
//! sample of batches, and the median per-iteration time is printed as
//!
//! ```text
//! group/id                time: [1.234 µs]  thrpt: [810.4 Kelem/s]
//! ```
//!
//! There are no plots, no statistics beyond the median, and no persisted
//! baselines — the point is that `cargo bench` (and `cargo clippy
//! --all-targets`) keep working offline with the same bench sources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every bench function.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Throughput annotation for a group's measurements.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Annotates measurements with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            median: None,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.median);
        self
    }

    /// Runs one benchmark over an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |bencher| f(bencher, input))
    }

    /// Ends the group. (A no-op beyond API compatibility.)
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, median: Option<Duration>) {
        let label = format!("{}/{}", self.name, id);
        match median {
            Some(median) => {
                let throughput = match self.throughput {
                    Some(Throughput::Elements(n)) if !median.is_zero() => {
                        format!(
                            "  thrpt: [{:.4} Melem/s]",
                            n as f64 / median.as_secs_f64() / 1e6
                        )
                    }
                    Some(Throughput::Bytes(n)) if !median.is_zero() => {
                        format!(
                            "  thrpt: [{:.4} MiB/s]",
                            n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
                        )
                    }
                    _ => String::new(),
                };
                println!("{label:<48} time: [{median:.2?}]{throughput}");
            }
            None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// Times a closure. Passed to every bench target.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    median: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, storing the median per-iteration time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget elapses, estimating the
        // per-iteration cost so each sample batch is sized sensibly.
        let warm_start = Instant::now();
        let mut iterations: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            iterations += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iterations.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / u32::try_from(batch).unwrap_or(u32::MAX));
        }
        samples.sort_unstable();
        self.median = Some(samples[samples.len() / 2]);
    }
}

/// Declares a group of bench functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3))
            .throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("add", 1), |b| {
            b.iter(|| black_box(1u64) + black_box(2u64));
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sm", 4).to_string(), "sm/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
