//! Negative: consistent order, try_lock fallbacks, and drop-released
//! guards never form a cycle.
use std::sync::Mutex;

pub struct State {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

impl State {
    pub fn forward(&self) {
        if let Ok(ga) = self.a.lock() {
            if let Ok(gb) = self.b.lock() {
                let _ = (ga, gb);
            }
        }
    }

    pub fn forward_again(&self) {
        if let Ok(ga) = self.a.lock() {
            if let Ok(gb) = self.b.lock() {
                let _ = (ga, gb);
            }
        }
    }

    pub fn try_then_block(&self) {
        // try_lock never blocks, so this is not a b-before-a edge.
        if let Ok(gb) = self.b.try_lock() {
            let _ = gb;
        }
        if let Ok(ga) = self.a.lock() {
            let _ = ga;
        }
    }

    pub fn sequential(&self) {
        let gb = self.b.lock();
        drop(gb);
        let ga = self.a.lock();
        drop(ga);
    }
}

fn main() {}
