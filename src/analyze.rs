//! The `session-cli analyze` subcommand: run the exhaustive small-scope
//! model checker over named targets (or all of them) and print a lint
//! report.
//!
//! ```text
//! session-cli analyze --all
//! session-cli analyze NaivePeriodicSm format=csv
//! session-cli analyze --all allow=SA005 warn=SA003
//! session-cli analyze --list
//! ```
//!
//! Exit status (returned by [`AnalyzeConfig::execute`], applied by the
//! binary): `0` when no deny-severity finding fired, `1` when at least one
//! did, `2` on usage errors.

use session_analyzer::{analyze_target, target_names, LintCode, LintConfig, Report, Severity};
use session_types::{Error, Result};

/// Output format for the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalyzeFormat {
    /// GitHub-flavored markdown tables (the bench-report dialect).
    Markdown,
    /// `code,severity,target,scope,message` rows.
    Csv,
}

/// A fully parsed `analyze` command line.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Targets to analyze, in registry order.
    pub targets: Vec<String>,
    /// Output format.
    pub format: AnalyzeFormat,
    /// Per-rule severity overrides.
    pub lints: LintConfig,
    /// When true, print the target registry and exit.
    pub list: bool,
}

impl AnalyzeConfig {
    /// The usage string printed on parse errors.
    pub const USAGE: &'static str = "\
usage: session-cli analyze [--all | TARGET ...] [key=value ...]
  --all                 analyze every registered target
  --list                print the registered target names and exit
  format=md|csv         report format (default md)
  allow=CODE[,CODE...]  suppress rules (SAxxx code or rule name)
  warn=CODE[,CODE...]   report rules without failing
  deny=CODE[,CODE...]   restore rules to failing (the default)
targets: the ten paper algorithms (clean) and three naive witnesses
(flagged); run `session-cli analyze --list` for the names.";

    /// Parses the arguments after the `analyze` keyword.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] (carrying a usage hint) on unknown
    /// targets, codes, formats or options, and when no target is selected.
    pub fn parse<I, S>(args: I) -> Result<AnalyzeConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let bad = |msg: &str| Error::invalid_params(format!("{msg}\n{}", AnalyzeConfig::USAGE));
        let mut all = false;
        let mut list = false;
        let mut targets: Vec<String> = Vec::new();
        let mut format = AnalyzeFormat::Markdown;
        let mut lints = LintConfig::new();

        let set_codes = |lints: &mut LintConfig, value: &str, severity: Severity| {
            for part in value.split(',') {
                let code = LintCode::parse(part)
                    .ok_or_else(|| bad(&format!("unknown lint code `{part}`")))?;
                lints.set(code, severity);
            }
            Ok::<(), Error>(())
        };

        for arg in args {
            let arg = arg.as_ref();
            match arg.split_once('=') {
                Some(("format", value)) => {
                    format = match value {
                        "md" | "markdown" => AnalyzeFormat::Markdown,
                        "csv" => AnalyzeFormat::Csv,
                        other => return Err(bad(&format!("unknown format `{other}`"))),
                    }
                }
                Some(("allow", value)) => set_codes(&mut lints, value, Severity::Allow)?,
                Some(("warn", value)) => set_codes(&mut lints, value, Severity::Warn)?,
                Some(("deny", value)) => set_codes(&mut lints, value, Severity::Deny)?,
                Some((other, _)) => return Err(bad(&format!("unknown option `{other}`"))),
                None if arg == "--all" => all = true,
                None if arg == "--list" => list = true,
                None => {
                    if !target_names().contains(&arg) {
                        return Err(bad(&format!("unknown target `{arg}`")));
                    }
                    targets.push(arg.to_string());
                }
            }
        }

        if all {
            targets = target_names().iter().map(ToString::to_string).collect();
        } else if targets.is_empty() && !list {
            return Err(bad("select targets by name or pass --all"));
        }
        Ok(AnalyzeConfig {
            targets,
            format,
            lints,
            list,
        })
    }

    /// Runs the selected explorations and renders the report. The second
    /// component is `true` when a deny-severity finding fired (the binary
    /// exits `1`).
    pub fn execute(&self) -> (String, bool) {
        if self.list {
            let mut out = String::new();
            for name in target_names() {
                out.push_str(name);
                out.push('\n');
            }
            return (out, false);
        }
        let mut report = Report::default();
        for name in &self.targets {
            let target = analyze_target(name).expect("parse validated the target names");
            report.merge(target);
        }
        let rendered = match self.format {
            AnalyzeFormat::Markdown => report.to_markdown(&self.lints),
            AnalyzeFormat::Csv => report.to_csv(&self.lints),
        };
        (rendered, report.has_denials(&self.lints))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_the_whole_registry() {
        let config = AnalyzeConfig::parse(["--all"]).unwrap();
        assert_eq!(config.targets.len(), 13);
        assert_eq!(config.format, AnalyzeFormat::Markdown);
    }

    #[test]
    fn named_targets_and_format_parse() {
        let config = AnalyzeConfig::parse(["NaivePeriodicSm", "SyncSm", "format=csv"]).unwrap();
        assert_eq!(config.targets, vec!["NaivePeriodicSm", "SyncSm"]);
        assert_eq!(config.format, AnalyzeFormat::Csv);
    }

    #[test]
    fn severity_overrides_parse_by_code_and_name() {
        let config = AnalyzeConfig::parse(["--all", "allow=SA005", "warn=stale-evidence"]).unwrap();
        assert_eq!(
            config.lints.severity(LintCode::NonTermination),
            Severity::Allow
        );
        assert_eq!(
            config.lints.severity(LintCode::StaleEvidence),
            Severity::Warn
        );
        assert_eq!(
            config.lints.severity(LintCode::SessionDeficit),
            Severity::Deny
        );
    }

    #[test]
    fn bad_arguments_are_rejected_with_usage() {
        for bad in ["NoSuchTarget", "format=xml", "allow=SA999", "frobnicate=1"] {
            let err = AnalyzeConfig::parse([bad]).unwrap_err();
            assert!(
                err.to_string().contains("usage: session-cli analyze"),
                "`{bad}` should fail with usage, got: {err}"
            );
        }
        assert!(AnalyzeConfig::parse(Vec::<String>::new()).is_err());
    }

    #[test]
    fn list_prints_the_registry_without_exploring() {
        let config = AnalyzeConfig::parse(["--list"]).unwrap();
        let (out, deny) = config.execute();
        assert!(out.contains("NaiveSporadicMp"));
        assert!(!deny);
    }

    #[test]
    fn analyzing_a_witness_denies_and_allow_suppresses() {
        let config = AnalyzeConfig::parse(["NaivePeriodicSm"]).unwrap();
        let (out, deny) = config.execute();
        assert!(deny, "the witness must fail the run");
        assert!(out.contains("SA001"), "{out}");
        let config = AnalyzeConfig::parse(["NaivePeriodicSm", "allow=SA001,SA005"]).unwrap();
        let (out, deny) = config.execute();
        assert!(!deny, "allow must clear the exit status");
        assert!(out.contains("No findings."), "{out}");
    }

    #[test]
    fn clean_target_renders_markdown_summary() {
        let config = AnalyzeConfig::parse(["SyncSm"]).unwrap();
        let (out, deny) = config.execute();
        assert!(!deny);
        assert!(
            out.contains("| target | states explored | findings |"),
            "{out}"
        );
        assert!(out.contains("| SyncSm |"), "{out}");
    }
}
