//! Negative: bounded channels everywhere; unbounded only in tests.

fn main() {
    let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(64);
    let _ = (tx, rx);
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_in_tests_is_exempt() {
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        let _ = (tx, rx);
    }
}
