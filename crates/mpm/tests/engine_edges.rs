//! Edge-case and failure-injection tests for the message-passing engine.

use session_mpm::{Envelope, MpEngine, MpProcess};
use session_sim::{ConstantDelay, ExplicitSchedule, FixedPeriods, RunLimits, StepKind};
use session_types::{Dur, PortId, ProcessId, Time};

/// Broadcasts its own id value once, then echoes nothing; idles on demand.
#[derive(Debug)]
struct Once {
    sent: bool,
    idle_after_steps: u64,
    steps: u64,
}

impl MpProcess<u32> for Once {
    fn step(&mut self, _inbox: Vec<Envelope<u32>>) -> Option<u32> {
        self.steps += 1;
        if !self.sent {
            self.sent = true;
            Some(7)
        } else {
            None
        }
    }
    fn is_idle(&self) -> bool {
        self.steps >= self.idle_after_steps
    }
}

fn once(idle_after_steps: u64) -> Box<dyn MpProcess<u32>> {
    Box::new(Once {
        sent: false,
        idle_after_steps,
        steps: 0,
    })
}

fn ports(n: usize) -> Vec<(ProcessId, PortId)> {
    (0..n)
        .map(|i| (ProcessId::new(i), PortId::new(i)))
        .collect()
}

#[test]
fn termination_drops_pending_deliveries_without_corruption() {
    // Both processes idle at step 1; their broadcasts (delay 100) are still
    // in flight when the run stops. The trace must show the sends as
    // undelivered rather than panicking or inventing deliveries.
    let mut engine = MpEngine::new(vec![once(1), once(1)], ports(2)).unwrap();
    let mut sched = FixedPeriods::uniform(2, Dur::ONE).unwrap();
    let mut delays = ConstantDelay::new(Dur::from_int(100)).unwrap();
    let outcome = engine
        .run(&mut sched, &mut delays, RunLimits::default())
        .unwrap();
    assert!(outcome.terminated);
    assert_eq!(outcome.trace.messages().len(), 4); // 2 broadcasts × 2 recipients
    assert!(outcome
        .trace
        .messages()
        .iter()
        .all(|m| m.delivered_at.is_none()));
}

#[test]
fn deliveries_between_steps_accumulate_in_the_buffer() {
    // p1 steps rarely; p0's early broadcast must wait in p1's buffer and
    // arrive in full at p1's next step.
    let mut scripted = std::collections::BTreeMap::new();
    scripted.insert(ProcessId::new(0), vec![Time::from_int(1)]);
    scripted.insert(ProcessId::new(1), vec![Time::from_int(50)]);
    let mut sched = ExplicitSchedule::new(scripted, Dur::from_int(100)).unwrap();
    let mut engine = MpEngine::new(vec![once(1), once(1)], ports(2)).unwrap();
    let mut delays = ConstantDelay::new(Dur::from_int(2)).unwrap();
    let outcome = engine
        .run(&mut sched, &mut delays, RunLimits::default())
        .unwrap();
    let p1_step = outcome
        .trace
        .events()
        .iter()
        .find(|e| e.process == ProcessId::new(1) && matches!(e.kind, StepKind::MpStep { .. }))
        .expect("p1 stepped");
    assert_eq!(p1_step.time, Time::from_int(50));
    match p1_step.kind {
        StepKind::MpStep { received, .. } => {
            assert_eq!(received, 1, "p0's broadcast waited in the buffer");
        }
        _ => unreachable!(),
    }
    // The recorded delay is 2, not 49: buffer time does not count (§2.1.2).
    let to_p1 = outcome
        .trace
        .messages()
        .iter()
        .find(|m| m.to == ProcessId::new(1) && m.from == ProcessId::new(0))
        .unwrap();
    assert_eq!(to_p1.delay(), Some(Dur::from_int(2)));
}

#[test]
fn single_process_system_self_delivers() {
    let mut engine = MpEngine::new(vec![once(3)], ports(1)).unwrap();
    let mut sched = FixedPeriods::uniform(1, Dur::ONE).unwrap();
    let mut delays = ConstantDelay::new(Dur::ONE).unwrap();
    let outcome = engine
        .run(&mut sched, &mut delays, RunLimits::default())
        .unwrap();
    assert!(outcome.terminated);
    assert_eq!(outcome.trace.messages().len(), 1);
    let m = &outcome.trace.messages()[0];
    assert_eq!(m.from, m.to);
    assert_eq!(m.delay(), Some(Dur::ONE));
    // Received at the step after delivery.
    let received_any = outcome
        .trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, StepKind::MpStep { received, .. } if received > 0));
    assert!(received_any);
}

#[test]
fn zero_delay_messages_arrive_at_the_next_step_not_the_same_one() {
    let mut engine = MpEngine::new(vec![once(4)], ports(1)).unwrap();
    let mut sched = FixedPeriods::uniform(1, Dur::from_int(5)).unwrap();
    let mut delays = ConstantDelay::new(Dur::ZERO).unwrap();
    let outcome = engine
        .run(&mut sched, &mut delays, RunLimits::default())
        .unwrap();
    let steps: Vec<(Time, usize)> = outcome
        .trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            StepKind::MpStep { received, .. } => Some((e.time, received)),
            _ => None,
        })
        .collect();
    // Step 1 (t=5) sends; the self-message is delivered at t=5 but the
    // sending step has already consumed its (empty) buffer: it shows up at
    // step 2 (t=10).
    assert_eq!(steps[0], (Time::from_int(5), 0));
    assert_eq!(steps[1], (Time::from_int(10), 1));
}

#[test]
fn port_of_unassigned_processes_is_none() {
    // 3 processes, only 2 ports: the third is infrastructure.
    let engine = MpEngine::new(vec![once(1), once(1), once(1)], ports(2)).unwrap();
    assert_eq!(engine.port_of(ProcessId::new(0)), Some(PortId::new(0)));
    assert_eq!(engine.port_of(ProcessId::new(2)), None);
}

#[test]
fn quiescence_watches_only_port_processes() {
    // The non-port process never idles; the run must still terminate once
    // the two port processes do.
    #[derive(Debug)]
    struct Forever;
    impl MpProcess<u32> for Forever {
        fn step(&mut self, _inbox: Vec<Envelope<u32>>) -> Option<u32> {
            None
        }
        fn is_idle(&self) -> bool {
            false
        }
    }
    let mut engine = MpEngine::new(vec![once(1), once(1), Box::new(Forever)], ports(2)).unwrap();
    let mut sched = FixedPeriods::uniform(3, Dur::ONE).unwrap();
    let mut delays = ConstantDelay::new(Dur::ZERO).unwrap();
    let outcome = engine
        .run(&mut sched, &mut delays, RunLimits::default())
        .unwrap();
    assert!(outcome.terminated);
}
