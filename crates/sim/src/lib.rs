//! Discrete-event simulation primitives for the reproduction of *"The Impact
//! of Time on the Session Problem"* (Rhee & Welch, PODC 1992).
//!
//! The paper's objects of study are **timed computations**: sequences of
//! steps together with a nondecreasing mapping to real time (§2.1). This
//! crate provides the machinery the shared-memory and message-passing
//! engines use to *generate* timed computations:
//!
//! * [`EventQueue`] — a deterministic time-ordered queue with FIFO
//!   tie-breaking, so identical seeds give identical computations;
//! * [`Trace`] — the recorded timed computation: every step, every message
//!   send/delivery, and the time each process entered an idle state;
//! * [`StepSchedule`] implementations — the adversary's choice of *when*
//!   each process steps, one implementation per timing-model family
//!   (fixed periods, bounded jitter, sporadic bursts, a slowed process,
//!   fully scripted prefixes);
//! * [`DelayPolicy`] implementations — the adversary's choice of message
//!   delays within `[d1, d2]`;
//! * [`RunLimits`] — budgets that detect non-terminating algorithms.
//!
//! Schedules and delay policies are *hidden* information: algorithms only
//! ever see the constants in `session_types::KnownBounds`. The pairing of an
//! algorithm with a schedule family is what produces the running-time
//! measurements of Table 1.
//!
//! # Examples
//!
//! ```
//! use session_sim::{EventQueue, FixedPeriods, StepSchedule};
//! use session_types::{Dur, ProcessId, Time};
//!
//! # fn main() -> Result<(), session_types::Error> {
//! // Three processes stepping at constant period 2 (a periodic-model run).
//! let mut sched = FixedPeriods::uniform(3, Dur::from_int(2))?;
//! let p0 = ProcessId::new(0);
//! let first = sched.first_step(p0);
//! assert_eq!(first, Time::from_int(2));
//! assert_eq!(sched.next_step(p0, first), Time::from_int(4));
//!
//! // The queue orders events by time with FIFO tie-breaking.
//! let mut q = EventQueue::new();
//! q.push(Time::from_int(2), "b");
//! q.push(Time::from_int(1), "a");
//! q.push(Time::from_int(2), "c");
//! assert_eq!(q.pop(), Some((Time::from_int(1), "a")));
//! assert_eq!(q.pop(), Some((Time::from_int(2), "b")));
//! assert_eq!(q.pop(), Some((Time::from_int(2), "c")));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod event;
mod limits;
mod render;
mod rng;
mod schedule;
mod topology;
mod trace;

pub use delay::{ConstantDelay, DelayPolicy, ScriptedDelay, TargetedDelay, UniformDelay};
pub use event::EventQueue;
pub use limits::RunLimits;
pub use render::{process_stats, render_timeline, to_csv, ProcessStats};
pub use rng::{ratio_in_range, seeded_rng};
pub use schedule::{
    ExplicitSchedule, FixedPeriods, JitterSchedule, PerProcess, SlowProcess, SporadicBursts,
    StepSchedule,
};
pub use topology::HopDelay;
pub use trace::{MessageRecord, RunOutcome, StepKind, Trace, TraceEvent};
