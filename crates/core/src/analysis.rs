//! Whole-trace analysis: everything the paper measures about a
//! computation, in one pass.

use std::collections::BTreeMap;

use session_sim::{StepKind, Trace};
use session_types::{Dur, PortId, ProcessId, Time};

use crate::verify::{count_rounds, session_boundaries};

/// Summary of one process's behaviour in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessSummary {
    /// Process steps taken (network deliveries excluded).
    pub steps: usize,
    /// Port steps among them (pre-idle steps on the process's port).
    pub port_steps: usize,
    /// When the process first entered an idle state, if it did.
    pub idle_at: Option<Time>,
    /// The smallest gap between consecutive steps (including from time 0
    /// to the first step); `None` if the process never stepped.
    pub min_gap: Option<Dur>,
    /// The largest such gap.
    pub max_gap: Option<Dur>,
}

/// Everything measured about one recorded computation.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Disjoint sessions (greedy count, idle steps excluded).
    pub sessions: u64,
    /// The times at which each session closed.
    pub session_close_times: Vec<Time>,
    /// Disjoint rounds over all processes.
    pub rounds: u64,
    /// Per-process summaries, in process order.
    pub per_process: BTreeMap<ProcessId, ProcessSummary>,
    /// Total (message, recipient) instances sent.
    pub messages_sent: usize,
    /// How many were delivered within the trace.
    pub messages_delivered: usize,
    /// The smallest delivered delay, if any message was delivered.
    pub min_delay: Option<Dur>,
    /// The largest delivered delay.
    pub max_delay: Option<Dur>,
    /// The largest step gap over all processes (§2.3's `γ`).
    pub gamma: Dur,
    /// The time of the last event.
    pub end_time: Option<Time>,
}

impl TraceAnalysis {
    /// The spans between consecutive session closes (the first measured
    /// from time 0): the paper's *per-session time*, the quantity the §6
    /// bounds are stated per `(s − 1)` of.
    pub fn session_gaps(&self) -> Vec<Dur> {
        let mut prev = Time::ZERO;
        self.session_close_times
            .iter()
            .map(|&t| {
                let gap = t - prev;
                prev = t;
                gap
            })
            .collect()
    }

    /// The largest per-session time, if any session closed.
    pub fn max_session_gap(&self) -> Option<Dur> {
        self.session_gaps().into_iter().max()
    }
}

/// Analyzes `trace` for the `(s, n)`-session problem with `n` ports, using
/// `port_of` to map message-passing port processes to their ports (pass
/// `|_| None` for shared-memory traces, whose port steps are tagged in the
/// trace itself).
pub fn analyze<F>(trace: &Trace, n: usize, port_of: F) -> TraceAnalysis
where
    F: Fn(ProcessId) -> Option<PortId>,
{
    let boundaries = session_boundaries(trace, n, &port_of);
    let session_close_times = boundaries
        .iter()
        .map(|&i| trace.events()[i].time)
        .collect::<Vec<_>>();

    let mut per_process: BTreeMap<ProcessId, ProcessSummary> = BTreeMap::new();
    let mut last_step: BTreeMap<ProcessId, Time> = BTreeMap::new();
    let mut idle: BTreeMap<ProcessId, bool> = BTreeMap::new();
    for event in trace.events() {
        if !event.kind.is_process_step() {
            continue;
        }
        let summary = per_process.entry(event.process).or_insert(ProcessSummary {
            steps: 0,
            port_steps: 0,
            idle_at: None,
            min_gap: None,
            max_gap: None,
        });
        summary.steps += 1;
        let was_idle = idle.get(&event.process).copied().unwrap_or(false);
        let is_port_step = match &event.kind {
            StepKind::VarAccess { port, .. } => port.is_some(),
            StepKind::MpStep { .. } => port_of(event.process).is_some(),
            StepKind::Deliver { .. } => false,
        };
        if is_port_step && !was_idle {
            summary.port_steps += 1;
        }
        if event.idle_after {
            idle.insert(event.process, true);
        }
        let prev = last_step.get(&event.process).copied().unwrap_or(Time::ZERO);
        let gap = event.time - prev;
        summary.min_gap = Some(summary.min_gap.map_or(gap, |g| g.min(gap)));
        summary.max_gap = Some(summary.max_gap.map_or(gap, |g| g.max(gap)));
        last_step.insert(event.process, event.time);
    }
    for (p, summary) in &mut per_process {
        summary.idle_at = trace.idle_time(*p);
    }

    let mut min_delay = None;
    let mut max_delay = None;
    let mut delivered = 0usize;
    for record in trace.messages() {
        if let Some(delay) = record.delay() {
            delivered += 1;
            min_delay = Some(min_delay.map_or(delay, |d: Dur| d.min(delay)));
            max_delay = Some(max_delay.map_or(delay, |d: Dur| d.max(delay)));
        }
    }

    TraceAnalysis {
        sessions: boundaries.len() as u64,
        session_close_times,
        rounds: count_rounds(trace, trace.num_processes()),
        per_process,
        messages_sent: trace.messages().len(),
        messages_delivered: delivered,
        min_delay,
        max_delay,
        gamma: trace.gamma(),
        end_time: trace.end_time(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_sim::TraceEvent;
    use session_types::VarId;

    fn sm_event(t: i128, p: usize, port: Option<usize>, idle: bool) -> TraceEvent {
        TraceEvent {
            time: Time::from_int(t),
            process: ProcessId::new(p),
            kind: StepKind::VarAccess {
                var: VarId::new(p),
                port: port.map(PortId::new),
            },
            idle_after: idle,
        }
    }

    #[test]
    fn analysis_of_a_small_sm_trace() {
        let mut trace = Trace::new(2);
        trace.push(sm_event(1, 0, Some(0), false));
        trace.push(sm_event(1, 1, Some(1), false)); // session 1 closes
        trace.push(sm_event(3, 0, Some(0), true));
        trace.push(sm_event(4, 1, Some(1), true)); // session 2 closes
        let a = analyze(&trace, 2, |_| None);
        assert_eq!(a.sessions, 2);
        assert_eq!(
            a.session_close_times,
            vec![Time::from_int(1), Time::from_int(4)]
        );
        assert_eq!(a.rounds, 2);
        assert_eq!(a.gamma, Dur::from_int(3)); // p1: 1 -> 4
        let p0 = &a.per_process[&ProcessId::new(0)];
        assert_eq!(p0.steps, 2);
        assert_eq!(p0.port_steps, 2);
        assert_eq!(p0.idle_at, Some(Time::from_int(3)));
        assert_eq!(p0.min_gap, Some(Dur::from_int(1)));
        assert_eq!(p0.max_gap, Some(Dur::from_int(2)));
        assert_eq!(a.messages_sent, 0);
        assert_eq!(a.end_time, Some(Time::from_int(4)));
    }

    #[test]
    fn post_idle_port_steps_are_not_counted() {
        let mut trace = Trace::new(1);
        trace.push(sm_event(1, 0, Some(0), true)); // idling step: counts
        trace.push(sm_event(2, 0, Some(0), true)); // post-idle: not
        let a = analyze(&trace, 1, |_| None);
        let p0 = &a.per_process[&ProcessId::new(0)];
        assert_eq!(p0.steps, 2);
        assert_eq!(p0.port_steps, 1);
        assert_eq!(a.sessions, 1);
    }

    #[test]
    fn session_gaps_measure_per_session_time() {
        let mut trace = Trace::new(2);
        trace.push(sm_event(1, 0, Some(0), false));
        trace.push(sm_event(2, 1, Some(1), false)); // session 1 closes at 2
        trace.push(sm_event(5, 0, Some(0), false));
        trace.push(sm_event(9, 1, Some(1), false)); // session 2 closes at 9
        let a = analyze(&trace, 2, |_| None);
        assert_eq!(a.session_gaps(), vec![Dur::from_int(2), Dur::from_int(7)]);
        assert_eq!(a.max_session_gap(), Some(Dur::from_int(7)));
        let empty = analyze(&Trace::new(1), 1, |_| None);
        assert!(empty.session_gaps().is_empty());
        assert_eq!(empty.max_session_gap(), None);
    }

    #[test]
    fn message_statistics() {
        let mut trace = Trace::new(2);
        trace.push(TraceEvent {
            time: Time::from_int(1),
            process: ProcessId::new(0),
            kind: StepKind::MpStep {
                received: 0,
                broadcast: true,
            },
            idle_after: false,
        });
        let m1 = trace.record_send(ProcessId::new(0), ProcessId::new(1), Time::from_int(1));
        let _m2 = trace.record_send(ProcessId::new(0), ProcessId::new(0), Time::from_int(1));
        trace.push(TraceEvent {
            time: Time::from_int(4),
            process: ProcessId::new(1),
            kind: StepKind::Deliver { msg: m1 },
            idle_after: false,
        });
        trace.record_delivery(m1, Time::from_int(4));
        let a = analyze(&trace, 2, |p| Some(PortId::new(p.index())));
        assert_eq!(a.messages_sent, 2);
        assert_eq!(a.messages_delivered, 1);
        assert_eq!(a.min_delay, Some(Dur::from_int(3)));
        assert_eq!(a.max_delay, Some(Dur::from_int(3)));
    }

    #[test]
    fn empty_trace_analysis() {
        let a = analyze(&Trace::new(3), 3, |_| None);
        assert_eq!(a.sessions, 0);
        assert_eq!(a.rounds, 0);
        assert!(a.per_process.is_empty());
        assert_eq!(a.end_time, None);
        assert_eq!(a.min_delay, None);
    }
}
