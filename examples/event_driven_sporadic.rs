//! The paper's sporadic scenario (§1): "event-driven processing such as
//! responding to user inputs or non-periodic device interrupts; these
//! events occur repeatedly, but the time interval between consecutive
//! occurrences varies and can be arbitrarily large."
//!
//! Three interrupt-driven handlers step at least `c1` apart but sometimes
//! pause for long bursts. They synchronize with `A(sp)`, which exploits the
//! only leverage the sporadic model offers: the known delay window
//! `[d1, d2]` — after more than `u = d2 − d1` time, freshly received
//! messages are provably newer than what was known before.
//!
//! ```text
//! cargo run --example event_driven_sporadic
//! ```

use session_problem::core::bounds;
use session_problem::core::report::{run_mp, MpConfig};
use session_problem::core::verify::check_admissible;
use session_problem::sim::{RunLimits, SporadicBursts, UniformDelay};
use session_problem::types::{Dur, Error, KnownBounds, SessionSpec, TimingModel};

fn main() -> Result<(), Error> {
    let spec = SessionSpec::new(4, 3, 2)?;
    let c1 = Dur::from_int(1); // minimum handler separation
    let d1 = Dur::from_int(2); // best-case interconnect latency
    let d2 = Dur::from_int(10); // worst-case interconnect latency
    let kb = KnownBounds::sporadic(c1, d1, d2)?;
    let u = kb.delay_uncertainty().expect("both delay bounds known");
    println!("Sporadic interrupt handlers: c1 = {c1}, delays in [{d1}, {d2}], u = {u}");
    println!(
        "A(sp) waiting constant B = ⌊u/c1⌋ + 1 = {}",
        u.div_floor(c1) + 1
    );

    for seed in [7u64, 42, 1234] {
        // Bursty handler activity: 25% of gaps stretch up to 12×c1.
        let mut schedule = SporadicBursts::new(c1, 12, 25, seed)?;
        let mut delays = UniformDelay::new(d1, d2, seed ^ 0xbeef)?;
        let report = run_mp(
            MpConfig {
                model: TimingModel::Sporadic,
                spec,
                bounds: kb,
            },
            &mut schedule,
            &mut delays,
            RunLimits::default(),
        )?;
        check_admissible(&report.trace, &kb)?;
        assert!(report.solves(&spec));
        let gamma = report.gamma;
        let upper = bounds::sporadic_mp_upper(spec.s(), c1, d1, d2, gamma) + d2 + gamma * 2;
        println!(
            "  seed {seed:>4}: {} sessions by t = {} (γ = {gamma}, bound ≤ {upper})",
            report.sessions,
            report.running_time.expect("terminated"),
        );
    }

    println!(
        "\nLower bound at these constants: {} per computation (Theorem 6.5)",
        bounds::sporadic_mp_lower(spec.s(), c1, d1, d2)
    );
    Ok(())
}
