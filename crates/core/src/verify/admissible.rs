//! Checking that a recorded trace is an admissible timed computation of its
//! timing model (§2.2).
//!
//! The check is uniform across models thanks to
//! [`session_types::KnownBounds`]: step gaps must lie within `[c1, c2]`
//! (where known), message delays within `[d1, d2]` (where known), and the
//! periodic model additionally requires each process's gaps to be a
//! per-process constant. All comparisons are exact — time is rational.

use std::collections::BTreeMap;

use session_sim::Trace;
use session_types::{Dur, Error, KnownBounds, ProcessId, Result, Time, TimingModel};

/// Verifies that `trace` satisfies every timing constraint of `bounds`.
///
/// Checks, in order:
///
/// 1. **Step gaps**: for every process, the time from 0 to its first step
///    and between consecutive steps is `>= c1` and `<= c2` (where known).
///    The paper's Table 1 conversion note (3) applies: the *first* step is
///    constrained exactly like every other step.
/// 2. **Periodicity** (periodic model only): each process's gaps all equal
///    its first gap — the hidden constant `c_i`.
/// 3. **Message delays**: every delivered message's delay lies in
///    `[d1, d2]`; every undelivered message is younger than `d2` at the end
///    of the trace (otherwise no admissible extension could deliver it in
///    time).
///
/// # Errors
///
/// Returns [`Error::Inadmissible`] describing the first violation found.
pub fn check_admissible(trace: &Trace, bounds: &KnownBounds) -> Result<()> {
    check_step_gaps(trace, bounds)?;
    if bounds.model() == TimingModel::Periodic {
        check_constant_gaps(trace)?;
    }
    check_delays(trace, bounds)?;
    Ok(())
}

/// [`check_admissible`] with instrumentation: times the check under a
/// `verify.admissibility` span and counts `verify.admissibility_checks`
/// (and `verify.admissibility_failures` when the check rejects).
///
/// # Errors
///
/// As for [`check_admissible`].
pub fn check_admissible_recorded(
    trace: &Trace,
    bounds: &KnownBounds,
    recorder: &mut dyn session_obs::Recorder,
) -> Result<()> {
    let result = {
        let _span = session_obs::Span::enter(recorder, "verify.admissibility");
        check_admissible(trace, bounds)
    };
    recorder.counter("verify.admissibility_checks", 1);
    if result.is_err() {
        recorder.counter("verify.admissibility_failures", 1);
    }
    result
}

fn for_each_gap<F>(trace: &Trace, mut f: F) -> Result<()>
where
    F: FnMut(ProcessId, usize, Dur) -> Result<()>,
{
    let mut last_step: BTreeMap<ProcessId, (usize, Time)> = BTreeMap::new();
    for event in trace.events() {
        if !event.kind.is_process_step() {
            continue;
        }
        let (index, prev) = last_step
            .get(&event.process)
            .copied()
            .unwrap_or((0, Time::ZERO));
        f(event.process, index, event.time - prev)?;
        last_step.insert(event.process, (index + 1, event.time));
    }
    Ok(())
}

fn check_step_gaps(trace: &Trace, bounds: &KnownBounds) -> Result<()> {
    let c1 = bounds.c1();
    let c2 = bounds.c2();
    if c1.is_none() && c2.is_none() {
        return Ok(());
    }
    for_each_gap(trace, |p, i, gap| {
        if let Some(c1) = c1 {
            if gap < c1 {
                return Err(Error::inadmissible(format!(
                    "step {i} of {p}: gap {gap} below c1 = {c1}"
                )));
            }
        }
        if let Some(c2) = c2 {
            if gap > c2 {
                return Err(Error::inadmissible(format!(
                    "step {i} of {p}: gap {gap} above c2 = {c2}"
                )));
            }
        }
        Ok(())
    })
}

fn check_constant_gaps(trace: &Trace) -> Result<()> {
    let mut period: BTreeMap<ProcessId, Dur> = BTreeMap::new();
    for_each_gap(trace, |p, i, gap| {
        if !gap.is_positive() {
            return Err(Error::inadmissible(format!(
                "step {i} of {p}: periodic model requires positive period, got {gap}"
            )));
        }
        match period.get(&p) {
            None => {
                period.insert(p, gap);
                Ok(())
            }
            Some(&c_i) if c_i == gap => Ok(()),
            Some(&c_i) => Err(Error::inadmissible(format!(
                "step {i} of {p}: gap {gap} differs from its period {c_i}"
            ))),
        }
    })
}

fn check_delays(trace: &Trace, bounds: &KnownBounds) -> Result<()> {
    let d1 = bounds.d1();
    let d2 = bounds.d2();
    if d1.is_none() && d2.is_none() {
        return Ok(());
    }
    let end = trace.end_time().unwrap_or(Time::ZERO);
    for record in trace.messages() {
        match record.delay() {
            Some(delay) => {
                if let Some(d1) = d1 {
                    if delay < d1 {
                        return Err(Error::inadmissible(format!(
                            "message {} delay {delay} below d1 = {d1}",
                            record.msg
                        )));
                    }
                }
                if let Some(d2) = d2 {
                    if delay > d2 {
                        return Err(Error::inadmissible(format!(
                            "message {} delay {delay} above d2 = {d2}",
                            record.msg
                        )));
                    }
                }
            }
            None => {
                if let Some(d2) = d2 {
                    let age = end - record.sent_at;
                    if age > d2 {
                        return Err(Error::inadmissible(format!(
                            "message {} undelivered after {age} > d2 = {d2}",
                            record.msg
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_sim::{StepKind, TraceEvent};
    use session_types::VarId;

    fn step_trace(times: &[(i128, usize)]) -> Trace {
        let mut trace = Trace::new(times.iter().map(|&(_, p)| p + 1).max().unwrap_or(1));
        for &(t, p) in times {
            trace.push(TraceEvent {
                time: Time::from_int(t),
                process: ProcessId::new(p),
                kind: StepKind::VarAccess {
                    var: VarId::new(0),
                    port: None,
                },
                idle_after: false,
            });
        }
        trace
    }

    fn semi_sync(c1: i128, c2: i128, d2: i128) -> KnownBounds {
        KnownBounds::semi_synchronous(Dur::from_int(c1), Dur::from_int(c2), Dur::from_int(d2))
            .unwrap()
    }

    #[test]
    fn gaps_within_bounds_pass() {
        let trace = step_trace(&[(1, 0), (2, 1), (3, 0), (4, 0)]);
        assert!(check_admissible(&trace, &semi_sync(1, 2, 10)).is_ok());
    }

    #[test]
    fn first_step_is_constrained_from_time_zero() {
        // First step at t = 3 violates c2 = 2.
        let trace = step_trace(&[(3, 0)]);
        let err = check_admissible(&trace, &semi_sync(1, 2, 10)).unwrap_err();
        assert!(err.to_string().contains("above c2"));
        // And a first step at t = 0 (gap 0) violates c1 = 1... use t below c1.
        let trace = step_trace(&[(1, 0), (1, 1)]);
        assert!(check_admissible(&trace, &semi_sync(2, 5, 10)).is_err());
    }

    #[test]
    fn gap_below_c1_is_caught() {
        let trace = step_trace(&[(2, 0), (3, 0)]);
        let err = check_admissible(&trace, &semi_sync(2, 5, 10)).unwrap_err();
        assert!(err.to_string().contains("below c1"));
    }

    #[test]
    fn synchronous_requires_exact_gaps() {
        let bounds = KnownBounds::synchronous(Dur::from_int(2), Dur::from_int(5)).unwrap();
        let good = step_trace(&[(2, 0), (4, 0), (6, 0)]);
        assert!(check_admissible(&good, &bounds).is_ok());
        let bad = step_trace(&[(2, 0), (5, 0)]);
        assert!(check_admissible(&bad, &bounds).is_err());
    }

    #[test]
    fn periodic_requires_constant_per_process_gaps() {
        let bounds = KnownBounds::periodic(Dur::from_int(100)).unwrap();
        // p0 at period 2, p1 at period 3: fine.
        let good = step_trace(&[(2, 0), (3, 1), (4, 0), (6, 0), (6, 1)]);
        assert!(check_admissible(&good, &bounds).is_ok());
        // p0 changes period from 2 to 3.
        let bad = step_trace(&[(2, 0), (4, 0), (7, 0)]);
        let err = check_admissible(&bad, &bounds).unwrap_err();
        assert!(err.to_string().contains("differs from its period"));
    }

    #[test]
    fn sporadic_has_no_upper_step_bound() {
        let bounds = KnownBounds::sporadic(Dur::from_int(1), Dur::ZERO, Dur::from_int(10)).unwrap();
        let trace = step_trace(&[(1, 0), (1_000_000, 0)]);
        assert!(check_admissible(&trace, &bounds).is_ok());
    }

    #[test]
    fn asynchronous_accepts_anything() {
        let trace = step_trace(&[(1, 0), (1, 0), (1, 0)]);
        assert!(check_admissible(&trace, &KnownBounds::asynchronous()).is_ok());
    }

    #[test]
    fn delivered_delays_are_checked() {
        let bounds =
            KnownBounds::sporadic(Dur::from_int(1), Dur::from_int(2), Dur::from_int(4)).unwrap();
        let mut trace = step_trace(&[(1, 0), (9, 0)]);
        let msg = trace.record_send(ProcessId::new(0), ProcessId::new(0), Time::from_int(1));
        trace.record_delivery(msg, Time::from_int(4)); // delay 3 in [2, 4]
        assert!(check_admissible(&trace, &bounds).is_ok());

        let mut trace = step_trace(&[(1, 0), (9, 0)]);
        let msg = trace.record_send(ProcessId::new(0), ProcessId::new(0), Time::from_int(1));
        trace.record_delivery(msg, Time::from_int(2)); // delay 1 < d1
        assert!(check_admissible(&trace, &bounds).is_err());

        let mut trace = step_trace(&[(1, 0), (9, 0)]);
        let msg = trace.record_send(ProcessId::new(0), ProcessId::new(0), Time::from_int(1));
        trace.record_delivery(msg, Time::from_int(8)); // delay 7 > d2
        assert!(check_admissible(&trace, &bounds).is_err());
    }

    #[test]
    fn undelivered_messages_must_be_young() {
        let bounds = KnownBounds::sporadic(Dur::from_int(1), Dur::ZERO, Dur::from_int(4)).unwrap();
        // Message sent at t = 1, trace ends at t = 9: 8 > d2 = 4.
        let mut trace = step_trace(&[(1, 0), (9, 0)]);
        let _ = trace.record_send(ProcessId::new(0), ProcessId::new(0), Time::from_int(1));
        let err = check_admissible(&trace, &bounds).unwrap_err();
        assert!(err.to_string().contains("undelivered"));
        // Sent at t = 8: age 1 <= 4, fine.
        let mut trace = step_trace(&[(1, 0), (9, 0)]);
        let _ = trace.record_send(ProcessId::new(0), ProcessId::new(0), Time::from_int(8));
        assert!(check_admissible(&trace, &bounds).is_ok());
    }

    #[test]
    fn empty_trace_is_admissible_under_every_model() {
        let trace = Trace::new(1);
        assert!(check_admissible(&trace, &semi_sync(1, 2, 3)).is_ok());
        assert!(check_admissible(&trace, &KnownBounds::asynchronous()).is_ok());
        assert!(
            check_admissible(&trace, &KnownBounds::periodic(Dur::from_int(1)).unwrap()).is_ok()
        );
    }
}
