//! The timed executor for message-passing systems.

use std::collections::BTreeMap;

use session_obs::{NullRecorder, Recorder};
use session_sim::{
    DelayPolicy, EventQueue, RunLimits, RunOutcome, StepKind, StepSchedule, Trace, TraceEvent,
};
use session_types::{Error, MsgId, PortId, ProcessId, Result};

use crate::process::{step_process, Envelope, MpProcess};

/// What the event queue schedules: a process step or a network delivery.
enum Event<M> {
    Step(ProcessId),
    Deliver {
        to: ProcessId,
        envelope: Envelope<M>,
        msg: MsgId,
    },
}

/// Executes a message-passing system under a step schedule and a delay
/// policy, recording a [`Trace`].
///
/// The network process `N` of the formal model is realized as delivery
/// events: one per (message, recipient) pair, scheduled at
/// `send time + delay`, where the delay is chosen by the
/// [`DelayPolicy`]. This is an equivalent formulation — each delivery event
/// *is* a step of `N` — documented as such in DESIGN.md.
///
/// Termination: the run stops as soon as every port process is idle.
pub struct MpEngine<M> {
    processes: Vec<Box<dyn MpProcess<M>>>,
    bufs: Vec<Vec<Envelope<M>>>,
    port_of: BTreeMap<ProcessId, PortId>,
}

impl<M> std::fmt::Debug for MpEngine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpEngine")
            .field("num_processes", &self.processes.len())
            .field("ports", &self.port_of)
            .finish_non_exhaustive()
    }
}

impl<M: Clone> MpEngine<M> {
    /// Assembles a system from its regular processes and the port
    /// assignment (`buf_p` of each listed process is a port).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if there are no processes or the
    /// port map references a missing process or assigns one port twice.
    pub fn new(
        processes: Vec<Box<dyn MpProcess<M>>>,
        ports: Vec<(ProcessId, PortId)>,
    ) -> Result<MpEngine<M>> {
        if processes.is_empty() {
            return Err(Error::invalid_params("MpEngine requires >= 1 process"));
        }
        let mut port_of = BTreeMap::new();
        let mut seen_ports = BTreeMap::new();
        for (p, y) in ports {
            if p.index() >= processes.len() {
                return Err(Error::unknown_id(format!("port process {p}")));
            }
            if port_of.insert(p, y).is_some() {
                return Err(Error::invalid_params(format!(
                    "process {p} assigned two ports"
                )));
            }
            if seen_ports.insert(y, ()).is_some() {
                return Err(Error::invalid_params(format!("port {y} assigned twice")));
            }
        }
        let bufs = processes.iter().map(|_| Vec::new()).collect();
        Ok(MpEngine {
            processes,
            bufs,
            port_of,
        })
    }

    /// The number of regular processes.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// The process with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn process(&self, p: ProcessId) -> &dyn MpProcess<M> {
        self.processes[p.index()].as_ref()
    }

    /// The port realized by `p`'s buffer, if `p` is a port process.
    pub fn port_of(&self, p: ProcessId) -> Option<PortId> {
        self.port_of.get(&p).copied()
    }

    /// Returns `true` if every port process is idle (every process, if no
    /// ports were assigned).
    pub fn is_quiescent(&self) -> bool {
        if self.port_of.is_empty() {
            self.processes.iter().all(|p| p.is_idle())
        } else {
            self.port_of
                .keys()
                .all(|p| self.processes[p.index()].is_idle())
        }
    }

    /// Per-process state fingerprints, for global-state comparisons.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.processes.iter().map(|p| p.fingerprint()).collect()
    }

    /// Runs the system until every port process is idle or `limits` are
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Currently infallible at runtime (validation happens in
    /// [`MpEngine::new`]); the `Result` is kept for interface symmetry with
    /// the shared-memory engine and future failure injection.
    pub fn run(
        &mut self,
        schedule: &mut dyn StepSchedule,
        delays: &mut dyn DelayPolicy,
        limits: RunLimits,
    ) -> Result<RunOutcome> {
        self.run_recorded(schedule, delays, limits, &mut NullRecorder)
    }

    /// [`MpEngine::run`] with instrumentation: emits `mp.steps`,
    /// `mp.broadcasts`, `mp.messages_sent`, `mp.messages_delivered` and
    /// `sched.steps_scheduled` counters, an `mp.buffer_occupancy`
    /// histogram (messages in the buffer at each process step) and a final
    /// `mp.end_time_ms` gauge to `recorder`.
    ///
    /// # Errors
    ///
    /// As for [`MpEngine::run`].
    #[allow(clippy::too_many_lines)]
    pub fn run_recorded(
        &mut self,
        schedule: &mut dyn StepSchedule,
        delays: &mut dyn DelayPolicy,
        limits: RunLimits,
        recorder: &mut dyn Recorder,
    ) -> Result<RunOutcome> {
        let n = self.processes.len();
        let mut trace = Trace::new(n);
        if self.is_quiescent() {
            return Ok(RunOutcome {
                trace,
                terminated: true,
                steps: 0,
            });
        }
        let mut queue: EventQueue<Event<M>> = EventQueue::new();
        for i in 0..n {
            let p = ProcessId::new(i);
            queue.push(schedule.first_step(p), Event::Step(p));
            recorder.counter("sched.steps_scheduled", 1);
        }
        let mut steps = 0u64;
        let finish = |trace: Trace, terminated: bool, steps: u64, recorder: &mut dyn Recorder| {
            if recorder.is_enabled() {
                recorder.gauge(
                    "mp.end_time_ms",
                    trace
                        .end_time()
                        .unwrap_or(session_types::Time::ZERO)
                        .to_f64(),
                );
            }
            Ok(RunOutcome {
                trace,
                terminated,
                steps,
            })
        };
        #[cfg(feature = "strict-invariants")]
        let mut last_time = session_types::Time::ZERO;
        while let Some((now, event)) = queue.pop() {
            #[cfg(feature = "strict-invariants")]
            {
                debug_assert!(now >= last_time, "event times must be nondecreasing");
                last_time = now;
            }
            match event {
                Event::Deliver { to, envelope, msg } => {
                    self.bufs[to.index()].push(envelope);
                    trace.record_delivery(msg, now);
                    recorder.counter("mp.messages_delivered", 1);
                    trace.push(TraceEvent {
                        time: now,
                        process: to,
                        kind: StepKind::Deliver { msg },
                        idle_after: self.processes[to.index()].is_idle(),
                    });
                }
                Event::Step(p) => {
                    if !limits.allows(steps, now) {
                        return finish(trace, false, steps, recorder);
                    }
                    let inbox = std::mem::take(&mut self.bufs[p.index()]);
                    if recorder.is_enabled() {
                        recorder.observe("mp.buffer_occupancy", inbox.len() as f64);
                    }
                    let result = step_process(self.processes[p.index()].as_mut(), inbox);
                    let received = result.received;
                    let broadcast = result.broadcast.is_some();
                    if let Some(payload) = result.broadcast {
                        recorder.counter("mp.broadcasts", 1);
                        recorder.counter("mp.messages_sent", n as u64);
                        for q in 0..n {
                            let to = ProcessId::new(q);
                            let msg = trace.record_send(p, to, now);
                            let delay = delays.delay(p, to, now);
                            debug_assert!(
                                !delay.is_negative(),
                                "delay policies must return nonnegative delays"
                            );
                            queue.push(
                                now + delay,
                                Event::Deliver {
                                    to,
                                    envelope: Envelope::new(p, payload.clone()),
                                    msg,
                                },
                            );
                        }
                    }
                    trace.push(TraceEvent {
                        time: now,
                        process: p,
                        kind: StepKind::MpStep {
                            received,
                            broadcast,
                        },
                        idle_after: result.idle_after,
                    });
                    steps += 1;
                    recorder.counter("mp.steps", 1);
                    if self.is_quiescent() {
                        return finish(trace, true, steps, recorder);
                    }
                    queue.push(schedule.next_step(p, now), Event::Step(p));
                    recorder.counter("sched.steps_scheduled", 1);
                }
            }
        }
        // Unreachable in practice: each step re-enqueues its process.
        let terminated = self.is_quiescent();
        finish(trace, terminated, steps, recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_sim::{ConstantDelay, FixedPeriods, ScriptedDelay, UniformDelay};
    use session_types::Dur;

    /// Broadcasts its step count every step; idles after hearing `goal`
    /// messages.
    #[derive(Debug)]
    struct Chatter {
        sent: u64,
        heard: usize,
        goal: usize,
    }

    impl MpProcess<u64> for Chatter {
        fn step(&mut self, inbox: Vec<Envelope<u64>>) -> Option<u64> {
            self.heard += inbox.len();
            if self.is_idle() {
                return None;
            }
            self.sent += 1;
            Some(self.sent)
        }

        fn is_idle(&self) -> bool {
            self.heard >= self.goal
        }
    }

    fn chatters(n: usize, goal: usize) -> Vec<Box<dyn MpProcess<u64>>> {
        (0..n)
            .map(|_| {
                Box::new(Chatter {
                    sent: 0,
                    heard: 0,
                    goal,
                }) as Box<dyn MpProcess<u64>>
            })
            .collect()
    }

    fn all_ports(n: usize) -> Vec<(ProcessId, PortId)> {
        (0..n)
            .map(|i| (ProcessId::new(i), PortId::new(i)))
            .collect()
    }

    #[test]
    fn broadcast_reaches_every_process_including_sender() {
        let mut engine = MpEngine::new(chatters(3, 3), all_ports(3)).unwrap();
        let mut sched = FixedPeriods::uniform(3, Dur::from_int(1)).unwrap();
        let mut delays = ConstantDelay::new(Dur::ZERO).unwrap();
        let outcome = engine
            .run(&mut sched, &mut delays, RunLimits::default())
            .unwrap();
        assert!(outcome.terminated);
        // The first broadcast creates exactly 3 message instances.
        let first_sender = outcome.trace.messages()[0].from;
        let first_batch: Vec<_> = outcome
            .trace
            .messages()
            .iter()
            .take(3)
            .filter(|m| m.from == first_sender)
            .collect();
        assert_eq!(first_batch.len(), 3);
        let recipients: std::collections::BTreeSet<ProcessId> =
            first_batch.iter().map(|m| m.to).collect();
        assert_eq!(recipients.len(), 3);
        assert!(recipients.contains(&first_sender), "self-delivery required");
    }

    #[test]
    fn delays_are_recorded_exactly() {
        let mut engine = MpEngine::new(chatters(2, 2), all_ports(2)).unwrap();
        let mut sched = FixedPeriods::uniform(2, Dur::from_int(1)).unwrap();
        let mut delays = ConstantDelay::new(Dur::from_int(5)).unwrap();
        let outcome = engine
            .run(&mut sched, &mut delays, RunLimits::default())
            .unwrap();
        for m in outcome.trace.messages() {
            if let Some(delay) = m.delay() {
                assert_eq!(delay, Dur::from_int(5));
            }
        }
    }

    #[test]
    fn uniform_delays_stay_in_window() {
        let d1 = Dur::from_int(1);
        let d2 = Dur::from_int(4);
        let mut engine = MpEngine::new(chatters(3, 5), all_ports(3)).unwrap();
        let mut sched = FixedPeriods::uniform(3, Dur::from_int(1)).unwrap();
        let mut delays = UniformDelay::new(d1, d2, 7).unwrap();
        let outcome = engine
            .run(&mut sched, &mut delays, RunLimits::default())
            .unwrap();
        let mut seen = 0;
        for m in outcome.trace.messages() {
            if let Some(delay) = m.delay() {
                assert!(delay >= d1 && delay <= d2);
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn buffered_messages_wait_for_recipient_step() {
        // With delay 0, a message sent at t=1 is delivered at t=1 but only
        // received at the recipient's next step (t=2 with period 1 steps at
        // 1, 2, 3, ...). The paper's delay measure must still be 0.
        let mut engine = MpEngine::new(chatters(2, 100), all_ports(2)).unwrap();
        let mut sched = FixedPeriods::uniform(2, Dur::from_int(1)).unwrap();
        let mut delays = ConstantDelay::new(Dur::ZERO).unwrap();
        let outcome = engine
            .run(
                &mut sched,
                &mut delays,
                RunLimits::default().with_max_steps(20),
            )
            .unwrap();
        assert!(!outcome.terminated); // goal unreachable in 20 steps
        let m0 = &outcome.trace.messages()[0];
        assert_eq!(m0.delay(), Some(Dur::ZERO));
        // Find the step that received it: must be strictly after the send.
        let recv_step = outcome
            .trace
            .events()
            .iter()
            .find(|e| {
                e.process == m0.to
                    && matches!(e.kind, StepKind::MpStep { received, .. } if received > 0)
            })
            .unwrap();
        assert!(recv_step.time > m0.sent_at);
    }

    #[test]
    fn scripted_delays_apply_in_send_order() {
        let mut engine = MpEngine::new(chatters(1, 1000), all_ports(1)).unwrap();
        let mut sched = FixedPeriods::uniform(1, Dur::from_int(1)).unwrap();
        let mut delays = ScriptedDelay::new(vec![Dur::from_int(9)], Dur::from_int(1)).unwrap();
        let outcome = engine
            .run(
                &mut sched,
                &mut delays,
                RunLimits::default().with_max_steps(30),
            )
            .unwrap();
        assert_eq!(outcome.trace.messages()[0].delay(), Some(Dur::from_int(9)));
    }

    #[test]
    fn validation_rejects_bad_port_maps() {
        assert!(MpEngine::new(chatters(1, 1), vec![(ProcessId::new(5), PortId::new(0))]).is_err());
        assert!(MpEngine::new(
            chatters(2, 1),
            vec![
                (ProcessId::new(0), PortId::new(0)),
                (ProcessId::new(0), PortId::new(1)),
            ],
        )
        .is_err());
        assert!(MpEngine::new(
            chatters(2, 1),
            vec![
                (ProcessId::new(0), PortId::new(0)),
                (ProcessId::new(1), PortId::new(0)),
            ],
        )
        .is_err());
        assert!(MpEngine::<u64>::new(vec![], vec![]).is_err());
    }

    #[test]
    fn limits_stop_nonterminating_runs() {
        let mut engine = MpEngine::new(chatters(2, usize::MAX), all_ports(2)).unwrap();
        let mut sched = FixedPeriods::uniform(2, Dur::from_int(1)).unwrap();
        let mut delays = ConstantDelay::new(Dur::ZERO).unwrap();
        let outcome = engine
            .run(
                &mut sched,
                &mut delays,
                RunLimits::default().with_max_steps(50),
            )
            .unwrap();
        assert!(!outcome.terminated);
        assert_eq!(outcome.steps, 50);
    }

    #[test]
    fn run_recorded_tracks_messages_and_buffers() {
        let mut engine = MpEngine::new(chatters(3, 3), all_ports(3)).unwrap();
        let mut sched = FixedPeriods::uniform(3, Dur::from_int(1)).unwrap();
        let mut delays = ConstantDelay::new(Dur::ZERO).unwrap();
        let mut rec = session_obs::InMemoryRecorder::new();
        let outcome = engine
            .run_recorded(&mut sched, &mut delays, RunLimits::default(), &mut rec)
            .unwrap();
        assert!(outcome.terminated);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("mp.steps"), outcome.steps);
        assert_eq!(
            snap.counter("mp.messages_sent"),
            outcome.trace.messages().len() as u64
        );
        assert_eq!(
            snap.counter("mp.messages_delivered"),
            outcome
                .trace
                .messages()
                .iter()
                .filter(|m| m.delivered_at.is_some())
                .count() as u64
        );
        assert_eq!(
            snap.counter("mp.broadcasts") * 3,
            snap.counter("mp.messages_sent")
        );
        let occupancy = snap.histogram("mp.buffer_occupancy").unwrap();
        assert_eq!(occupancy.count(), outcome.steps);
    }

    #[test]
    fn port_of_and_quiescence() {
        let engine = MpEngine::new(chatters(2, 0), all_ports(2)).unwrap();
        assert_eq!(engine.port_of(ProcessId::new(1)), Some(PortId::new(1)));
        assert_eq!(engine.num_processes(), 2);
        // goal 0 means idle from the start
        assert!(engine.is_quiescent());
    }
}
