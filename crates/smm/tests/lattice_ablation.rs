//! Ablation / failure injection (DESIGN.md §6): *why the knowledge lattice
//! matters*. A relay that overwrites instead of joining loses announcements
//! under adversarial interleavings — the flood property that makes the §3
//! tree network correct genuinely depends on the join.

use session_smm::{JoinSemiLattice, Knowledge, SmEngine, SmProcess, TreeSpec};
use session_types::{ProcessId, Time, VarId};

/// A broken relay: instead of joining the visited variable into its
/// knowledge, it *replaces* its knowledge with whatever it last read
/// (last-writer-wins), and writes that back.
#[derive(Debug)]
struct OverwritingRelay {
    targets: Vec<VarId>,
    cursor: usize,
    knowledge: Knowledge,
}

impl OverwritingRelay {
    fn new(targets: Vec<VarId>) -> OverwritingRelay {
        OverwritingRelay {
            targets,
            cursor: 0,
            knowledge: Knowledge::new(),
        }
    }
}

impl SmProcess<Knowledge> for OverwritingRelay {
    fn target(&self) -> VarId {
        self.targets[self.cursor]
    }

    fn step(&mut self, value: &Knowledge) -> Knowledge {
        // The ablated behaviour: overwrite instead of join.
        self.knowledge = value.clone();
        self.cursor = (self.cursor + 1) % self.targets.len();
        self.knowledge.clone()
    }

    fn is_idle(&self) -> bool {
        false
    }
}

/// Announces once, then watches.
#[derive(Debug)]
struct Announcer {
    id: ProcessId,
    var: VarId,
    n: usize,
    knowledge: Knowledge,
}

impl SmProcess<Knowledge> for Announcer {
    fn target(&self) -> VarId {
        self.var
    }
    fn step(&mut self, value: &Knowledge) -> Knowledge {
        self.knowledge.join(value);
        self.knowledge.announce(self.id, 1);
        self.knowledge.clone()
    }
    fn is_idle(&self) -> bool {
        self.knowledge
            .all_at_least((0..self.n).map(ProcessId::new), 1)
    }
}

fn build_system(n: usize, b: usize, overwriting: bool) -> (SmEngine<Knowledge>, TreeSpec) {
    let tree = TreeSpec::build(n, b);
    let mut processes: Vec<Box<dyn SmProcess<Knowledge>>> = Vec::new();
    for i in 0..n {
        processes.push(Box::new(Announcer {
            id: ProcessId::new(i),
            var: tree.leaf_var(i),
            n,
            knowledge: Knowledge::new(),
        }));
    }
    for (node, relay) in tree.relay_processes().into_iter().enumerate() {
        if overwriting {
            // Rebuild the same target cycle, but with overwrite semantics.
            let v = n + node;
            let mut targets: Vec<VarId> = tree.children(v).iter().map(|&c| VarId::new(c)).collect();
            targets.push(VarId::new(v));
            processes.push(Box::new(OverwritingRelay::new(targets)));
        } else {
            processes.push(Box::new(relay));
        }
    }
    let engine = SmEngine::new(
        vec![Knowledge::new(); tree.num_nodes()],
        processes,
        b,
        vec![],
    )
    .unwrap();
    (engine, tree)
}

/// Drive the system with an adversarial interleaving: after the leaves
/// announce, each relay repeatedly reads an *empty* sibling variable last,
/// so an overwriting relay forgets what it learned.
fn adversarial_script(num_processes: usize, rounds: usize) -> Vec<(Time, ProcessId)> {
    let mut script = Vec::new();
    for round in 0..rounds {
        let t = Time::from_int(round as i128 + 1);
        for p in 0..num_processes {
            script.push((t, ProcessId::new(p)));
        }
    }
    script
}

#[test]
fn joining_relays_flood_under_any_interleaving() {
    let (mut engine, tree) = build_system(8, 2, false);
    let num = engine.num_processes();
    let script = adversarial_script(num, (tree.flood_rounds_bound() + 2) as usize);
    engine.run_scripted(&script).unwrap();
    for i in 0..8 {
        assert!(
            engine.process(ProcessId::new(i)).is_idle(),
            "leaf {i} did not hear everyone with joining relays"
        );
    }
}

#[test]
fn overwriting_relays_lose_announcements() {
    // Same topology, same schedule, overwrite semantics: the flood fails —
    // some leaf never hears everyone even with far more rounds than the
    // joining bound.
    let (mut engine, tree) = build_system(8, 2, true);
    let num = engine.num_processes();
    let script = adversarial_script(num, (tree.flood_rounds_bound() * 4 + 8) as usize);
    engine.run_scripted(&script).unwrap();
    let all_heard = (0..8).all(|i| engine.process(ProcessId::new(i)).is_idle());
    assert!(
        !all_heard,
        "overwrite semantics unexpectedly completed the flood — the ablation \
         should demonstrate information loss"
    );
}
