//! The message-passing process abstraction.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use session_types::ProcessId;

/// A message as received: the payload plus its sender.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The sending process.
    pub from: ProcessId,
    /// The message payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(from: ProcessId, payload: M) -> Envelope<M> {
        Envelope { from, payload }
    }
}

/// A regular process of the message-passing model (§2.1.2).
///
/// Each step receives the entire delivery buffer and decides, *based solely
/// on those messages and the current state* (the paper's wording — there is
/// deliberately no clock parameter), the new state and an optional broadcast
/// payload. Returning `Some(m)` broadcasts `m` to **all** regular processes,
/// including the sender itself.
///
/// Once [`is_idle`](MpProcess::is_idle) returns `true` it must remain `true`
/// forever (idle states are closed under steps, §2.3).
///
/// Processes are `Send`: the real-clock runtime (`session-net`) runs each
/// one on its own OS thread. Every process is plain owned data — the bound
/// costs nothing in the single-threaded simulator.
pub trait MpProcess<M>: fmt::Debug + Send {
    /// Executes one step: consumes the buffered messages, returns the
    /// payload to broadcast, if any.
    fn step(&mut self, inbox: Vec<Envelope<M>>) -> Option<M>;

    /// Returns `true` if the process is in an idle state.
    fn is_idle(&self) -> bool;

    /// A hash of the process's internal state, used to compare global
    /// states between original and adversarially reordered computations.
    /// The default hashes the `Debug` rendering.
    fn fingerprint(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        format!("{self:?}").hash(&mut hasher);
        hasher.finish()
    }
}

/// What one algorithm step did: the inputs it consumed, the broadcast it
/// produced, and whether the process is idle afterwards.
///
/// This is the shared vocabulary of the two executors — the discrete-event
/// simulator ([`crate::MpEngine`]) and the real-clock runtime
/// (`session-net`) both drive processes exclusively through
/// [`step_process`], so a process cannot behave differently under the two.
#[derive(Debug)]
pub struct StepResult<M> {
    /// How many messages were in the buffer (all were consumed).
    pub received: usize,
    /// The payload broadcast to all regular processes, if any.
    pub broadcast: Option<M>,
    /// Whether the process is in an idle state after the step.
    pub idle_after: bool,
}

/// Executes one step of `process` on `inbox`: the single algorithm-step
/// function shared by the simulator engine and the real-clock runtime.
///
/// With the `strict-invariants` feature, asserts that idle states are
/// closed under steps (§2.3).
pub fn step_process<M>(process: &mut dyn MpProcess<M>, inbox: Vec<Envelope<M>>) -> StepResult<M> {
    let received = inbox.len();
    #[cfg(feature = "strict-invariants")]
    let was_idle = process.is_idle();
    let broadcast = process.step(inbox);
    let idle_after = process.is_idle();
    #[cfg(feature = "strict-invariants")]
    debug_assert!(
        !was_idle || idle_after,
        "idle states must be closed under steps (process un-idled)"
    );
    StepResult {
        received,
        broadcast,
        idle_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Echo {
        last: Option<u32>,
    }

    impl MpProcess<u32> for Echo {
        fn step(&mut self, inbox: Vec<Envelope<u32>>) -> Option<u32> {
            self.last = inbox.last().map(|e| e.payload);
            self.last
        }

        fn is_idle(&self) -> bool {
            false
        }
    }

    #[test]
    fn envelope_construction() {
        let e = Envelope::new(ProcessId::new(2), 9u32);
        assert_eq!(e.from, ProcessId::new(2));
        assert_eq!(e.payload, 9);
    }

    #[test]
    fn step_consumes_inbox() {
        let mut p = Echo { last: None };
        let out = p.step(vec![
            Envelope::new(ProcessId::new(0), 1),
            Envelope::new(ProcessId::new(1), 2),
        ]);
        assert_eq!(out, Some(2));
        assert_eq!(p.step(vec![]), None);
    }

    #[test]
    fn step_process_reports_received_broadcast_and_idle() {
        let mut p = Echo { last: None };
        let result = step_process(&mut p, vec![Envelope::new(ProcessId::new(0), 7)]);
        assert_eq!(result.received, 1);
        assert_eq!(result.broadcast, Some(7));
        assert!(!result.idle_after);
        let quiet = step_process(&mut p, vec![]);
        assert_eq!(quiet.received, 0);
        assert_eq!(quiet.broadcast, None);
    }

    #[test]
    fn fingerprint_tracks_state() {
        let mut p = Echo { last: None };
        let before = p.fingerprint();
        let _ = p.step(vec![Envelope::new(ProcessId::new(0), 5)]);
        assert_ne!(before, p.fingerprint());
    }
}
