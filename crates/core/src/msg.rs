//! The message vocabulary of the message-passing algorithms.

use std::fmt;

/// The paper's message `m(i, V)`: the sender `i` travels in the envelope;
/// `V` is a progress counter in `[0, s-1]` whose meaning is fixed by the
/// algorithm (completed sessions for `A(sp)` and the asynchronous and
/// semi-synchronous algorithms; completed port steps for `A(p)`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionMsg {
    /// The announced progress counter.
    pub value: u64,
}

impl SessionMsg {
    /// Creates a message announcing `value`.
    pub const fn new(value: u64) -> SessionMsg {
        SessionMsg { value }
    }
}

impl fmt::Display for SessionMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m(*, {})", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let m = SessionMsg::new(3);
        assert_eq!(m.value, 3);
        assert_eq!(m.to_string(), "m(*, 3)");
        assert_eq!(SessionMsg::default(), SessionMsg::new(0));
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(SessionMsg::new(1) < SessionMsg::new(2));
    }
}
