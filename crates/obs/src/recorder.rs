//! The [`Recorder`] trait and the no-op backend.

/// An instrumentation sink.
///
/// Engines, schedulers and the analyzer call a recorder on their hot
/// paths; backends decide what to do with the recordings. Metric names
/// are `&'static str` — recording never allocates at the call site — and
/// follow a `component.metric` convention (`sm.steps`,
/// `explore.memo_hits`, `verify.admissibility`).
///
/// Span timings nest: `span_start("a"); span_start("b"); span_end();
/// span_end();` attributes the inner elapsed time to `a/b`. Backends that
/// time spans (the in-memory recorder) use wall-clock time; the null
/// recorder ignores spans entirely.
pub trait Recorder {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&mut self, name: &'static str, delta: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&mut self, name: &'static str, value: f64);

    /// Records one sample into the named fixed-bucket histogram.
    fn observe(&mut self, name: &'static str, value: f64);

    /// Opens a nested timing span.
    fn span_start(&mut self, name: &'static str);

    /// Closes the innermost open span.
    fn span_end(&mut self);

    /// Folds a pre-aggregated histogram into the named slot.
    ///
    /// [`Recorder::observe`] ingests raw samples one at a time; this is
    /// the bulk seam for components that aggregate off to the side (a
    /// per-thread [`crate::metrics::AtomicHistogram`], the `net`
    /// runtime's pacer-lag histogram) and hand the result over at
    /// quiesce. The default implementation discards the histogram, so
    /// streaming backends (JSONL) and the null recorder are unaffected.
    fn merge_histogram(&mut self, name: &'static str, hist: &crate::Histogram) {
        let _ = (name, hist);
    }

    /// Returns `false` when every recording is discarded (the null
    /// recorder), letting callers skip derived-value computation.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The default backend: discards everything.
///
/// Every method body is empty, so the overhead of instrumentation hooks
/// routed through a `&mut dyn Recorder` holding a `NullRecorder` is one
/// virtual call per hook — within measurement noise for the engines (see
/// `bench_engine`'s `recorder-overhead` group).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn counter(&mut self, _name: &'static str, _delta: u64) {}

    #[inline]
    fn gauge(&mut self, _name: &'static str, _value: f64) {}

    #[inline]
    fn observe(&mut self, _name: &'static str, _value: f64) {}

    #[inline]
    fn span_start(&mut self, _name: &'static str) {}

    #[inline]
    fn span_end(&mut self) {}

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// RAII guard for a recorder span: closes the span when dropped.
///
/// # Examples
///
/// ```
/// use session_obs::{InMemoryRecorder, Span};
///
/// let mut rec = InMemoryRecorder::new();
/// {
///     let _span = Span::enter(&mut rec, "verify.admissibility");
///     // ... timed work ...
/// }
/// assert!(rec.snapshot().histogram("verify.admissibility").is_some());
/// ```
pub struct Span<'a> {
    recorder: &'a mut dyn Recorder,
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").finish_non_exhaustive()
    }
}

impl<'a> Span<'a> {
    /// Opens `name` on `recorder`, returning the guard that closes it.
    pub fn enter(recorder: &'a mut dyn Recorder, name: &'static str) -> Span<'a> {
        recorder.span_start(name);
        Span { recorder }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.recorder.span_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_discards_and_reports_disabled() {
        let mut rec = NullRecorder;
        rec.counter("a", 1);
        rec.gauge("b", 2.0);
        rec.observe("c", 3.0);
        rec.span_start("d");
        rec.span_end();
        assert!(!rec.is_enabled());
    }

    #[test]
    fn span_guard_balances_start_and_end() {
        #[derive(Default)]
        struct Depth(i32, i32);
        impl Recorder for Depth {
            fn counter(&mut self, _: &'static str, _: u64) {}
            fn gauge(&mut self, _: &'static str, _: f64) {}
            fn observe(&mut self, _: &'static str, _: f64) {}
            fn span_start(&mut self, _: &'static str) {
                self.0 += 1;
                self.1 = self.1.max(self.0);
            }
            fn span_end(&mut self) {
                self.0 -= 1;
            }
        }
        let mut rec = Depth::default();
        {
            let _outer = Span::enter(&mut rec, "outer");
        }
        {
            let _again = Span::enter(&mut rec, "again");
        }
        assert_eq!(rec.0, 0, "every span closed");
        assert_eq!(rec.1, 1, "spans were entered");
    }
}
