//! Offline vendored stand-in for the [loom] concurrency model checker.
//!
//! This workspace must build without network access, so the registry
//! crate is replaced by an API-compatible subset backed by `std`. Real
//! loom exhaustively enumerates every interleaving a test closure can
//! exhibit under the C11 memory model; this stand-in is a *bounded
//! stress harness* instead — [`model`] re-runs the closure many times on
//! real OS threads, which explores a random sample of interleavings
//! rather than all of them. That keeps the `--cfg loom` test suite
//! meaningful (a racy memo table still fails it quickly in practice)
//! while staying dependency-free; swapping in the real crate requires
//! only the `Cargo.toml` path to change, because the code under test
//! already routes its primitives through `loom::sync`/`loom::thread`
//! when built with `--cfg loom`.
//!
//! [loom]: https://docs.rs/loom

/// Synchronization primitives, std-backed. Real loom substitutes
/// instrumented versions; the API subset used by this workspace
/// (`Arc`, `Mutex`, `Condvar`, atomics) is identical.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    /// Atomic types, std-backed.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

/// Thread spawning, std-backed.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// How many times [`model`] re-runs its closure. Real loom replaces
/// repetition with exhaustive enumeration; the stand-in compensates with
/// volume — each iteration spawns fresh threads, so scheduling noise
/// varies the interleaving.
pub const MODEL_ITERATIONS: usize = 64;

/// Runs `f` under the bounded stress model: [`MODEL_ITERATIONS`]
/// repetitions on real threads. Panics propagate, so an assertion that
/// fails under any sampled interleaving fails the test.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..MODEL_ITERATIONS {
        f();
    }
}
