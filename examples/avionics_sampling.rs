//! The paper's own motivating scenario (§1): "periodic timing constraints
//! are used in applications such as avionics and process control when
//! accurate control requires continual sampling and processing of data."
//!
//! Four avionics sampling tasks (attitude, airspeed, altitude, engine) run
//! under preemptive EDF on one processor. Each task drives a port process
//! of a distributed monitoring layer that must synchronize `s` times (the
//! session problem) before declaring a consistent snapshot epoch. The job
//! stream *is* the periodic/semi-synchronous timing model: we extract the
//! completion times, feed them to `A(p)` as its step schedule, and verify
//! the sessions.
//!
//! ```text
//! cargo run --example avionics_sampling
//! ```

use session_problem::core::system::build_mp_system;
use session_problem::core::system::port_of;
use session_problem::core::verify::count_sessions;
use session_problem::rt::bridge::{completion_gap_window, completion_step_schedule};
use session_problem::rt::sched::{simulate, Policy};
use session_problem::rt::{analysis, PeriodicTask, TaskSet};
use session_problem::sim::{ConstantDelay, RunLimits};
use session_problem::types::{Dur, Error, KnownBounds, SessionSpec, Time};

fn main() -> Result<(), Error> {
    // Sampling tasks: (period, wcet) in milliseconds.
    let tasks = TaskSet::periodic(vec![
        PeriodicTask::new(Dur::from_int(10), Dur::from_int(2))?, // attitude
        PeriodicTask::new(Dur::from_int(20), Dur::from_int(4))?, // airspeed
        PeriodicTask::new(Dur::from_int(40), Dur::from_int(8))?, // altitude
        PeriodicTask::new(Dur::from_int(40), Dur::from_int(6))?, // engine
    ])?;
    println!("Avionics sampling task set (periods 10/20/40/40 ms):");
    println!("  utilization U = {} (exact)", tasks.utilization());
    println!("  EDF schedulable: {}", analysis::edf_schedulable(&tasks));
    println!(
        "  Liu–Layland RM bound for n=4: {:.4}; RM schedulable (exact RTA): {}",
        analysis::rm_utilization_bound(4),
        analysis::rm_schedulable(&tasks)
    );

    let horizon = Time::from_int(2_000);
    let outcome = simulate(&tasks, Policy::EdfPreemptive, horizon)?;
    assert!(outcome.all_deadlines_met(), "EDF must meet all deadlines");
    println!(
        "\nSimulated EDF for {horizon} ms: {} job completions, 0 deadline misses",
        outcome.completions.len()
    );
    for (id, _) in tasks.iter() {
        if let Some((min_gap, max_gap)) = completion_gap_window(&outcome, id) {
            println!("  task {id}: completion gaps in [{min_gap}, {max_gap}] ms");
        }
    }

    // The monitoring layer: each task's completions drive one port process
    // of A(p) solving the (s, n) = (6, 4)-session problem over broadcast.
    let spec = SessionSpec::new(6, 4, 2)?;
    let d2 = Dur::from_int(5); // network delay bound between monitors
    let bounds = KnownBounds::periodic(d2)?;
    let mut engine = build_mp_system(&spec, &bounds)?;
    let mut schedule = completion_step_schedule(&tasks, &outcome, Dur::from_int(40))?;
    let mut delays = ConstantDelay::new(d2)?;
    let run = engine.run(&mut schedule, &mut delays, RunLimits::default())?;
    assert!(run.terminated, "monitoring layer must reach idle states");
    let sessions = count_sessions(&run.trace, spec.n(), port_of(&spec));
    assert!(sessions >= spec.s());
    let finish = run
        .trace
        .all_idle_time((0..spec.n()).map(session_problem::types::ProcessId::new))
        .expect("terminated");
    println!(
        "\nMonitoring layer: {sessions} snapshot sessions (needed {}) by t = {finish} ms",
        spec.s()
    );
    println!(
        "Slowest sampler period (40 ms) dominates, as the paper's s·c_max + d2 predicts: \
         bound = {}",
        session_problem::core::bounds::periodic_mp_upper(spec.s(), Dur::from_int(40), d2)
    );
    Ok(())
}
