//! Real-clock benchmark: run every MP timing model on OS threads with
//! real sleeps, verify simulator conformance, and compare the measured
//! *logical* running time against the paper's closed-form upper bounds.
//!
//! ```text
//! cargo run -p session-bench --bin realclock
//! cargo run -p session-bench --bin realclock -- --json       # BENCH_realclock.json
//! cargo run -p session-bench --bin realclock -- --json out.json
//! ```
//!
//! Report schema: `session-bench/realclock/v1` — per row the model, the
//! timing parameters, the closed-form bound and measured running time (in
//! logical units), the conformance verdict, and the runtime telemetry
//! (steps, late packets, physical wall clock).

use std::time::Duration;

use session_bench::json_report::json_flag;
use session_core::bounds::{
    async_mp_upper, periodic_mp_upper, semisync_mp_upper, sporadic_mp_upper, sync_time,
};
use session_net::{run_real, verify_conformance, RealConfig};
use session_obs::json::JsonWriter;
use session_obs::NullRecorder;
use session_types::{Dur, Result, SessionSpec, TimingModel};

/// The version tag written into every realclock report.
const SCHEMA: &str = "session-bench/realclock/v1";

struct RealRow {
    model: TimingModel,
    params: String,
    bound_label: String,
    bound: Dur,
    measured: Option<Dur>,
    ok: bool,
    sessions: u64,
    steps: u64,
    late_packets: u64,
    wall_clock_ms: f64,
    admissible: bool,
    solved: bool,
}

fn measure(model: TimingModel, spec: SessionSpec, unit: Duration) -> Result<RealRow> {
    let mut config = RealConfig::new(model, spec);
    config.unit = unit;
    let bounds = config.bounds()?;
    let outcome = run_real(&config, &mut NullRecorder)?;
    let report = verify_conformance(&outcome, &spec, &bounds);
    let s = spec.s();
    let (bound_label, bound) = match model {
        TimingModel::Synchronous => ("s·c2".to_string(), sync_time(s, config.c2)),
        TimingModel::Periodic => (
            "(s−1)·(c_max+d2)+c_max".to_string(),
            periodic_mp_upper(s, config.c2, config.d2),
        ),
        TimingModel::SemiSynchronous => (
            "semisync U".to_string(),
            semisync_mp_upper(s, config.c1, config.c2, config.d2),
        ),
        TimingModel::Sporadic => (
            "sporadic U (γ observed)".to_string(),
            sporadic_mp_upper(s, config.c1, config.d1, config.d2, report.gamma),
        ),
        TimingModel::Asynchronous => (
            "s·(c2+d2)".to_string(),
            async_mp_upper(s, config.c2, config.d2),
        ),
    };
    let measured = report.running_time.map(session_types::Time::since_origin);
    Ok(RealRow {
        model,
        params: format!(
            "c1={} c2={} d1={} d2={}",
            config.c1, config.c2, config.d1, config.d2
        ),
        bound_label,
        bound,
        measured,
        ok: report.solved && measured.is_some_and(|m| m <= bound),
        sessions: report.sessions,
        steps: outcome.steps,
        late_packets: outcome.late_packets,
        wall_clock_ms: outcome.wall_clock.as_secs_f64() * 1e3,
        admissible: report.admissible,
        solved: report.solved,
    })
}

fn to_json(rows: &[RealRow], spec: SessionSpec, unit: Duration) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SCHEMA);
    w.field_u64("s", spec.s());
    w.field_u64("n", spec.n() as u64);
    w.field_str("transport", "chan");
    w.field_f64("unit_us", unit.as_secs_f64() * 1e6);
    w.key("rows");
    w.begin_array();
    for row in rows {
        w.begin_object();
        w.field_str("model", &row.model.to_string());
        w.field_str("params", &row.params);
        w.field_str("bound", &row.bound_label);
        w.field_f64("bound_value", row.bound.to_f64());
        w.key("measured_value");
        match row.measured {
            Some(m) => w.value_f64(m.to_f64()),
            None => w.value_null(),
        }
        w.field_bool("ok", row.ok);
        w.field_u64("sessions", row.sessions);
        w.field_u64("steps", row.steps);
        w.field_u64("late_packets", row.late_packets);
        w.field_f64("wall_clock_ms", row.wall_clock_ms);
        w.field_bool("admissible", row.admissible);
        w.field_bool("solved", row.solved);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_realclock.json");
    let spec = match SessionSpec::new(3, 4, 2) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("bad spec: {err}");
            std::process::exit(1);
        }
    };
    let unit = Duration::from_micros(500);
    println!(
        "# Real-clock runs vs paper upper bounds — ({}, {})-session problem, MP\n",
        spec.s(),
        spec.n()
    );
    println!(
        "One OS thread per process, channel transport, {} µs per logical\n\
         unit. `measured` is the *logical* quiescence time of the verified\n\
         admissible trace; `bound` the paper's closed-form upper bound.\n",
        unit.as_micros()
    );
    println!("| model | params | bound | bound value | measured | ok | sessions | steps | late | wall clock |");
    println!("|---|---|---|---:|---:|---|---:|---:|---:|---:|");
    let mut rows = Vec::new();
    for model in TimingModel::ALL {
        match measure(model, spec, unit) {
            Ok(row) => {
                println!(
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.1} ms |",
                    row.model,
                    row.params,
                    row.bound_label,
                    row.bound,
                    row.measured
                        .map_or_else(|| "(did not quiesce)".into(), |m| m.to_string()),
                    if row.ok { "yes" } else { "NO" },
                    row.sessions,
                    row.steps,
                    row.late_packets,
                    row.wall_clock_ms
                );
                rows.push(row);
            }
            Err(err) => {
                eprintln!("{model} real-clock run failed: {err}");
                std::process::exit(1);
            }
        }
    }
    if rows.iter().any(|r| !r.solved || !r.admissible) {
        eprintln!("\nconformance failure: a real run was inadmissible or unsolved");
        std::process::exit(1);
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, to_json(&rows, spec, unit)) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("\nwrote {}", path.display());
    }
}
