//! Regenerates the paper's Table 1: every (model × substrate × L/U) cell,
//! paper bound vs measured, with the lower bounds demonstrated by the
//! executable adversaries.
//!
//! ```text
//! cargo run -p session-bench --bin table1
//! ```

fn main() {
    println!("# Table 1 — Bounds for the Session Problem (reproduction)\n");
    println!(
        "Upper bounds (U): the paper's algorithm under a worst-case-oriented\n\
         admissible schedule; measured simulated running time vs the closed-form\n\
         bound. Lower bounds (L): the executable adversary defeats a witness\n\
         algorithm that beats the bound, while the paper's algorithm survives\n\
         the same adversary.\n"
    );
    match session_bench::measure::table1_markdown() {
        Ok(table) => println!("{table}"),
        Err(err) => {
            eprintln!("table generation failed: {err}");
            std::process::exit(1);
        }
    }
}
