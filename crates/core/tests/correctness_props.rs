//! The paper's correctness condition as a property: for every algorithm and
//! every (randomly drawn) admissible timed computation, the trace contains
//! at least `s` disjoint sessions and the computation is admissible for its
//! model. This is the single most important invariant in the workspace.

use proptest::prelude::*;
use session_core::report::{run_mp, run_sm, MpConfig, SmConfig};
use session_core::verify::check_admissible;
use session_sim::{
    ConstantDelay, FixedPeriods, JitterSchedule, RunLimits, SporadicBursts, UniformDelay,
};
use session_smm::TreeSpec;
use session_types::{Dur, KnownBounds, SessionSpec, TimingModel};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

fn small_instance() -> impl Strategy<Value = (u64, usize, usize)> {
    (1u64..=5, 1usize..=6, 2usize..=4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn periodic_sm_always_solves(
        (s, n, b) in small_instance(),
        period_seeds in proptest::collection::vec(1i128..=6, 1..40),
    ) {
        let spec = SessionSpec::new(s, n, b).unwrap();
        let bounds = KnownBounds::periodic(d(1)).unwrap();
        let tree = TreeSpec::build(n, b);
        let num = n + tree.num_relays();
        let periods: Vec<Dur> = (0..num)
            .map(|i| d(period_seeds[i % period_seeds.len()]))
            .collect();
        let mut sched = FixedPeriods::new(periods).unwrap();
        let report = run_sm(
            SmConfig { model: TimingModel::Periodic, spec, bounds },
            &mut sched,
            RunLimits::default(),
        ).unwrap();
        prop_assert!(report.terminated, "did not terminate");
        prop_assert!(report.sessions >= s, "{} < {s} sessions", report.sessions);
        check_admissible(&report.trace, &bounds).unwrap();
    }

    #[test]
    fn periodic_mp_always_solves(
        (s, n, _b) in small_instance(),
        period_seeds in proptest::collection::vec(1i128..=6, 1..12),
        d2 in 0i128..=15,
        delay_seed in any::<u64>(),
    ) {
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let bounds = KnownBounds::periodic(d(d2)).unwrap();
        let periods: Vec<Dur> = (0..n)
            .map(|i| d(period_seeds[i % period_seeds.len()]))
            .collect();
        let mut sched = FixedPeriods::new(periods).unwrap();
        let mut delays = UniformDelay::new(Dur::ZERO, d(d2), delay_seed).unwrap();
        let report = run_mp(
            MpConfig { model: TimingModel::Periodic, spec, bounds },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        ).unwrap();
        prop_assert!(report.terminated);
        prop_assert!(report.sessions >= s, "{} < {s} sessions", report.sessions);
        check_admissible(&report.trace, &bounds).unwrap();
    }

    #[test]
    fn semisync_sm_always_solves(
        (s, n, b) in small_instance(),
        c1 in 1i128..=3,
        extra in 0i128..=9,
        seed in any::<u64>(),
    ) {
        let c2 = c1 + extra;
        let spec = SessionSpec::new(s, n, b).unwrap();
        let bounds = KnownBounds::semi_synchronous(d(c1), d(c2), d(5)).unwrap();
        let mut sched = JitterSchedule::new(d(c1), d(c2), seed).unwrap();
        let report = run_sm(
            SmConfig { model: TimingModel::SemiSynchronous, spec, bounds },
            &mut sched,
            RunLimits::default(),
        ).unwrap();
        prop_assert!(report.terminated);
        prop_assert!(report.sessions >= s, "{} < {s} sessions", report.sessions);
        check_admissible(&report.trace, &bounds).unwrap();
    }

    #[test]
    fn semisync_mp_always_solves(
        (s, n, _b) in small_instance(),
        c1 in 1i128..=3,
        extra in 0i128..=9,
        d2 in 0i128..=15,
        seed in any::<u64>(),
    ) {
        let c2 = c1 + extra;
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let bounds = KnownBounds::semi_synchronous(d(c1), d(c2), d(d2)).unwrap();
        let mut sched = JitterSchedule::new(d(c1), d(c2), seed).unwrap();
        let mut delays = UniformDelay::new(Dur::ZERO, d(d2), seed ^ 0xabcd).unwrap();
        let report = run_mp(
            MpConfig { model: TimingModel::SemiSynchronous, spec, bounds },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        ).unwrap();
        prop_assert!(report.terminated);
        prop_assert!(report.sessions >= s, "{} < {s} sessions", report.sessions);
        check_admissible(&report.trace, &bounds).unwrap();
    }

    #[test]
    fn sporadic_mp_always_solves(
        (s, n, _b) in small_instance(),
        c1 in 1i128..=3,
        d1 in 0i128..=6,
        du in 0i128..=10,
        pause in 0u8..=40,
        seed in any::<u64>(),
    ) {
        let d2 = d1 + du;
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let bounds = KnownBounds::sporadic(d(c1), d(d1), d(d2)).unwrap();
        let mut sched = SporadicBursts::new(d(c1), 8, pause, seed).unwrap();
        let mut delays = UniformDelay::new(d(d1), d(d2), seed ^ 0x1234).unwrap();
        let report = run_mp(
            MpConfig { model: TimingModel::Sporadic, spec, bounds },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        ).unwrap();
        prop_assert!(report.terminated, "A(sp) must terminate");
        prop_assert!(report.sessions >= s, "{} < {s} sessions", report.sessions);
        check_admissible(&report.trace, &bounds).unwrap();
    }

    #[test]
    fn async_sm_always_solves(
        (s, n, b) in small_instance(),
        period_seeds in proptest::collection::vec(1i128..=5, 1..40),
    ) {
        let spec = SessionSpec::new(s, n, b).unwrap();
        let bounds = KnownBounds::asynchronous();
        let tree = TreeSpec::build(n, b);
        let num = n + tree.num_relays();
        let periods: Vec<Dur> = (0..num)
            .map(|i| d(period_seeds[i % period_seeds.len()]))
            .collect();
        let mut sched = FixedPeriods::new(periods).unwrap();
        let report = run_sm(
            SmConfig { model: TimingModel::Asynchronous, spec, bounds },
            &mut sched,
            RunLimits::default(),
        ).unwrap();
        prop_assert!(report.terminated);
        prop_assert!(report.sessions >= s, "{} < {s} sessions", report.sessions);
    }

    #[test]
    fn async_mp_always_solves(
        (s, n, _b) in small_instance(),
        period in 1i128..=5,
        d2 in 0i128..=12,
        seed in any::<u64>(),
    ) {
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let bounds = KnownBounds::asynchronous();
        let mut sched = FixedPeriods::uniform(n, d(period)).unwrap();
        let mut delays = UniformDelay::new(Dur::ZERO, d(d2), seed).unwrap();
        let report = run_mp(
            MpConfig { model: TimingModel::Asynchronous, spec, bounds },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        ).unwrap();
        prop_assert!(report.terminated);
        prop_assert!(report.sessions >= s, "{} < {s} sessions", report.sessions);
    }

    #[test]
    fn synchronous_both_models_always_solve(
        (s, n, b) in small_instance(),
        c2 in 1i128..=5,
        d2 in 0i128..=5,
    ) {
        let spec = SessionSpec::new(s, n, b).unwrap();
        let bounds = KnownBounds::synchronous(d(c2), d(d2)).unwrap();
        let tree = TreeSpec::build(n, b);
        let mut sched = FixedPeriods::uniform(n + tree.num_relays(), d(c2)).unwrap();
        let report = run_sm(
            SmConfig { model: TimingModel::Synchronous, spec, bounds },
            &mut sched,
            RunLimits::default(),
        ).unwrap();
        prop_assert!(report.sessions >= s);
        check_admissible(&report.trace, &bounds).unwrap();

        let mut sched = FixedPeriods::uniform(n, d(c2)).unwrap();
        let mut delays = ConstantDelay::new(d(d2)).unwrap();
        let report = run_mp(
            MpConfig { model: TimingModel::Synchronous, spec, bounds },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        ).unwrap();
        prop_assert!(report.sessions >= s);
        check_admissible(&report.trace, &bounds).unwrap();
    }
}
