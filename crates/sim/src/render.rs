//! Human-readable rendering of recorded computations.
//!
//! Debugging a timing-model experiment means staring at interleavings; this
//! module renders a [`Trace`] as a per-process timeline so session
//! structure, idling and message flow are visible at a glance.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use session_types::ProcessId;

use crate::trace::{StepKind, Trace};

/// Renders a textual timeline of `trace`: one line per instant with the
/// steps taken at it, capped at `max_lines` lines (rendering an unbounded
/// trace should never OOM a test log).
///
/// Step notation: `p3→x1*` is process 3 accessing variable 1 (`*` marks a
/// port step), `p2!` a broadcasting message-passing step, `p2.` a silent
/// one, `p2<-m7` a network delivery, and a trailing `zZ` marks the step
/// after which the process was idle.
///
/// # Examples
///
/// ```
/// use session_sim::{render_timeline, StepKind, Trace, TraceEvent};
/// use session_types::{PortId, ProcessId, Time, VarId};
///
/// let mut trace = Trace::new(1);
/// trace.push(TraceEvent {
///     time: Time::from_int(2),
///     process: ProcessId::new(0),
///     kind: StepKind::VarAccess { var: VarId::new(0), port: Some(PortId::new(0)) },
///     idle_after: true,
/// });
/// let text = render_timeline(&trace, 10);
/// assert!(text.contains("t=2"));
/// assert!(text.contains("p0→x0*zZ"));
/// ```
pub fn render_timeline(trace: &Trace, max_lines: usize) -> String {
    let mut out = String::new();
    let mut lines = 0usize;
    let mut i = 0usize;
    let events = trace.events();
    while i < events.len() && lines < max_lines {
        let t = events[i].time;
        let mut cells = Vec::new();
        while i < events.len() && events[i].time == t {
            let e = &events[i];
            let mut cell = match &e.kind {
                StepKind::VarAccess { var, port } => format!(
                    "{}→{}{}",
                    e.process,
                    var,
                    if port.is_some() { "*" } else { "" }
                ),
                StepKind::MpStep { broadcast, .. } => {
                    format!("{}{}", e.process, if *broadcast { "!" } else { "." })
                }
                StepKind::Deliver { msg } => format!("{}<-{}", e.process, msg),
            };
            if e.idle_after && e.kind.is_process_step() {
                cell.push_str("zZ");
            }
            cells.push(cell);
            i += 1;
        }
        let _ = writeln!(out, "t={:<8} {}", t.to_string(), cells.join("  "));
        lines += 1;
    }
    if i < events.len() {
        let _ = writeln!(out, "… {} more events", events.len() - i);
    }
    out
}

/// Renders the trace as two CSV blocks (events, then messages), for
/// external plotting or spreadsheet inspection.
///
/// Event columns: `time,process,kind,detail,idle_after`; message columns:
/// `msg,from,to,sent_at,delivered_at` (empty when undelivered).
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("time,process,kind,detail,idle_after\n");
    for e in trace.events() {
        let (kind, detail) = match &e.kind {
            StepKind::VarAccess { var, port } => (
                "access",
                match port {
                    Some(p) => format!("{var}:{p}"),
                    None => var.to_string(),
                },
            ),
            StepKind::MpStep {
                received,
                broadcast,
            } => ("step", format!("recv={received};bcast={broadcast}")),
            StepKind::Deliver { msg } => ("deliver", msg.to_string()),
        };
        let _ = writeln!(
            out,
            "{},{},{kind},{detail},{}",
            e.time, e.process, e.idle_after
        );
    }
    out.push_str("\nmsg,from,to,sent_at,delivered_at\n");
    for m in trace.messages() {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            m.msg,
            m.from,
            m.to,
            m.sent_at,
            m.delivered_at.map(|t| t.to_string()).unwrap_or_default()
        );
    }
    out
}

/// Per-process step statistics of a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessStats {
    /// Process steps taken (deliveries excluded).
    pub steps: usize,
    /// Port steps among them (shared-memory tagging only; message-passing
    /// port steps need the port map and are counted by the verifier).
    pub port_steps: usize,
    /// Whether (and when) the process entered an idle state.
    pub idle_at: Option<session_types::Time>,
}

/// Summarizes a trace: step counts per process, in process order.
pub fn process_stats(trace: &Trace) -> BTreeMap<ProcessId, ProcessStats> {
    let mut stats: BTreeMap<ProcessId, ProcessStats> = BTreeMap::new();
    for e in trace.events() {
        if !e.kind.is_process_step() {
            continue;
        }
        let entry = stats.entry(e.process).or_insert(ProcessStats {
            steps: 0,
            port_steps: 0,
            idle_at: None,
        });
        entry.steps += 1;
        if matches!(e.kind, StepKind::VarAccess { port: Some(_), .. }) {
            entry.port_steps += 1;
        }
    }
    for (p, entry) in &mut stats {
        entry.idle_at = trace.idle_time(*p);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use session_types::{PortId, Time, VarId};

    fn sample_trace() -> Trace {
        let mut trace = Trace::new(2);
        trace.push(TraceEvent {
            time: Time::from_int(1),
            process: ProcessId::new(0),
            kind: StepKind::VarAccess {
                var: VarId::new(0),
                port: Some(PortId::new(0)),
            },
            idle_after: false,
        });
        trace.push(TraceEvent {
            time: Time::from_int(1),
            process: ProcessId::new(1),
            kind: StepKind::MpStep {
                received: 0,
                broadcast: true,
            },
            idle_after: false,
        });
        let msg = trace.record_send(ProcessId::new(1), ProcessId::new(0), Time::from_int(1));
        trace.push(TraceEvent {
            time: Time::from_int(2),
            process: ProcessId::new(0),
            kind: StepKind::Deliver { msg },
            idle_after: false,
        });
        trace.record_delivery(msg, Time::from_int(2));
        trace.push(TraceEvent {
            time: Time::from_int(3),
            process: ProcessId::new(0),
            kind: StepKind::VarAccess {
                var: VarId::new(0),
                port: None,
            },
            idle_after: true,
        });
        trace
    }

    #[test]
    fn timeline_groups_by_instant() {
        let text = render_timeline(&sample_trace(), 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("p0→x0*"));
        assert!(lines[0].contains("p1!"));
        assert!(lines[1].contains("p0<-m0"));
        assert!(lines[2].contains("p0→x0zZ"));
    }

    #[test]
    fn timeline_truncates() {
        let text = render_timeline(&sample_trace(), 1);
        assert!(text.contains("more events"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn stats_count_steps_and_ports() {
        let stats = process_stats(&sample_trace());
        let p0 = &stats[&ProcessId::new(0)];
        assert_eq!(p0.steps, 2); // delivery excluded
        assert_eq!(p0.port_steps, 1);
        assert_eq!(p0.idle_at, Some(Time::from_int(3)));
        let p1 = &stats[&ProcessId::new(1)];
        assert_eq!(p1.steps, 1);
        assert_eq!(p1.idle_at, None);
    }

    #[test]
    fn csv_export_contains_both_blocks() {
        let csv = to_csv(&sample_trace());
        assert!(csv.starts_with("time,process,kind,detail,idle_after"));
        assert!(csv.contains("1,p0,access,x0:y0,false"));
        assert!(csv.contains("2,p0,deliver,m0,false"));
        assert!(csv.contains("msg,from,to,sent_at,delivered_at"));
        assert!(csv.contains("m0,p1,p0,1,2"));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(render_timeline(&Trace::new(1), 5), "");
        assert!(process_stats(&Trace::new(1)).is_empty());
    }
}
