//! Real-time task scheduling substrate for the session-problem
//! reproduction.
//!
//! The paper's periodic and sporadic timing constraints are "inspired by
//! constraints with the same names commonly used in many real-time
//! problems, especially in scheduling of real time tasks for a
//! uniprocessor" (§1, citing Liu & Layland \[11\] and Jeffay et al. \[9, 10\]):
//! periodic constraints model continual sampling (avionics, process
//! control); sporadic constraints model event-driven processing with a
//! minimum separation but no maximum.
//!
//! This crate reproduces that context:
//!
//! * [`PeriodicTask`] / [`SporadicTask`] / [`TaskSet`] — the task models;
//! * [`analysis`] — classic schedulability tests: total utilization, the
//!   Liu–Layland rate-monotonic bound `n(2^{1/n} − 1)`, exact
//!   response-time analysis for fixed priorities, the EDF utilization
//!   criterion `U ≤ 1`, and Jeffay–Stanat–Martel's necessary-and-sufficient
//!   conditions for *non-preemptive* EDF;
//! * [`sched`] — an event-driven uniprocessor scheduler simulator (EDF and
//!   rate-monotonic, preemptive and non-preemptive) producing job
//!   completion traces and deadline-miss reports;
//! * [`bridge`] — the connection back to the session problem: a
//!   schedulable task set's job stream yields exactly the *periodic* /
//!   *sporadic* step schedules of `session-sim`, so a session algorithm
//!   can run "on top of" a simulated real-time workload.
//!
//! # Examples
//!
//! ```
//! use session_rt::{analysis, PeriodicTask, TaskSet};
//! use session_types::Dur;
//!
//! # fn main() -> Result<(), session_types::Error> {
//! let tasks = TaskSet::periodic(vec![
//!     PeriodicTask::new(Dur::from_int(4), Dur::from_int(1))?,
//!     PeriodicTask::new(Dur::from_int(6), Dur::from_int(2))?,
//! ])?;
//! // U = 1/4 + 2/6 = 7/12 <= 1: EDF schedulable.
//! assert!(analysis::edf_schedulable(&tasks));
//! // And under the Liu–Layland RM bound for n = 2 (~0.828).
//! assert!(analysis::rm_utilization_test(&tasks));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bridge;
pub mod sched;

mod task;

pub use task::{PeriodicTask, SporadicTask, TaskId, TaskSet};
