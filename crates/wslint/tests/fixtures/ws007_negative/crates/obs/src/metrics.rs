//! Registry for the clean fixture: a digit-bearing name is registered,
//! documented and emitted — the old grep false-positived on it.
pub const METRIC_NAMES: &[&str] = &[
    "serve.sessions_shed",
    "serve.close_lag_p99_ms",
];
