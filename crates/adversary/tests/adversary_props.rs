//! Property-based sweeps of the lower-bound adversaries: across random
//! instance shapes, each construction must keep succeeding against its
//! witness (and the paper's algorithms must keep surviving).

use proptest::prelude::*;
use session_adversary::contamination::contamination_analysis;
use session_adversary::naive::{naive_sm_system, periodic_sm_demo, NaiveMpPort};
use session_adversary::rescale::{k_period, rescaling_attack};
use session_adversary::retime::{block_constant, retiming_attack};
use session_core::system::{build_sm_system, port_of};
use session_core::verify::count_sessions;
use session_mpm::{MpEngine, MpProcess};
use session_sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_types::{Dur, KnownBounds, PortId, ProcessId, SessionSpec};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 5.1 across sizes: whenever the construction applies
    /// (B >= 2), it defeats the silent witness with an admissible,
    /// state-equivalent computation.
    #[test]
    fn retiming_always_defeats_the_witness(
        s in 2u64..5,
        n_exp in 2u32..5,        // n = 2^k so log2 n is nontrivial
        c2 in 8i128..=20,
    ) {
        let n = 1usize << n_exp;
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let c1 = d(1);
        let c2 = d(c2);
        prop_assume!(block_constant(&spec, c1, c2) >= 2);
        let outcome = retiming_attack(
            || naive_sm_system(&spec, spec.s()),
            &spec,
            c1,
            c2,
            RunLimits::default(),
        )
        .unwrap();
        prop_assert!(outcome.admissible, "inadmissible retiming at s={s}, n={n}");
        prop_assert!(outcome.same_global_state, "state drift at s={s}, n={n}");
        prop_assert!(
            outcome.sessions < s,
            "no deficit at s={s}, n={n}: {} sessions",
            outcome.sessions
        );
    }

    /// Theorem 6.5 across delay windows: the rescaling keeps destroying the
    /// witness's sessions while staying admissible.
    #[test]
    fn rescaling_always_defeats_the_witness(
        s in 2u64..6,
        n in 2usize..5,
        u_blocks in 1i128..5, // u = 4 * c1 * u_blocks so B = u_blocks
    ) {
        let c1 = d(1);
        let d1 = d(0);
        let d2 = d(4 * u_blocks);
        let spec = SessionSpec::new(s, n, 2).unwrap();
        // The theorem perturbs algorithms running in time < B·K·(s−1);
        // the silent witness takes s·K, so it only qualifies when
        // s < B·(s−1).
        prop_assume!(s < u_blocks as u64 * (s - 1));
        let k = k_period(c1, d1, d2).unwrap();
        let processes: Vec<Box<dyn MpProcess<session_core::SessionMsg>>> = (0..n)
            .map(|_| Box::new(NaiveMpPort::new(s)) as Box<_>)
            .collect();
        let ports = (0..n).map(|i| (ProcessId::new(i), PortId::new(i))).collect();
        let mut engine = MpEngine::new(processes, ports).unwrap();
        let mut sched = FixedPeriods::uniform(n, k).unwrap();
        let mut delays = ConstantDelay::new(d2).unwrap();
        let outcome = engine.run(&mut sched, &mut delays, RunLimits::default()).unwrap();
        prop_assert!(outcome.terminated);
        // Unperturbed, the witness looks fine:
        prop_assert_eq!(count_sessions(&outcome.trace, n, port_of(&spec)), s);
        let result = rescaling_attack(&outcome.trace, &spec, c1, d1, d2).unwrap();
        prop_assert!(result.admissible, "inadmissible rescale at s={s}, n={n}, B={u_blocks}");
        prop_assert!(
            result.sessions < s,
            "no deficit at s={s}, n={n}, B={u_blocks}: {} sessions",
            result.sessions
        );
    }

    /// Lemma 4.4 across shapes: contamination never outruns
    /// ((2b-1)^t - 1)/2 for any slowed process and any window length.
    #[test]
    fn contamination_lemma_never_violated(
        n in 2usize..12,
        b in 2usize..5,
        slow in 0usize..12,
        subrounds in 1u32..10,
    ) {
        let slow = slow % n;
        let spec = SessionSpec::new(2, n, b).unwrap();
        let bounds = KnownBounds::periodic(d(1)).unwrap();
        let report = contamination_analysis(
            || build_sm_system(&spec, &bounds),
            n,
            ProcessId::new(slow),
            subrounds,
            b,
        )
        .unwrap();
        prop_assert!(report.lemma_holds, "n={n}, b={b}, slow={slow}, t={subrounds}");
    }

    /// The periodic adversary defeats the silent witness for every slow
    /// factor that actually slows (>= s makes the witness idle before the
    /// slow process finishes its first s steps).
    #[test]
    fn slowdown_factor_does_not_matter(
        s in 2u64..5,
        n in 2usize..7,
        factor in 8i128..200,
    ) {
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let demo = periodic_sm_demo(&spec, factor, RunLimits::default()).unwrap();
        prop_assert!(
            demo.demonstrates_bound(),
            "s={s}, n={n}, factor={factor}: naive {} vs correct {}",
            demo.naive_sessions,
            demo.correct_sessions
        );
    }
}
