//! A guided tour of the paper, theorem by theorem: each section runs the
//! relevant experiment and prints what the paper claims next to what this
//! reproduction measures.
//!
//! ```text
//! cargo run --example paper_tour
//! ```

use session_problem::adversary::contamination::{contamination_analysis, lemma_bound};
use session_problem::adversary::naive::naive_sm_system;
use session_problem::adversary::reorder::afl_reorder_attack;
use session_problem::adversary::rescale::{k_period, rescaling_attack};
use session_problem::adversary::retime::retiming_attack;
use session_problem::core::report::{run_mp, run_sm, MpConfig, SmConfig};
use session_problem::core::system::build_sm_system;
use session_problem::core::{bounds, verify::count_sessions};
use session_problem::mpm::MpEngine;
use session_problem::sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_problem::smm::TreeSpec;
use session_problem::types::{
    Dur, Error, KnownBounds, PortId, ProcessId, SessionSpec, TimingModel,
};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

fn heading(title: &str) {
    println!("\n━━━ {title} ━━━");
}

fn main() -> Result<(), Error> {
    println!("The Impact of Time on the Session Problem — a guided tour");
    println!("(Rhee & Welch, PODC 1992, reproduced in Rust)");

    // ------------------------------------------------------------------
    heading("§1/[2] The synchronous baseline: no communication at all");
    let spec = SessionSpec::new(4, 8, 2)?;
    let c2 = d(3);
    let kb = KnownBounds::synchronous(c2, d(1))?;
    let tree = TreeSpec::build(8, 2);
    let mut sched = FixedPeriods::uniform(8 + tree.num_relays(), c2)?;
    let report = run_sm(
        SmConfig {
            model: TimingModel::Synchronous,
            spec,
            bounds: kb,
        },
        &mut sched,
        RunLimits::default(),
    )?;
    println!("Paper: s·c2 = {}.", bounds::sync_time(4, c2));
    println!(
        "Measured: {} ({} sessions, {} messages — silence is golden).",
        report.running_time.unwrap(),
        report.sessions,
        report.trace.messages().len()
    );

    // ------------------------------------------------------------------
    heading("Theorem 4.1: A(p) solves the periodic model in s·c_max + one flood");
    let kb = KnownBounds::periodic(d(12))?;
    let periods: Vec<Dur> = (0..8 + tree.num_relays())
        .map(|i| d(i as i128 % 4 + 1))
        .collect();
    let c_max = d(4);
    let mut sched = FixedPeriods::new(periods)?;
    let report = run_sm(
        SmConfig {
            model: TimingModel::Periodic,
            spec,
            bounds: kb,
        },
        &mut sched,
        RunLimits::default(),
    )?;
    println!(
        "Paper: s·c_max + O(log_b n)·c_max = {} with our flood constant.",
        bounds::periodic_sm_upper(&spec, c_max, tree.flood_rounds_bound())
    );
    println!(
        "Measured: {} ({} sessions) — the unknown rates cost one announcement flood.",
        report.running_time.unwrap(),
        report.sessions
    );

    // ------------------------------------------------------------------
    heading("Theorem 4.3: slow one process and silent algorithms die (Lemma 4.4)");
    let kb = KnownBounds::periodic(d(1))?;
    let analysis =
        contamination_analysis(|| build_sm_system(&spec, &kb), 8, ProcessId::new(7), 4, 2)?;
    for sub in &analysis.subrounds {
        println!(
            "  subround {}: |P(t)| = {} ≤ (3^t−1)/2 = {}",
            sub.subround,
            sub.contaminated_processes.len(),
            lemma_bound(sub.subround, 2)
        );
    }
    println!(
        "Uncontaminated ports after 4 subrounds: {} — they still behave as if p7 were fast.",
        analysis.uncontaminated_ports.len()
    );

    // ------------------------------------------------------------------
    heading("Theorem 5.1: the semi-synchronous retiming adversary");
    let spec51 = SessionSpec::new(3, 8, 2)?;
    let attack = retiming_attack(
        || naive_sm_system(&spec51, spec51.s()),
        &spec51,
        d(1),
        d(8),
        RunLimits::default(),
    )?;
    println!(
        "Paper: algorithms faster than min(⌊c2/2c1⌋, ⌊log_b n⌋)·c2·(s−1) = {} are wrong.",
        bounds::semisync_sm_lower(&spec51, d(1), d(8))
    );
    println!(
        "Measured: witness reordered+retimed into an admissible computation with {}/{} \
         sessions (state-equal: {}).",
        attack.sessions, attack.s, attack.same_global_state
    );

    // ------------------------------------------------------------------
    heading("[2]'s foundation: pure reordering kills fast asynchronous algorithms");
    let spec_afl = SessionSpec::new(3, 16, 2)?;
    let afl = afl_reorder_attack(
        || naive_sm_system(&spec_afl, spec_afl.s()),
        &spec_afl,
        RunLimits::default(),
    )?;
    println!(
        "Witness finished in {} rounds < (s−1)·⌊log_b n⌋ = {}; reordered to {}/{} sessions.",
        afl.recorded_rounds,
        bounds::async_sm_lower_rounds(&spec_afl),
        afl.sessions,
        afl.s
    );

    // ------------------------------------------------------------------
    heading("Theorem 6.1: A(sp) exploits the delay window [d1, d2]");
    let spec6 = SessionSpec::new(4, 3, 2)?;
    let c1 = d(1);
    let d2 = d(12);
    let kb = KnownBounds::sporadic(c1, Dur::ZERO, d2)?;
    let mut sched = FixedPeriods::uniform(3, d(2))?;
    let mut delays = ConstantDelay::new(d2)?;
    let report = run_mp(
        MpConfig {
            model: TimingModel::Sporadic,
            spec: spec6,
            bounds: kb,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
    )?;
    println!(
        "Paper: min((⌊u/c1⌋+3)γ+u, d2+γ)(s−1)+γ = {} (γ = {}).",
        bounds::sporadic_mp_upper(4, c1, Dur::ZERO, d2, report.gamma),
        report.gamma
    );
    println!(
        "Measured: {} ({} sessions).",
        report.running_time.unwrap(),
        report.sessions
    );

    // ------------------------------------------------------------------
    heading("Theorem 6.5: rescale-and-retime destroys too-fast sporadic algorithms");
    let k = k_period(c1, Dur::ZERO, d(16))?;
    let naive: Vec<Box<dyn session_problem::mpm::MpProcess<session_problem::core::SessionMsg>>> =
        (0..3)
            .map(|_| Box::new(session_problem::adversary::naive::NaiveMpPort::new(4)) as Box<_>)
            .collect();
    let ports = (0..3)
        .map(|i| (ProcessId::new(i), PortId::new(i)))
        .collect();
    let mut engine = MpEngine::new(naive, ports)?;
    let mut sched = FixedPeriods::uniform(3, k)?;
    let mut delays = ConstantDelay::new(d(16))?;
    let outcome = engine.run(&mut sched, &mut delays, RunLimits::default())?;
    let before = count_sessions(&outcome.trace, 3, |p: ProcessId| {
        (p.index() < 3).then(|| PortId::new(p.index()))
    });
    let spec65 = SessionSpec::new(4, 3, 2)?;
    let rescale = rescaling_attack(&outcome.trace, &spec65, c1, Dur::ZERO, d(16))?;
    println!(
        "Witness at period K = {k}: {before} sessions before, {} after the rescaling \
         (admissible: {}; delays kept within [d2−u, d2]).",
        rescale.sessions, rescale.admissible
    );
    println!(
        "Paper's lower bound at these constants: {} per computation.",
        bounds::sporadic_mp_lower(4, c1, Dur::ZERO, d(16))
    );

    // ------------------------------------------------------------------
    heading("Table 1, top to bottom");
    println!("Run `cargo run -p session-bench --bin table1` for all 16 cells;");
    println!("EXPERIMENTS.md records the full paper-vs-measured comparison.");

    Ok(())
}
