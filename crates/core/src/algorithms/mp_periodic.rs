//! The periodic message-passing algorithm `A(p)` (§4).

use std::collections::BTreeSet;

use session_mpm::{Envelope, MpProcess};
use session_types::ProcessId;

use crate::msg::SessionMsg;

/// The paper's `A(p)` over the broadcast network: take `s − 1` (port)
/// steps, broadcast the fact at the `(s − 1)`-th, and idle after hearing
/// the fact from all `n` port processes and taking at least one more step.
///
/// Running time (Theorem 4.1): `s · c_max + d2` (plus one step to pick the
/// last message out of the buffer).
#[derive(Clone, Debug)]
pub struct PeriodicMpPort {
    s: u64,
    n: usize,
    steps: u64,
    done: BTreeSet<ProcessId>,
    heard_all_at: Option<u64>,
}

impl PeriodicMpPort {
    /// Creates the port process for the `(s, n)`-session problem.
    pub fn new(s: u64, n: usize) -> PeriodicMpPort {
        PeriodicMpPort {
            s,
            n,
            steps: 0,
            done: BTreeSet::new(),
            heard_all_at: None,
        }
    }

    /// Port steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// How many port processes are known to have completed their `s − 1`
    /// steps.
    pub fn done_count(&self) -> usize {
        self.done.len()
    }

    /// The step at which the announcement is broadcast: the `(s − 1)`-th,
    /// or the first step when `s = 1` (there is no zeroth step to attach
    /// the announcement to).
    fn announce_step(&self) -> u64 {
        self.s.saturating_sub(1).max(1)
    }
}

impl MpProcess<SessionMsg> for PeriodicMpPort {
    fn step(&mut self, inbox: Vec<Envelope<SessionMsg>>) -> Option<SessionMsg> {
        let threshold = self.s.saturating_sub(1);
        for env in &inbox {
            if env.payload.value >= threshold {
                self.done.insert(env.from);
            }
        }
        if self.is_idle() {
            return None;
        }
        self.steps += 1;
        let out = (self.steps == self.announce_step()).then(|| SessionMsg::new(threshold));
        if self.heard_all_at.is_none() && self.done.len() >= self.n {
            self.heard_all_at = Some(self.steps);
        }
        out
    }

    fn is_idle(&self) -> bool {
        match self.heard_all_at {
            Some(heard) => self.steps > heard,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done_from(i: usize, value: u64) -> Envelope<SessionMsg> {
        Envelope::new(ProcessId::new(i), SessionMsg::new(value))
    }

    #[test]
    fn broadcasts_exactly_once_at_step_s_minus_one() {
        let mut p = PeriodicMpPort::new(4, 2);
        assert_eq!(p.step(vec![]), None);
        assert_eq!(p.step(vec![]), None);
        assert_eq!(p.step(vec![]), Some(SessionMsg::new(3)));
        assert_eq!(p.step(vec![]), None);
        assert_eq!(p.steps_taken(), 4);
    }

    #[test]
    fn waits_for_all_n_announcements() {
        let mut p = PeriodicMpPort::new(2, 3);
        let _ = p.step(vec![done_from(0, 1), done_from(1, 1)]);
        for _ in 0..20 {
            let _ = p.step(vec![]);
        }
        assert!(!p.is_idle());
        assert_eq!(p.done_count(), 2);
        let _ = p.step(vec![done_from(2, 1)]);
        assert!(!p.is_idle(), "one more step required after hearing");
        let _ = p.step(vec![]);
        assert!(p.is_idle());
    }

    #[test]
    fn stale_announcements_are_ignored() {
        let mut p = PeriodicMpPort::new(3, 1);
        // value 1 < s - 1 = 2: not a completion announcement.
        let _ = p.step(vec![done_from(0, 1)]);
        assert_eq!(p.done_count(), 0);
        let _ = p.step(vec![done_from(0, 2)]);
        assert_eq!(p.done_count(), 1);
    }

    #[test]
    fn s_equals_one_announces_at_first_step() {
        let mut p = PeriodicMpPort::new(1, 2);
        assert_eq!(p.step(vec![]), Some(SessionMsg::new(0)));
        // Hearing both processes' announcements (threshold 0).
        let _ = p.step(vec![done_from(0, 0), done_from(1, 0)]);
        let _ = p.step(vec![]);
        assert!(p.is_idle());
    }

    #[test]
    fn idle_is_absorbing_and_silent() {
        let mut p = PeriodicMpPort::new(1, 1);
        let _ = p.step(vec![done_from(0, 0)]);
        let _ = p.step(vec![]);
        assert!(p.is_idle());
        let before = p.steps_taken();
        assert_eq!(p.step(vec![done_from(0, 5)]), None);
        assert_eq!(p.steps_taken(), before);
        assert!(p.is_idle());
    }
}
