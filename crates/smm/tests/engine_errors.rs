//! Failure-injection tests for the shared-memory engine: every misuse must
//! surface as a structured error, never as silent corruption.

use session_sim::{FixedPeriods, RunLimits};
use session_smm::{JoinSemiLattice, Knowledge, PortBinding, SmEngine, SmProcess};
use session_types::{Dur, Error, PortId, ProcessId, Time, VarId};

/// A process that can be configured to misbehave by targeting any variable.
#[derive(Debug)]
struct Configurable {
    target: VarId,
    steps: u64,
}

impl SmProcess<Knowledge> for Configurable {
    fn target(&self) -> VarId {
        self.target
    }
    fn step(&mut self, value: &Knowledge) -> Knowledge {
        self.steps += 1;
        let mut k = Knowledge::bottom();
        k.join(value);
        k
    }
    fn is_idle(&self) -> bool {
        self.steps >= 2
    }
}

fn boxed(target: usize) -> Box<dyn SmProcess<Knowledge>> {
    Box::new(Configurable {
        target: VarId::new(target),
        steps: 0,
    })
}

#[test]
fn scripted_step_for_unknown_process_errors() {
    let mut engine = SmEngine::new(vec![Knowledge::new()], vec![boxed(0)], 2, vec![]).unwrap();
    let err = engine
        .run_scripted(&[(Time::from_int(1), ProcessId::new(7))])
        .unwrap_err();
    assert!(matches!(err, Error::UnknownId { .. }), "{err}");
}

#[test]
fn targeting_a_missing_variable_errors() {
    let mut engine = SmEngine::new(vec![Knowledge::new()], vec![boxed(5)], 2, vec![]).unwrap();
    let mut sched = FixedPeriods::uniform(1, Dur::ONE).unwrap();
    let err = engine.run(&mut sched, RunLimits::default()).unwrap_err();
    assert!(matches!(err, Error::UnknownId { .. }), "{err}");
}

#[test]
fn b_bound_error_names_the_offender() {
    let mut engine = SmEngine::new(
        vec![Knowledge::new()],
        vec![boxed(0), boxed(0), boxed(0)],
        2,
        vec![],
    )
    .unwrap();
    let mut sched = FixedPeriods::uniform(3, Dur::ONE).unwrap();
    let err = engine.run(&mut sched, RunLimits::default()).unwrap_err();
    match err {
        Error::BBoundViolation {
            var,
            bound,
            process,
        } => {
            assert_eq!(var, VarId::new(0));
            assert_eq!(bound, 2);
            assert_eq!(process, ProcessId::new(2), "FIFO order: p2 is third");
        }
        other => panic!("expected BBoundViolation, got {other}"),
    }
}

#[test]
fn port_binding_to_variable_owned_by_wrong_process_is_structural() {
    // Binding port 0's variable to process 1 while process 0 actually
    // accesses it: construction succeeds (the engine cannot know targets
    // in advance), but process 0's accesses are then NOT port steps.
    let bindings = vec![PortBinding {
        port: PortId::new(0),
        var: VarId::new(0),
        process: ProcessId::new(1),
    }];
    let mut engine = SmEngine::new(
        vec![Knowledge::new(), Knowledge::new()],
        vec![boxed(0), boxed(1)],
        2,
        bindings,
    )
    .unwrap();
    let mut sched = FixedPeriods::uniform(2, Dur::ONE).unwrap();
    let outcome = engine.run(&mut sched, RunLimits::default()).unwrap();
    let port_steps = outcome
        .trace
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                session_sim::StepKind::VarAccess { port: Some(_), .. }
            )
        })
        .count();
    assert_eq!(
        port_steps, 0,
        "process 0's accesses to x0 are not port steps of process 1's port"
    );
}

#[test]
fn zero_step_budget_reports_nontermination_immediately() {
    let mut engine = SmEngine::new(vec![Knowledge::new()], vec![boxed(0)], 2, vec![]).unwrap();
    let mut sched = FixedPeriods::uniform(1, Dur::ONE).unwrap();
    let outcome = engine
        .run(&mut sched, RunLimits::default().with_max_steps(0))
        .unwrap();
    assert!(!outcome.terminated);
    assert_eq!(outcome.steps, 0);
}

#[test]
fn time_budget_cuts_the_run() {
    let mut engine = SmEngine::new(
        vec![Knowledge::new()],
        vec![Box::new(Configurable {
            target: VarId::new(0),
            steps: 0,
        }) as Box<dyn SmProcess<Knowledge>>],
        2,
        vec![],
    )
    .unwrap();
    // Needs 2 steps at period 5 (idle at t = 10), but time budget is 7.
    let mut sched = FixedPeriods::uniform(1, Dur::from_int(5)).unwrap();
    let outcome = engine
        .run(
            &mut sched,
            RunLimits::default().with_max_time(Time::from_int(7)),
        )
        .unwrap();
    assert!(!outcome.terminated);
    assert_eq!(outcome.steps, 1);
}
