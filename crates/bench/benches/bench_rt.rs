//! Benches for the real-time scheduling substrate (EXT-RT): schedulability
//! analyses and the uniprocessor scheduler simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use session_rt::sched::{simulate, Policy};
use session_rt::{analysis, PeriodicTask, TaskSet};
use session_types::{Dur, Time};
use std::time::Duration;

fn task_set(n: usize) -> TaskSet {
    // Periods 4, 6, 8, …; wcet 1 each: utilization well under 1.
    TaskSet::periodic(
        (0..n)
            .map(|i| PeriodicTask::new(Dur::from_int(4 + 2 * i as i128), Dur::from_int(1)).unwrap())
            .collect(),
    )
    .unwrap()
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt/analysis");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    for n in [4usize, 16, 64] {
        let tasks = task_set(n);
        group.bench_with_input(BenchmarkId::new("rta", n), &tasks, |b, tasks| {
            b.iter(|| analysis::response_times(tasks));
        });
        group.bench_with_input(BenchmarkId::new("np-edf", n), &tasks, |b, tasks| {
            b.iter(|| analysis::np_edf_schedulable(tasks));
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt/simulate");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    let tasks = task_set(8);
    for policy in [
        Policy::EdfPreemptive,
        Policy::RmPreemptive,
        Policy::EdfNonPreemptive,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| simulate(&tasks, policy, Time::from_int(2_000)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analysis, bench_simulation);
criterion_main!(benches);
