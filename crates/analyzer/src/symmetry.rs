//! Symmetry reduction: canonicalize global states of identity-free
//! message-passing targets under port-process permutation before the memo
//! lookup.
//!
//! In an MP system every process runs an identity-independent rule set:
//! the scheduler draws gaps from one shared menu, broadcasts fan out to
//! all `n` processes uniformly, and port `p` is process `p`. When no
//! hosted algorithm stores process identities in its local state
//! ([`crate::machine::MpAlgo::id_free`] — checked per target), renaming
//! the processes by any permutation `σ` maps reachable states to
//! reachable states and admissible continuations to admissible
//! continuations, with the session counter's covered/idle sets renamed
//! alongside. Two states in the same orbit therefore have identical
//! verdicts, and the memo can store one representative per orbit.
//!
//! The canonical form is the minimum, over all `n!` permutations, of the
//! joint hash of the permuted machine state
//! ([`crate::machine::MpMachine::hash_permuted`] — fingerprints, inbox
//! multisets with renamed senders, canonically ordered pending events,
//! per-process periods) and the permuted counter state
//! ([`crate::explore::SessionCounter::hash_permuted`] — renamed covered
//! ports and idle processes). Minimizing over the whole group is `O(n!)`
//! per state, which is the right trade at the checker's scopes (`n ≤ 4`);
//! the selector refuses scopes past [`MAX_PERMUTED`].
//!
//! Algorithms that remember *who* they heard from (`A(p)`, `A(sp)`,
//! `A(a)`) are excluded wholesale: their stored ids live inside opaque
//! fingerprints that a permutation cannot rewrite, so two genuinely
//! different states (same multiset of local states, ids pointing at
//! different peers) could otherwise collapse into one orbit.
//! Shared-memory targets are excluded too — the tree network's
//! variable wiring breaks the port-permutation automorphism.

use std::hash::Hasher;
use std::sync::OnceLock;

use rustc_hash::FxHasher;

use crate::explore::{AnyMachine, SessionCounter};

/// The largest process count canonicalized (8! hashes per state would
/// cost more than the states it saves at this checker's scopes).
pub(crate) const MAX_PERMUTED: usize = 5;

/// The canonical (orbit-minimal) memo key of the state, or `None` when the
/// target is not symmetric (shared memory, identity-carrying algorithms,
/// or a scope past [`MAX_PERMUTED`]) and the caller must fall back to the
/// plain key.
pub(crate) fn canonical_key(machine: &AnyMachine, counter: &SessionCounter) -> Option<u64> {
    let AnyMachine::Mp(m) = machine else {
        return None;
    };
    let n = m.num_processes();
    if n <= 1 || n > MAX_PERMUTED || !m.symmetric() {
        return None;
    }
    let mut best = u64::MAX;
    for sigma in group(n) {
        let mut hasher = FxHasher::default();
        m.hash_permuted(sigma, &mut hasher);
        counter.hash_permuted(sigma, &mut hasher);
        best = best.min(hasher.finish());
    }
    Some(best)
}

/// The cached permutation group for `n` processes. `canonical_key` runs
/// once per *state*, so regenerating the `n!` vectors there dominated the
/// reduction's own cost; the group per scope is computed exactly once per
/// process (and shared lock-free across exploration threads).
fn group(n: usize) -> &'static [Vec<usize>] {
    static GROUPS: [OnceLock<Vec<Vec<usize>>>; MAX_PERMUTED + 1] =
        [const { OnceLock::new() }; MAX_PERMUTED + 1];
    debug_assert!(n <= MAX_PERMUTED);
    GROUPS[n].get_or_init(|| permutations(n))
}

/// All permutations of `0..n`, identity first (plain recursive
/// generation; `n ≤ MAX_PERMUTED` keeps this tiny).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    let mut used = vec![false; n];
    fn go(
        n: usize,
        depth: usize,
        current: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if depth == n {
            out.push(current.clone());
            return;
        }
        for v in 0..n {
            if !used[v] {
                used[v] = true;
                current[depth] = v;
                go(n, depth + 1, current, used, out);
                used[v] = false;
            }
        }
    }
    go(n, 0, &mut current, &mut used, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{GapMode, MpAlgo, MpMachine};
    use session_core::algorithms::SyncMpPort;
    use session_types::{Dur, Time};

    fn sync_mp(n: usize, s: u64, first_steps: Vec<Time>) -> MpMachine {
        let algos: Vec<MpAlgo> = (0..n).map(|_| MpAlgo::Sync(SyncMpPort::new(s))).collect();
        MpMachine::new(
            algos,
            GapMode::PerStep(vec![Dur::from_int(1), Dur::from_int(2)]),
            vec![Dur::from_int(1)],
            first_steps,
        )
    }

    #[test]
    fn permutations_enumerate_the_group() {
        let perms = permutations(3);
        assert_eq!(perms.len(), 6);
        assert_eq!(perms[0], vec![0, 1, 2]);
        let distinct: std::collections::BTreeSet<Vec<usize>> = perms.into_iter().collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn mirror_states_share_a_canonical_key() {
        let one = Dur::from_int(1);
        let two = Dur::from_int(2);
        // p0 due at 1, p1 due at 2 — and the mirror image.
        let a = sync_mp(2, 3, vec![Time::ZERO + one, Time::ZERO + two]);
        let b = sync_mp(2, 3, vec![Time::ZERO + two, Time::ZERO + one]);
        let counter = SessionCounter::new(2, 3);
        let ka = canonical_key(&AnyMachine::Mp(a), &counter).expect("sync MP is symmetric");
        let kb = canonical_key(&AnyMachine::Mp(b), &counter).expect("sync MP is symmetric");
        assert_eq!(ka, kb);
    }

    #[test]
    fn asymmetric_counters_keep_mirror_states_apart() {
        use session_types::{PortId, ProcessId};
        let one = Dur::from_int(1);
        let two = Dur::from_int(2);
        let a = sync_mp(2, 3, vec![Time::ZERO + one, Time::ZERO + two]);
        let b = sync_mp(2, 3, vec![Time::ZERO + two, Time::ZERO + one]);
        // Counter has port 0 covered: the mirror machine state with the
        // *same* counter is a genuinely different joint state.
        let mut covered0 = SessionCounter::new(2, 3);
        covered0.observe(&crate::machine::StepInfo {
            time: Time::ZERO,
            process: ProcessId::new(0),
            port: Some(PortId::new(0)),
            was_idle: false,
            idle_after: false,
            is_process_step: true,
            b_violation: None,
        });
        let ka = canonical_key(&AnyMachine::Mp(a), &covered0).expect("symmetric");
        let kb = canonical_key(&AnyMachine::Mp(b), &covered0).expect("symmetric");
        assert_ne!(
            ka, kb,
            "covering port 0 breaks the mirror symmetry of the joint state"
        );
    }

    #[test]
    fn identity_carrying_algorithms_are_refused() {
        use session_core::algorithms::PeriodicMpPort;
        let algos: Vec<MpAlgo> = (0..2)
            .map(|_| MpAlgo::Periodic(PeriodicMpPort::new(3, 2)))
            .collect();
        let m = MpMachine::new(
            algos,
            GapMode::FixedPerProcess(vec![Dur::from_int(1), Dur::from_int(2)]),
            vec![Dur::from_int(1)],
            vec![Time::ZERO + Dur::from_int(1); 2],
        );
        assert_eq!(
            canonical_key(&AnyMachine::Mp(m), &SessionCounter::new(2, 3)),
            None
        );
    }
}
