//! The service front end: sockets, peers, routing, lifecycle.
//!
//! No async runtime is available to this workspace (and the lint policy
//! forbids the unsafe FFI a hand-rolled epoll loop would need), so the
//! design splits work by *cardinality*: connections are few — each peer
//! multiplexes thousands of sessions over one socket — so every
//! connection affords a blocking reader thread and a batching writer
//! thread, while sessions are many, so they share the shard event-loop
//! threads and never own one. The result has the same shape as an async
//! reactor: readiness-driven reads feed commands to sharded executors
//! over channels, and all waiting happens in `recv_timeout` parks.
//!
//! The reader thread is also the enforcement point: auth-gating, the
//! per-peer `Open` token bucket, and misbehavior scoring all happen
//! before a command reaches any shard, so a hostile peer burns its own
//! reader thread, never a shard.

use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use session_obs::{InMemoryRecorder, MetricsSnapshot, Recorder};
use session_types::{Error, Result, SessionSpec};

use crate::config::{ServeConfig, ServeTransport};
use crate::peer::{PeerHandle, PeerManager, TokenBucket};
use crate::shard::{LoadStats, Shard, ShardCommand};
use crate::wire::{datagram, undatagram, write_frame, ClientFrame, RejectCode, ServerFrame};

/// How long blocking reads and writer parks last before rechecking the
/// stop flag and peer liveness.
const POLL: Duration = Duration::from_millis(25);
/// Frames a writer coalesces into one flush.
const WRITE_BATCH: usize = 256;

/// Shared server state reachable from every reader thread.
struct Inner {
    config: ServeConfig,
    stop: AtomicBool,
    manager: PeerManager,
    global: Arc<LoadStats>,
    shards: Vec<(SyncSender<ShardCommand>, Arc<LoadStats>)>,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    frames_dropped: AtomicU64,
    protocol_errors: AtomicU64,
    rate_limited: AtomicU64,
    opens_queue_full: AtomicU64,
    peers_connected: AtomicU64,
    peer_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Routes an admission-checked `Open` to the least-loaded shard,
    /// counting queued-but-unprocessed opens as load so a burst spreads
    /// across shards instead of piling into one queue.
    ///
    /// Shard queues are bounded (at `max_sessions_per_shard`, the most
    /// opens a shard could ever admit from its backlog), so routing
    /// never blocks a reader thread: a full queue rejects the open as
    /// `Busy`, exactly like the shard's own shed-at-capacity path.
    fn route_open(&self, cmd: ShardCommand) {
        let target = self
            .shards
            .iter()
            .min_by_key(|(_, stats)| stats.load_estimate())
            .expect("at least one shard"); // wslint: allow(ws004): validate() rejects shards == 0
        target.1.note_routed();
        match target.0.try_send(cmd) {
            Ok(()) => {}
            Err(TrySendError::Full(ShardCommand::Open { req, peer, .. })) => {
                self.opens_queue_full.fetch_add(1, Ordering::Relaxed);
                target.1.note_unrouted();
                peer.send(ServerFrame::Reject {
                    req,
                    code: RejectCode::Busy,
                });
            }
            // A disconnected shard means shutdown; the peer's Open is
            // silently dropped with the connection about to close.
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {}
        }
    }

    /// Handles one decoded frame from `peer`. Returns `false` when the
    /// connection must be dropped.
    fn handle_frame(
        &self,
        peer: &PeerHandle,
        authed: &mut bool,
        bucket: &mut TokenBucket,
        frame: ClientFrame,
    ) -> bool {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        // Egress overflow scores the peer outside the manager (writers
        // and shards call `PeerHandle::send` directly), so the threshold
        // is re-checked here on every inbound frame.
        if self.manager.note_misbehavior(peer, 0) {
            return false;
        }
        match frame {
            ClientFrame::Hello { token } => {
                let ok = match self.config.auth_token {
                    None => true,
                    Some(expected) => token == expected,
                };
                if ok {
                    *authed = true;
                    let capacity = self.config.capacity().saturating_sub(self.global.live());
                    peer.send(ServerFrame::HelloOk { capacity });
                    true
                } else {
                    peer.kill(RejectCode::Unauthorized);
                    false
                }
            }
            ClientFrame::Ping { nonce } => {
                peer.send(ServerFrame::Pong { nonce });
                true
            }
            ClientFrame::Open {
                req,
                model,
                s,
                n,
                unit_us,
                seed,
            } => {
                if !*authed {
                    peer.send(ServerFrame::Reject {
                        req,
                        code: RejectCode::Unauthorized,
                    });
                    return !self.manager.note_misbehavior(peer, 1);
                }
                if !bucket.try_take(Instant::now()) {
                    self.rate_limited.fetch_add(1, Ordering::Relaxed);
                    peer.send(ServerFrame::Reject {
                        req,
                        code: RejectCode::RateLimited,
                    });
                    return !self.manager.note_misbehavior(peer, 2);
                }
                let cfg = &self.config;
                let spec = if s >= 1
                    && s <= cfg.max_spec_s
                    && n >= 2
                    && n <= cfg.max_spec_n
                    && unit_us >= 1
                    && unit_us <= cfg.max_unit_us
                {
                    SessionSpec::new(u64::from(s), n as usize, n as usize).ok()
                } else {
                    None
                };
                let Some(spec) = spec else {
                    peer.send(ServerFrame::Reject {
                        req,
                        code: RejectCode::Invalid,
                    });
                    return !self.manager.note_misbehavior(peer, 1);
                };
                if self.global.live() >= cfg.capacity() {
                    peer.send(ServerFrame::Reject {
                        req,
                        code: RejectCode::Busy,
                    });
                    return true;
                }
                self.route_open(ShardCommand::Open {
                    req,
                    peer: peer.clone(),
                    model,
                    spec,
                    unit_us,
                    seed,
                });
                true
            }
        }
    }

    /// Scores a wire-level violation. Returns `false` when the peer was
    /// banned by it.
    fn wire_violation(&self, peer: &PeerHandle) -> bool {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        !self.manager.note_misbehavior(peer, 4)
    }
}

/// The final tally returned by [`Server::shutdown`].
#[derive(Debug)]
pub struct ServeReport {
    /// Merged metrics from every shard plus the socket layer, all under
    /// `serve.*` names (see DESIGN.md §15).
    pub metrics: MetricsSnapshot,
    /// High-water mark of concurrently live sessions across the service.
    pub peak_live_sessions: u64,
}

/// A running session service.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    shard_joins: Vec<JoinHandle<MetricsSnapshot>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner").finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the sockets, spawns the shards and the acceptor, and
    /// returns the running service.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] for an invalid configuration or
    /// a bind failure.
    pub fn start(config: ServeConfig) -> Result<Server> {
        config.validate()?;
        let global = Arc::new(LoadStats::default());
        let mut shards = Vec::new();
        let mut shard_joins = Vec::new();
        for index in 0..config.shards {
            // Bounded at the shard's session capacity: a deeper queue
            // could never admit its backlog anyway (the shard sheds at
            // `max_sessions_per_shard`), and the bound turns a runaway
            // open burst into `Busy` rejections instead of memory growth.
            let (tx, rx) = std::sync::mpsc::sync_channel(config.max_sessions_per_shard);
            let stats = Arc::new(LoadStats::default());
            let shard = Shard::new(index as u64, config.clone(), stats.clone(), global.clone());
            let join = std::thread::Builder::new()
                .name(format!("serve-shard-{index}"))
                .spawn(move || shard.run(&rx))
                .map_err(|e| Error::invalid_params(format!("spawning shard: {e}")))?;
            shards.push((tx, stats));
            shard_joins.push(join);
        }
        let inner = Arc::new(Inner {
            manager: PeerManager::new(config.ban_threshold),
            config,
            stop: AtomicBool::new(false),
            global,
            shards,
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            frames_dropped: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            opens_queue_full: AtomicU64::new(0),
            peers_connected: AtomicU64::new(0),
            peer_threads: Mutex::new(Vec::new()),
        });
        let (addr, accept) = match inner.config.transport {
            ServeTransport::Tcp => start_tcp(&inner)?,
            ServeTransport::Udp => start_udp(&inner)?,
        };
        Ok(Server {
            addr,
            inner,
            accept: Some(accept),
            shard_joins,
        })
    }

    /// The bound socket address (with the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently live sessions across all shards.
    pub fn live_sessions(&self) -> u64 {
        self.inner.global.live()
    }

    /// Stops accepting, lets live sessions finish, tears down every
    /// thread, and returns the merged report.
    ///
    /// # Panics
    ///
    /// Re-raises panics from service threads.
    pub fn shutdown(mut self) -> ServeReport {
        // Drain order matters: shards first (new opens are shed while
        // live sessions run to close, with peer writers still flushing
        // their Closed frames), then the socket layer.
        for (tx, _) in &self.inner.shards {
            let _ = tx.send(ShardCommand::Shutdown);
        }
        let mut rec = InMemoryRecorder::new();
        for join in self.shard_joins.drain(..) {
            // wslint: allow(ws004): shutdown re-raises service-thread panics by contract
            let snapshot = join.join().expect("shard panicked");
            for (name, value) in snapshot.counters() {
                rec.counter(name, value);
            }
            for (name, hist) in snapshot.histograms() {
                rec.merge_histogram(name, hist);
            }
        }
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            // wslint: allow(ws004): shutdown re-raises service-thread panics by contract
            accept.join().expect("acceptor panicked");
        }
        // A poisoned registry only means some peer thread panicked while
        // holding it; the Vec of join handles is still intact, and those
        // panics surface through the joins below.
        let peers = std::mem::take(
            &mut *self
                .inner
                .peer_threads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for join in peers {
            // wslint: allow(ws004): shutdown re-raises service-thread panics by contract
            join.join().expect("peer thread panicked");
        }
        let inner = &self.inner;
        rec.counter("serve.frames_in", inner.frames_in.load(Ordering::Relaxed));
        rec.counter("serve.frames_out", inner.frames_out.load(Ordering::Relaxed));
        rec.counter(
            "serve.frames_dropped",
            inner.frames_dropped.load(Ordering::Relaxed),
        );
        rec.counter(
            "serve.protocol_errors",
            inner.protocol_errors.load(Ordering::Relaxed),
        );
        rec.counter(
            "serve.rate_limited",
            inner.rate_limited.load(Ordering::Relaxed),
        );
        rec.counter(
            "serve.opens_queue_full",
            inner.opens_queue_full.load(Ordering::Relaxed),
        );
        rec.counter(
            "serve.peers_connected",
            inner.peers_connected.load(Ordering::Relaxed),
        );
        rec.counter("serve.peers_banned", inner.manager.banned_total());
        let peak = inner.global.peak();
        rec.gauge("serve.peak_live_sessions", peak as f64);
        ServeReport {
            metrics: rec.snapshot(),
            peak_live_sessions: peak,
        }
    }
}

fn io_err(context: &str, e: &std::io::Error) -> Error {
    Error::invalid_params(format!("{context}: {e}"))
}

fn start_tcp(inner: &Arc<Inner>) -> Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(&inner.config.listen).map_err(|e| io_err("tcp bind", &e))?;
    let addr = listener.local_addr().map_err(|e| io_err("tcp addr", &e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("tcp nonblocking", &e))?;
    let inner = inner.clone();
    let accept = std::thread::Builder::new()
        .name("serve-accept".to_owned())
        .spawn(move || accept_loop(&inner, &listener))
        .map_err(|e| Error::invalid_params(format!("spawning acceptor: {e}")))?;
    Ok((addr, accept))
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    while !inner.stopped() {
        match listener.accept() {
            Ok((stream, addr)) => spawn_tcp_peer(inner, stream, addr),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn spawn_tcp_peer(inner: &Arc<Inner>, stream: TcpStream, addr: SocketAddr) {
    if inner.manager.is_banned(addr.ip()) {
        // Best-effort Bye; the address stays banned either way.
        let mut stream = stream;
        let _ = write_frame(
            &mut stream,
            &ServerFrame::Bye {
                code: RejectCode::Banned,
            }
            .encode(),
        );
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    inner.peers_connected.fetch_add(1, Ordering::Relaxed);
    let (peer, egress) = PeerHandle::new(addr, inner.config.egress_capacity, Some(stream));
    let writer_inner = inner.clone();
    let writer_peer = peer.clone();
    let writer = std::thread::Builder::new()
        .name("serve-writer".to_owned())
        .spawn(move || tcp_writer(&writer_inner, &writer_peer, write_half, &egress));
    let reader_inner = inner.clone();
    let reader = std::thread::Builder::new()
        .name("serve-reader".to_owned())
        .spawn(move || tcp_reader(&reader_inner, &peer, read_half));
    if let Ok(mut threads) = inner.peer_threads.lock() {
        threads.extend(writer.into_iter().chain(reader));
    }
}

fn tcp_reader(inner: &Arc<Inner>, peer: &PeerHandle, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut authed = false;
    let mut bucket = TokenBucket::new(
        inner.config.open_rate,
        inner.config.open_burst,
        Instant::now(),
    );
    // Frames are reassembled from a local accumulator rather than
    // `read_exact`: with a read timeout, `read_exact` can drop a
    // half-arrived frame and desynchronize an honest-but-slow stream.
    let mut acc: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    'conn: while !inner.stopped() && !peer.is_dead() {
        match stream.read(&mut tmp) {
            Ok(0) => break, // EOF
            Ok(k) => acc.extend_from_slice(&tmp[..k]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => break, // reset
        }
        let mut start = 0usize;
        while acc.len() - start >= 4 {
            let len_bytes: [u8; 4] = acc[start..start + 4].try_into().expect("4 bytes"); // wslint: allow(ws004): slice length is checked by the loop condition
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len == 0 || len > crate::wire::MAX_PAYLOAD {
                // A hostile length prefix desynchronizes the stream:
                // score it and drop the connection.
                let _ = inner.wire_violation(peer);
                if !peer.is_dead() {
                    peer.kill(RejectCode::Protocol);
                }
                break 'conn;
            }
            if acc.len() - start < 4 + len {
                break; // frame not fully arrived yet
            }
            let payload = &acc[start + 4..start + 4 + len];
            start += 4 + len;
            match ClientFrame::decode(payload) {
                // Framing is intact, so a bad payload only scores.
                Err(_) => {
                    if !inner.wire_violation(peer) {
                        break 'conn;
                    }
                }
                Ok(frame) => {
                    if !inner.handle_frame(peer, &mut authed, &mut bucket, frame) {
                        break 'conn;
                    }
                }
            }
        }
        acc.drain(..start);
    }
    if !peer.is_dead() {
        peer.kill(RejectCode::Protocol);
    }
}

/// Appends one frame to the writer's buffer as a single `write` call.
/// Frames are far smaller than the `BufWriter` capacity, so the append
/// is all-or-nothing and a failed write never leaves a half-framed
/// prefix behind to desynchronize the stream.
fn push_frame(out: &mut BufWriter<TcpStream>, frame: &ServerFrame) -> std::io::Result<()> {
    let bytes = datagram(&frame.encode());
    let n = out.write(&bytes)?;
    debug_assert_eq!(n, bytes.len(), "small frames append atomically");
    Ok(())
}

fn is_slow(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn tcp_writer(
    inner: &Arc<Inner>,
    peer: &PeerHandle,
    stream: TcpStream,
    egress: &Receiver<ServerFrame>,
) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut out = BufWriter::new(stream);
    'outer: loop {
        match egress.recv_timeout(POLL) {
            Ok(first) => {
                let mut batch = 0u64;
                let mut next = Some(first);
                while let Some(frame) = next.take() {
                    match push_frame(&mut out, &frame) {
                        Ok(()) => {
                            batch += 1;
                            if batch < WRITE_BATCH as u64 {
                                next = egress.try_recv().ok();
                            }
                        }
                        // The socket can't take writes — the peer has
                        // stopped reading. Drop the frame and score the
                        // peer rather than exit: the writer must keep
                        // draining so shards never block, and the score
                        // lets the ban threshold cut the connection.
                        Err(e) if is_slow(&e) => {
                            inner.frames_dropped.fetch_add(1, Ordering::Relaxed);
                            peer.misbehave(1);
                        }
                        Err(_) => break 'outer,
                    }
                }
                match out.flush() {
                    Ok(()) => {
                        inner.frames_out.fetch_add(batch, Ordering::Relaxed);
                    }
                    Err(e) if is_slow(&e) => {
                        // Unflushed frames stay buffered for the next
                        // flush attempt; only the stall is scored.
                        peer.misbehave(1);
                    }
                    Err(_) => break,
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if peer.is_dead() || inner.stopped() {
                    // Flush anything already queued (the Bye), then go.
                    while let Ok(frame) = egress.try_recv() {
                        if push_frame(&mut out, &frame).is_err() {
                            break;
                        }
                        inner.frames_out.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = out.flush();
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // The writer owns connection teardown: `kill` only shuts the read
    // side so the frames queued before it (rejects, the Bye) still
    // reach the wire above.
    let _ = out.get_ref().shutdown(std::net::Shutdown::Both);
    inner
        .frames_dropped
        .fetch_add(peer.dropped(), Ordering::Relaxed);
}

struct UdpPeer {
    handle: PeerHandle,
    bucket: TokenBucket,
    authed: bool,
}

fn start_udp(inner: &Arc<Inner>) -> Result<(SocketAddr, JoinHandle<()>)> {
    let socket = UdpSocket::bind(&inner.config.listen).map_err(|e| io_err("udp bind", &e))?;
    let addr = socket.local_addr().map_err(|e| io_err("udp addr", &e))?;
    socket
        .set_read_timeout(Some(POLL))
        .map_err(|e| io_err("udp timeout", &e))?;
    let inner = inner.clone();
    let accept = std::thread::Builder::new()
        .name("serve-udp".to_owned())
        .spawn(move || udp_loop(&inner, &socket))
        .map_err(|e| Error::invalid_params(format!("spawning udp loop: {e}")))?;
    Ok((addr, accept))
}

fn udp_loop(inner: &Arc<Inner>, socket: &UdpSocket) {
    let mut peers: std::collections::HashMap<SocketAddr, UdpPeer> =
        std::collections::HashMap::new();
    let mut buf = [0u8; 512];
    while !inner.stopped() {
        let (len, from) = match socket.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => continue,
        };
        if inner.manager.is_banned(from.ip()) {
            continue;
        }
        let peer = peers.entry(from).or_insert_with(|| {
            inner.peers_connected.fetch_add(1, Ordering::Relaxed);
            let (handle, egress) = PeerHandle::new(from, inner.config.egress_capacity, None);
            if let Ok(out) = socket.try_clone() {
                let writer_inner = inner.clone();
                let writer_peer = handle.clone();
                let writer = std::thread::Builder::new()
                    .name("serve-udp-writer".to_owned())
                    .spawn(move || udp_writer(&writer_inner, &writer_peer, &out, &egress));
                if let (Ok(mut threads), Ok(join)) = (inner.peer_threads.lock(), writer) {
                    threads.push(join);
                }
            }
            UdpPeer {
                handle,
                bucket: TokenBucket::new(
                    inner.config.open_rate,
                    inner.config.open_burst,
                    Instant::now(),
                ),
                authed: false,
            }
        });
        if peer.handle.is_dead() {
            continue;
        }
        match undatagram(&buf[..len]).and_then(ClientFrame::decode) {
            Err(_) => {
                let _ = inner.wire_violation(&peer.handle);
            }
            Ok(frame) => {
                let handle = peer.handle.clone();
                let _ = inner.handle_frame(&handle, &mut peer.authed, &mut peer.bucket, frame);
            }
        }
    }
}

fn udp_writer(
    inner: &Arc<Inner>,
    peer: &PeerHandle,
    socket: &UdpSocket,
    egress: &Receiver<ServerFrame>,
) {
    loop {
        match egress.recv_timeout(POLL) {
            Ok(frame) => {
                if socket
                    .send_to(&datagram(&frame.encode()), peer.addr())
                    .is_ok()
                {
                    inner.frames_out.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if peer.is_dead() || inner.stopped() {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    inner
        .frames_dropped
        .fetch_add(peer.dropped(), Ordering::Relaxed);
}
