//! Negative: every variant mapped, every doc cites a section, every
//! code covered both ways.

/// The trace lint codes.
pub enum LintCode {
    /// Sessions may interleave (§3.2).
    Interleaving,
    /// A session outlives its timing window (§4.1).
    WindowOverrun,
}

impl LintCode {
    pub fn code(self) -> &'static str {
        match self {
            LintCode::Interleaving => "SA001",
            LintCode::WindowOverrun => "SA002",
        }
    }
}
