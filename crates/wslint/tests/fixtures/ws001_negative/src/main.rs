//! Negative: annotated and test-code wall-clock reads are fine.

fn main() {
    // wslint: allow(ws001): demo deliberately measures real time
    let started = std::time::Instant::now();
    let _ = started;
    let s = "Instant::now() inside a string is not code";
    let _ = s;
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_exempt() {
        let _ = std::time::Instant::now();
    }
}
