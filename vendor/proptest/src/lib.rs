//! Offline vendored stand-in for the `proptest` crate.
//!
//! This workspace is built in environments with no access to crates.io, so
//! the slice of `proptest` it uses is reimplemented here:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`] / [`prop_oneof!`],
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//!   `boxed`, [`strategy::Just`], integer-range and tuple strategies,
//! * [`collection::vec`], [`collection::btree_map`], [`bool::weighted`]
//!   and [`arbitrary::any`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** On failure the runner prints the failing inputs,
//!   the per-case replay seed (`cc <16 hex digits>`) and the test name,
//!   then re-raises the panic. Failures are still exactly reproducible:
//!   every case derives its own seed from the test's name and index, and
//!   recorded seeds are replayed from the crate's
//!   `proptest-regressions/<source-stem>.txt` file before fresh cases run.
//! * **Deterministic by default.** The base seed is a hash of the test's
//!   full path, so a run is reproducible without any environment setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
#[allow(clippy::module_inception)]
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in 0u64..10, ys in proptest::collection::vec(0i128..4, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    |__rng: &mut $crate::test_runner::TestRng, __desc: &mut String| {
                        $(
                            let $arg = match $crate::strategy::Strategy::generate(&($strat), __rng) {
                                Some(__v) => {
                                    use ::std::fmt::Write as _;
                                    let _ = writeln!(__desc, "    {} = {:?}", stringify!($arg), __v);
                                    __v
                                }
                                None => return $crate::test_runner::CaseResult::Reject,
                            };
                        )+
                        $body
                        $crate::test_runner::CaseResult::Pass
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Discards the current case (it counts as rejected, not failed) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            ::std::panic::panic_any($crate::test_runner::AssumeRejected);
        }
    };
}

/// A strategy choosing uniformly between the given strategies (all must
/// produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
