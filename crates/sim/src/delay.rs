//! Message-delay policies: the adversary's choice of how long each message
//! spends in the network, within the model's `[d1, d2]` window.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use rand::rngs::StdRng;

use session_types::{Dur, Error, ProcessId, Result, Time};

use crate::rng::{ratio_in_range, seeded_rng};

/// Chooses the network delay of each (message, recipient) instance.
///
/// The returned delay is the paper's message delay: the time from the
/// sending step (which adds `(m, q)` to `net`) to the delivery step of the
/// network process (which moves `m` into `buf_q`); it excludes the time
/// until the recipient's next step (§2.1.2).
pub trait DelayPolicy {
    /// The delay for a message sent from `from` to `to` at `sent_at`.
    fn delay(&mut self, from: ProcessId, to: ProcessId, sent_at: Time) -> Dur;
}

/// Every message takes exactly the same time. With `d2` this is the
/// synchronous network and the worst case for most upper-bound experiments.
#[derive(Clone, Copy, Debug)]
pub struct ConstantDelay(Dur);

impl ConstantDelay {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `delay < 0`.
    pub fn new(delay: Dur) -> Result<ConstantDelay> {
        if delay.is_negative() {
            return Err(Error::invalid_params("ConstantDelay requires delay >= 0"));
        }
        Ok(ConstantDelay(delay))
    }

    /// The configured delay.
    pub fn get(&self) -> Dur {
        self.0
    }
}

impl DelayPolicy for ConstantDelay {
    fn delay(&mut self, _from: ProcessId, _to: ProcessId, _sent_at: Time) -> Dur {
        self.0
    }
}

/// Delays drawn uniformly (over a rational grid) from `[d1, d2]`.
#[derive(Debug)]
pub struct UniformDelay {
    d1: Dur,
    d2: Dur,
    granularity: u32,
    rng: StdRng,
}

impl UniformDelay {
    /// Creates the policy, deterministic from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `d1 < 0` or `d1 > d2`.
    pub fn new(d1: Dur, d2: Dur, seed: u64) -> Result<UniformDelay> {
        if d1.is_negative() {
            return Err(Error::invalid_params("UniformDelay requires d1 >= 0"));
        }
        if d1 > d2 {
            return Err(Error::invalid_params("UniformDelay requires d1 <= d2"));
        }
        Ok(UniformDelay {
            d1,
            d2,
            granularity: 16,
            rng: seeded_rng(seed),
        })
    }

    /// Sets how many grid points subdivide `[d1, d2]` (default 16).
    ///
    /// # Panics
    ///
    /// Panics if `granularity == 0`.
    pub fn with_granularity(mut self, granularity: u32) -> UniformDelay {
        assert!(granularity > 0, "granularity must be positive");
        self.granularity = granularity;
        self
    }
}

impl DelayPolicy for UniformDelay {
    fn delay(&mut self, _from: ProcessId, _to: ProcessId, _sent_at: Time) -> Dur {
        Dur::from_ratio(ratio_in_range(
            &mut self.rng,
            self.d1.as_ratio(),
            self.d2.as_ratio(),
            self.granularity,
        ))
    }
}

/// A default delay with per-edge overrides: lets an adversary starve
/// specific sender→recipient pairs (e.g. maximal delay toward one process
/// while everyone else communicates instantly).
#[derive(Clone, Debug)]
pub struct TargetedDelay {
    default: Dur,
    overrides: BTreeMap<(ProcessId, ProcessId), Dur>,
}

impl TargetedDelay {
    /// Creates the policy with the given default delay.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `default < 0`.
    pub fn new(default: Dur) -> Result<TargetedDelay> {
        if default.is_negative() {
            return Err(Error::invalid_params("TargetedDelay requires delay >= 0"));
        }
        Ok(TargetedDelay {
            default,
            overrides: BTreeMap::new(),
        })
    }

    /// Overrides the delay for messages from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `delay < 0`.
    pub fn with_edge(
        mut self,
        from: ProcessId,
        to: ProcessId,
        delay: Dur,
    ) -> Result<TargetedDelay> {
        if delay.is_negative() {
            return Err(Error::invalid_params("TargetedDelay requires delay >= 0"));
        }
        self.overrides.insert((from, to), delay);
        Ok(self)
    }

    /// Overrides the delay for all messages *to* `to`.
    ///
    /// Applied after construction by recording a per-recipient override; an
    /// explicit per-edge override takes precedence.
    pub fn with_recipient(
        mut self,
        to: ProcessId,
        delay: Dur,
        senders: usize,
    ) -> Result<TargetedDelay> {
        if delay.is_negative() {
            return Err(Error::invalid_params("TargetedDelay requires delay >= 0"));
        }
        for s in 0..senders {
            let key = (ProcessId::new(s), to);
            self.overrides.entry(key).or_insert(delay);
        }
        Ok(self)
    }
}

impl DelayPolicy for TargetedDelay {
    fn delay(&mut self, from: ProcessId, to: ProcessId, _sent_at: Time) -> Dur {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default)
    }
}

/// Replays a scripted sequence of delays (in send order) and then falls back
/// to a constant: used by adversaries to reproduce exact delay assignments
/// from the lower-bound constructions.
#[derive(Clone, Debug)]
pub struct ScriptedDelay {
    script: VecDeque<Dur>,
    fallback: Dur,
}

impl ScriptedDelay {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if any delay is negative.
    pub fn new(script: Vec<Dur>, fallback: Dur) -> Result<ScriptedDelay> {
        if fallback.is_negative() || script.iter().any(|d| d.is_negative()) {
            return Err(Error::invalid_params("ScriptedDelay requires delays >= 0"));
        }
        Ok(ScriptedDelay {
            script: script.into(),
            fallback,
        })
    }
}

impl DelayPolicy for ScriptedDelay {
    fn delay(&mut self, _from: ProcessId, _to: ProcessId, _sent_at: Time) -> Dur {
        self.script.pop_front().unwrap_or(self.fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn constant_delay() {
        let mut d = ConstantDelay::new(Dur::from_int(4)).unwrap();
        assert_eq!(d.delay(p(0), p(1), Time::ZERO), Dur::from_int(4));
        assert_eq!(d.get(), Dur::from_int(4));
        assert!(ConstantDelay::new(Dur::from_int(-1)).is_err());
    }

    #[test]
    fn uniform_delay_in_bounds_and_deterministic() {
        let d1 = Dur::from_int(2);
        let d2 = Dur::from_int(9);
        let mut a = UniformDelay::new(d1, d2, 3).unwrap();
        let mut b = UniformDelay::new(d1, d2, 3).unwrap();
        for _ in 0..200 {
            let da = a.delay(p(0), p(1), Time::ZERO);
            let db = b.delay(p(0), p(1), Time::ZERO);
            assert_eq!(da, db);
            assert!(da >= d1 && da <= d2);
        }
    }

    #[test]
    fn uniform_delay_validation() {
        assert!(UniformDelay::new(Dur::from_int(-1), Dur::ZERO, 0).is_err());
        assert!(UniformDelay::new(Dur::from_int(3), Dur::from_int(2), 0).is_err());
        assert!(UniformDelay::new(Dur::ZERO, Dur::ZERO, 0).is_ok());
    }

    #[test]
    fn targeted_delay_overrides() {
        let mut d = TargetedDelay::new(Dur::ZERO)
            .unwrap()
            .with_edge(p(0), p(2), Dur::from_int(7))
            .unwrap();
        assert_eq!(d.delay(p(0), p(1), Time::ZERO), Dur::ZERO);
        assert_eq!(d.delay(p(0), p(2), Time::ZERO), Dur::from_int(7));
    }

    #[test]
    fn targeted_recipient_override_keeps_edge_priority() {
        let mut d = TargetedDelay::new(Dur::ZERO)
            .unwrap()
            .with_edge(p(1), p(2), Dur::from_int(1))
            .unwrap()
            .with_recipient(p(2), Dur::from_int(9), 3)
            .unwrap();
        // Edge override survives the recipient-wide default.
        assert_eq!(d.delay(p(1), p(2), Time::ZERO), Dur::from_int(1));
        assert_eq!(d.delay(p(0), p(2), Time::ZERO), Dur::from_int(9));
        assert_eq!(d.delay(p(0), p(1), Time::ZERO), Dur::ZERO);
    }

    #[test]
    fn scripted_delay_replays_then_falls_back() {
        let mut d =
            ScriptedDelay::new(vec![Dur::from_int(5), Dur::from_int(1)], Dur::from_int(2)).unwrap();
        assert_eq!(d.delay(p(0), p(1), Time::ZERO), Dur::from_int(5));
        assert_eq!(d.delay(p(0), p(1), Time::ZERO), Dur::from_int(1));
        assert_eq!(d.delay(p(0), p(1), Time::ZERO), Dur::from_int(2));
        assert!(ScriptedDelay::new(vec![Dur::from_int(-1)], Dur::ZERO).is_err());
    }
}
