//! Differential testing of the checker's machines against the real
//! engines: random admissible schedules are walked through the branch
//! menu, replayed with trace recording, and cross-checked with
//! [`session_analyzer::replay::self_check`] — which verifies the rebuilt
//! trace against the timing model with `check_admissible`, recounts
//! sessions with the reference greedy counter, and (for shared memory)
//! replays the step script through the real `SmEngine` and compares
//! global states. Any drift between the checker's model and the system
//! itself shows up as a reported problem.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use session_analyzer::explore::AnyMachine;
use session_analyzer::machine::{sm_system_algos, GapMode, MpAlgo, MpMachine, SmAlgo, SmMachine};
use session_analyzer::replay::{replay, self_check};
use session_core::algorithms::{SemiSyncSmPort, SporadicMpPort, SyncSmPort};
use session_smm::TreeSpec;
use session_types::{Dur, KnownBounds, ProcessId, Time, VarId};

const WALKS: u64 = 40;
const MAX_EVENTS: usize = 60;

/// Walks `root` with uniformly random branch choices until quiescence or
/// `MAX_EVENTS`, returning the choice path.
fn random_walk(root: &AnyMachine, rng: &mut StdRng) -> Vec<usize> {
    let mut machine = root.clone();
    let mut path = Vec::new();
    for _ in 0..MAX_EVENTS {
        let choices = machine.choice_count();
        if choices == 0 {
            break;
        }
        let choice = rng.random_range(0..choices);
        machine.apply(choice, None);
        path.push(choice);
    }
    path
}

fn assert_walks_agree(root: &AnyMachine, bounds: &KnownBounds, label: &str) {
    for seed in 0..WALKS {
        let mut rng = StdRng::seed_from_u64(seed);
        let path = random_walk(root, &mut rng);
        let counterexample = replay(root, &path);
        let problems = self_check(root, &counterexample, bounds, None);
        assert!(
            problems.is_empty(),
            "{label} seed {seed}: machine and reference disagree: {problems:?}"
        );
    }
}

/// `A(syn)` over shared memory: every random schedule replays through the
/// real `SmEngine` to the same global state.
#[test]
fn sync_sm_machine_agrees_with_engine_on_random_schedules() {
    let n = 3;
    let ports: Vec<SmAlgo> = (0..n)
        .map(|i| SmAlgo::Sync(SyncSmPort::new(VarId::new(i), 2)))
        .collect();
    let (algos, num_vars) = sm_system_algos(ports, n, 2);
    let k = algos.len();
    let gap = Dur::from_int(1);
    let root = AnyMachine::Sm(SmMachine::new(
        algos,
        num_vars,
        2,
        n,
        GapMode::PerStep(vec![gap]),
        vec![Time::ZERO + gap; k],
    ));
    let bounds =
        KnownBounds::synchronous(Dur::from_int(1), Dur::from_int(2)).expect("valid bounds");
    assert_walks_agree(&root, &bounds, "SyncSm");
}

/// `A(ss)` over shared memory, the algorithm with the richest port state.
#[test]
fn semisync_sm_machine_agrees_with_engine_on_random_schedules() {
    let n = 2;
    let (c1, c2) = (Dur::from_int(1), Dur::from_int(3));
    let comm_rounds = TreeSpec::build(n, 2).flood_rounds_bound();
    let ports: Vec<SmAlgo> = (0..n)
        .map(|i| {
            SmAlgo::SemiSync(
                SemiSyncSmPort::new(ProcessId::new(i), VarId::new(i), 2, n, c1, c2, comm_rounds)
                    .expect("valid semi-synchronous parameters"),
            )
        })
        .collect();
    let (algos, num_vars) = sm_system_algos(ports, n, 2);
    let k = algos.len();
    let root = AnyMachine::Sm(SmMachine::new(
        algos,
        num_vars,
        2,
        n,
        GapMode::PerStep(vec![c1, c2]),
        vec![Time::ZERO + c1; k],
    ));
    let bounds = KnownBounds::semi_synchronous(c1, c2, Dur::from_int(1)).expect("valid bounds");
    assert_walks_agree(&root, &bounds, "SemiSyncSm");
}

/// `A(sp)` over message passing: every random schedule rebuilds an
/// admissible trace whose greedy session count matches the reference.
#[test]
fn sporadic_mp_machine_rebuilds_admissible_traces() {
    let n = 2;
    let (c1, d1, d2) = (Dur::from_int(1), Dur::ZERO, Dur::from_int(1));
    let algos: Vec<MpAlgo> = (0..n)
        .map(|i| {
            MpAlgo::Sporadic(
                SporadicMpPort::new(ProcessId::new(i), 2, n, c1, d1, d2)
                    .expect("valid sporadic parameters"),
            )
        })
        .collect();
    let root = AnyMachine::Mp(MpMachine::new(
        algos,
        GapMode::PerStep(vec![c1, Dur::from_int(2)]),
        vec![d1, d2],
        vec![Time::ZERO + c1; n],
    ));
    let bounds = KnownBounds::sporadic(c1, d1, d2).expect("valid bounds");
    assert_walks_agree(&root, &bounds, "SporadicMp");
}
