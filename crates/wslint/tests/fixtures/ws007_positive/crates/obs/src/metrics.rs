//! Registry for the digit-regression fixture.
pub const METRIC_NAMES: &[&str] = &[
    "serve.sessions_shed",
    "serve.undocumented",
];
