//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `true` with probability `probability`.
pub fn weighted(probability: f64) -> Weighted {
    assert!(
        (0.0..=1.0).contains(&probability),
        "weighted probability must be in [0, 1]"
    );
    Weighted { probability }
}

/// See [`weighted`].
#[derive(Clone, Copy, Debug)]
pub struct Weighted {
    probability: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.random_unit_f64() < self.probability)
    }
}
