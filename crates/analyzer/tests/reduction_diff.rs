//! Differential harness: the reduction layers must be verdict-preserving.
//!
//! Partial-order reduction prunes interleavings and symmetry reduction
//! merges states, so both change *how much* the explorer visits — but
//! neither may change *what it concludes*. For every registered target and
//! every reduction combination this harness demands the same set of lint
//! codes as the unreduced exploration, and the same counterexample
//! feasibility (replay self-check failures surface as extra `SA004`
//! findings, so code-set equality covers them).
//!
//! The heavyweight sporadic targets are `#[ignore]`d here for the same
//! reason as in `analyzer_checks.rs`: they take minutes in debug builds.
//! `scripts/static-analysis.sh` runs them in release with
//! `--include-ignored`.

use proptest::prelude::*;
use session_analyzer::explore::explore_with_opts;
use session_analyzer::{
    analyze_target_with, scoped_target_space, ExploreOpts, Report, TARGET_NAMES,
};
use session_obs::NullRecorder;

/// Targets cheap enough to explore exhaustively a dozen times in a
/// debug build (everything except the two sporadic MP spaces).
const FAST_TARGETS: [&str; 11] = [
    "SyncSm",
    "PeriodicSm",
    "SemiSyncSm",
    "SporadicSm",
    "AsyncSm",
    "SyncMp",
    "PeriodicMp",
    "SemiSyncMp",
    "AsyncMp",
    "NaivePeriodicSm",
    "NaiveSemiSyncSm",
];

const SLOW_TARGETS: [&str; 2] = ["SporadicMp", "NaiveSporadicMp"];

/// The reduction combinations under test, paired with a label for
/// failure messages: every reduction serially, then every reduction
/// again on the hash-partitioned ownership explorer at 2 and 8 threads
/// — the thread count must preserve verdicts exactly like the
/// reductions themselves, whichever reduction it is layered over.
fn combos() -> Vec<(String, ExploreOpts)> {
    const REDUCTIONS: [(&str, bool, bool); 4] = [
        ("none", false, false),
        ("por", true, false),
        ("symmetry", false, true),
        ("por+symmetry", true, true),
    ];
    let mut combos = Vec::new();
    for (label, por, symmetry) in REDUCTIONS {
        if por || symmetry {
            combos.push((
                label.to_owned(),
                ExploreOpts {
                    por,
                    symmetry,
                    threads: 1,
                },
            ));
        }
    }
    for threads in [2, 8] {
        for (label, por, symmetry) in REDUCTIONS {
            combos.push((
                format!("{label}@threads={threads}"),
                ExploreOpts {
                    por,
                    symmetry,
                    threads,
                },
            ));
        }
    }
    combos
}

/// The verdict as a sorted multiset-collapsed list of `(target, code)`
/// pairs. Reductions may discover a violation along a different
/// representative interleaving, so paths and messages are not compared —
/// only which rules fired where.
fn verdict(report: &Report) -> Vec<(String, String)> {
    let mut codes: Vec<(String, String)> = report
        .findings
        .iter()
        .map(|d| (d.target.clone(), d.code.code().to_owned()))
        .collect();
    codes.sort();
    codes.dedup();
    codes
}

/// Asserts every reduction combination matches the unreduced verdict on
/// `name`, and returns `(full states, reduced states)` for ratio checks.
fn assert_equivalent(name: &str) -> (u64, u64) {
    let baseline = analyze_target_with(name, ExploreOpts::default(), &mut NullRecorder)
        .unwrap_or_else(|| panic!("{name} is registered"));
    let expected = verdict(&baseline);
    assert!(
        !baseline
            .findings
            .iter()
            .any(|d| d.message.contains("self-check failed")),
        "{name}: unreduced counterexample failed its feasibility self-check"
    );
    let mut reduced_states = baseline.targets[0].states;
    for (label, opts) in combos() {
        let report = analyze_target_with(name, opts, &mut NullRecorder).expect("same registry");
        assert_eq!(
            verdict(&report),
            expected,
            "{name}: verdict changed under {label}"
        );
        assert!(
            !report
                .findings
                .iter()
                .any(|d| d.message.contains("self-check failed")),
            "{name}: counterexample under {label} failed its feasibility self-check"
        );
        if opts.por && opts.symmetry && opts.threads == 1 {
            reduced_states = report.targets[0].states;
        }
    }
    (baseline.targets[0].states, reduced_states)
}

#[test]
fn fast_targets_keep_their_verdicts_under_every_reduction() {
    for name in FAST_TARGETS {
        assert_equivalent(name);
    }
}

#[test]
#[ignore = "minutes in debug; run in release via scripts/static-analysis.sh"]
fn slow_targets_keep_their_verdicts_under_every_reduction() {
    for name in SLOW_TARGETS {
        assert_equivalent(name);
    }
}

/// The headline scaling claim: on the paper's periodic message-passing
/// algorithm at n = 3, s = 3 the reductions visit at least 3x fewer
/// states (measured: 325 431 -> 97 123, a 3.35x cut) while reporting the
/// same verdict. `PeriodicMp` is the cheapest (3, 3) paper space that is
/// both debug-tractable and large enough for the ample sets to bite; the
/// synchronous spaces at that scope are nearly deterministic, so there is
/// little left to prune.
#[test]
fn reductions_prune_at_least_3x_on_a_paper_target_at_n3_s3() {
    let name = "PeriodicMp";
    let space = scoped_target_space(name, 3, 3).expect("paper target is registered");
    let full = space.analyze(name, ExploreOpts::default());
    let reduced = space.analyze(name, ExploreOpts::reduced());
    assert_eq!(
        verdict(&full),
        verdict(&reduced),
        "{name} at n=3 s=3: verdict changed under reduction"
    );
    let (full_states, reduced_states) = (full.targets[0].states, reduced.targets[0].states);
    assert!(
        reduced_states > 0 && full_states >= 3 * reduced_states,
        "{name} at n=3 s=3: wanted >=3x fewer states, got {full_states} -> {reduced_states}"
    );
    assert!(
        reduced.targets[0].pruned > 0 || reduced.targets[0].memo_hits > 0,
        "{name} at n=3 s=3: reduction_stats recorded no work"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random small scopes: rebuild a registered target at (n, s), clamp
    /// the depth budget, and demand the reduced exploration reports the
    /// same lint codes as the unreduced one — including under truncation,
    /// where both sides cut schedules at the same depth.
    #[test]
    fn random_small_scopes_keep_their_verdicts(
        target_idx in 0usize..TARGET_NAMES.len(),
        n in 1usize..=3,
        s in 1u64..=3,
        depth in 4usize..=12,
    ) {
        let name = TARGET_NAMES[target_idx];
        let space = scoped_target_space(name, n, s).expect("registered target");
        let full = explore_with_opts(&space.roots, n, s, depth, ExploreOpts::default());
        for (label, opts) in combos() {
            let reduced = explore_with_opts(&space.roots, n, s, depth, opts);
            let mut full_codes: Vec<&str> =
                full.violations.iter().map(|v| v.code.code()).collect();
            let mut reduced_codes: Vec<&str> =
                reduced.violations.iter().map(|v| v.code.code()).collect();
            full_codes.sort_unstable();
            full_codes.dedup();
            reduced_codes.sort_unstable();
            reduced_codes.dedup();
            prop_assert_eq!(
                full_codes,
                reduced_codes,
                "{} at n={} s={} depth={} under {}",
                name,
                n,
                s,
                depth,
                label
            );
        }
    }
}
