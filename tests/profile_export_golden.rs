//! Golden-file tests for the flight-recorder exporters: the
//! `analyzer-profile/v1` JSON and the per-worker Perfetto trace of a
//! fully hand-specified profile must be byte-stable across runs (and
//! across refactors — regenerate the files deliberately, never
//! silently). Timing fields come from the synthetic profile, not a real
//! exploration, so the bytes are deterministic on every host.
//!
//! Regenerate after an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test profile_export_golden
//! ```

use session_analyzer::{ExploreProfile, StripeProfile, WorkerProfile};
use session_obs::{Histogram, TimelineSpan, WorkerTimeline};

/// A fully hand-specified profile: two workers with different time
/// splits, one contended stripe, a truncated-free timeline — every
/// serializer branch except timeline overflow.
fn synthetic() -> ExploreProfile {
    let mut timeline = WorkerTimeline::with_capacity(4);
    timeline.push(TimelineSpan {
        name: "item",
        start_ns: 1000,
        end_ns: 51000,
        detail: 0,
    });
    timeline.push(TimelineSpan {
        name: "item",
        start_ns: 60000,
        end_ns: 80000,
        detail: 5,
    });
    let mut lock_wait_hist = Histogram::new();
    lock_wait_hist.record(200.0);
    lock_wait_hist.record(800.0);
    let worker0 = WorkerProfile {
        states: 900,
        items: 2,
        busy_ns: 70000,
        idle_ns: 10000,
        expand_ns: 60000,
        memo_probe_ns: 6000,
        memo_insert_ns: 3000,
        stripe_lock_wait_ns: 1000,
        stripe_lock_waits: 2,
        donation_ns: 1000,
        duplicate_expansions: 40,
        timeline,
        pool_depth: vec![(1000, 3), (60000, 1)],
    };
    let worker1 = WorkerProfile {
        states: 100,
        items: 1,
        busy_ns: 20000,
        idle_ns: 60000,
        expand_ns: 20000,
        memo_probe_ns: 0,
        memo_insert_ns: 0,
        stripe_lock_wait_ns: 0,
        stripe_lock_waits: 0,
        donation_ns: 0,
        duplicate_expansions: 10,
        timeline: WorkerTimeline::with_capacity(4),
        pool_depth: vec![(2000, 2)],
    };
    let mut stripes = vec![StripeProfile::default(); 4];
    stripes[1] = StripeProfile {
        hits: 50,
        misses: 950,
        contended: 2,
    };
    ExploreProfile {
        target: "PeriodicMp".to_owned(),
        n: 3,
        s: 3,
        threads: 2,
        max_depth: 27,
        por: false,
        symmetry: false,
        states: 1000,
        unique_states: 950,
        duplicate_expansions: 50,
        donations_offered: 3,
        donations_accepted: 4,
        wall_ns: 100000,
        phase_a_ns: 80000,
        phase_b_ns: 20000,
        lock_wait_hist,
        workers: vec![worker0, worker1],
        stripes,
    }
}

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from the committed golden file; if the format change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn profile_json_is_byte_stable() {
    check_golden("analyzer_profile_v1.json", &synthetic().to_json());
}

#[test]
fn profile_perfetto_is_byte_stable() {
    check_golden(
        "analyzer_profile_v1.perfetto.json",
        &synthetic().to_perfetto(),
    );
}

#[test]
fn exports_are_identical_across_runs() {
    let first = (synthetic().to_json(), synthetic().to_perfetto());
    let second = (synthetic().to_json(), synthetic().to_perfetto());
    assert_eq!(first, second);
}
