//! The paper's model taxonomy (§2.2) and the `(s, n)`-session problem
//! statement (§2.3).

use std::fmt;

use crate::error::{Error, Result};
use crate::time::Dur;

/// The five real-time constraint families of §2.2.
///
/// Each model constrains the time between consecutive steps of every process
/// and (in message passing) the delay of every message:
///
/// | Model | step time | message delay | known constants |
/// |---|---|---|---|
/// | Synchronous | exactly `c2` | exactly `d2` | `c2`, `d2` |
/// | Periodic | exactly `c_i` per process `p_i`, unknown | `[0, d2]` | `d2` |
/// | Semi-synchronous | `[c1, c2]`, `c1 > 0` | `[0, d2]` | `c1`, `c2`, `d2` |
/// | Sporadic | `>= c1 > 0`, no upper bound | `[d1, d2]` | `c1`, `d1`, `d2` |
/// | Asynchronous | unbounded (finite) | unbounded (finite) | none |
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimingModel {
    /// Lock-step: every step takes exactly `c2`, every delay exactly `d2`.
    Synchronous,
    /// Each process steps at its own constant, *unknown* period.
    Periodic,
    /// Step time within known `[c1, c2]`; delays within `[0, d2]`.
    SemiSynchronous,
    /// Step time at least `c1` with no upper bound; delays within `[d1, d2]`.
    Sporadic,
    /// No timing information at all; running time is measured in rounds.
    Asynchronous,
}

impl TimingModel {
    /// All five models, in the order of the paper's Table 1.
    pub const ALL: [TimingModel; 5] = [
        TimingModel::Synchronous,
        TimingModel::Periodic,
        TimingModel::SemiSynchronous,
        TimingModel::Sporadic,
        TimingModel::Asynchronous,
    ];

    /// Returns `true` if running time under this model is measured in real
    /// time; `false` if it is measured in rounds (asynchronous and sporadic
    /// shared memory — see §2.3).
    pub fn measures_real_time(self) -> bool {
        !matches!(self, TimingModel::Asynchronous)
    }
}

impl fmt::Display for TimingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TimingModel::Synchronous => "synchronous",
            TimingModel::Periodic => "periodic",
            TimingModel::SemiSynchronous => "semi-synchronous",
            TimingModel::Sporadic => "sporadic",
            TimingModel::Asynchronous => "asynchronous",
        };
        f.write_str(name)
    }
}

/// The two interprocess communication models of §2.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommModel {
    /// Processes communicate through `b`-bounded shared variables (§2.1.1).
    SharedMemory,
    /// Processes broadcast messages through a reliable network (§2.1.2).
    MessagePassing,
}

impl CommModel {
    /// Both communication models, shared memory first (Table 1 column order).
    pub const ALL: [CommModel; 2] = [CommModel::SharedMemory, CommModel::MessagePassing];
}

impl fmt::Display for CommModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CommModel::SharedMemory => "shared memory",
            CommModel::MessagePassing => "message passing",
        };
        f.write_str(name)
    }
}

/// The timing constants *known to the processes* under a given model.
///
/// Algorithms may consult only these values (§2.2: "Thus `c1`, `c2` and `d2`
/// are known"). Schedule generators, in contrast, may use additional hidden
/// parameters (e.g. the actual periods `c_i` of the periodic model), which
/// live in `session-sim`, not here.
///
/// # Examples
///
/// ```
/// use session_types::{Dur, KnownBounds, TimingModel};
///
/// # fn main() -> Result<(), session_types::Error> {
/// let sporadic = KnownBounds::sporadic(Dur::from_int(1), Dur::from_int(2),
///                                      Dur::from_int(10))?;
/// assert_eq!(sporadic.model(), TimingModel::Sporadic);
/// // u = d2 - d1, the delay uncertainty of §6.
/// assert_eq!(sporadic.delay_uncertainty(), Some(Dur::from_int(8)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KnownBounds {
    model: TimingModel,
    c1: Option<Dur>,
    c2: Option<Dur>,
    d1: Option<Dur>,
    d2: Option<Dur>,
}

impl KnownBounds {
    /// Synchronous model: step time exactly `c2`, message delay exactly `d2`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `c2 <= 0` or `d2 < 0`.
    pub fn synchronous(c2: Dur, d2: Dur) -> Result<KnownBounds> {
        if !c2.is_positive() {
            return Err(Error::invalid_params("synchronous model requires c2 > 0"));
        }
        if d2.is_negative() {
            return Err(Error::invalid_params("synchronous model requires d2 >= 0"));
        }
        Ok(KnownBounds {
            model: TimingModel::Synchronous,
            c1: Some(c2),
            c2: Some(c2),
            d1: Some(d2),
            d2: Some(d2),
        })
    }

    /// Periodic model: per-process constant periods, unknown to the
    /// processes; message delay within `[0, d2]` with `d2` known.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `d2 < 0`.
    pub fn periodic(d2: Dur) -> Result<KnownBounds> {
        if d2.is_negative() {
            return Err(Error::invalid_params("periodic model requires d2 >= 0"));
        }
        Ok(KnownBounds {
            model: TimingModel::Periodic,
            c1: None,
            c2: None,
            d1: Some(Dur::ZERO),
            d2: Some(d2),
        })
    }

    /// Semi-synchronous model: step time within known `[c1, c2]` with
    /// `c1 > 0`; message delay within `[0, d2]` with `d2` known.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `c1 <= 0`, `c1 > c2` or `d2 < 0`.
    pub fn semi_synchronous(c1: Dur, c2: Dur, d2: Dur) -> Result<KnownBounds> {
        if !c1.is_positive() {
            return Err(Error::invalid_params(
                "semi-synchronous model requires c1 > 0",
            ));
        }
        if c1 > c2 {
            return Err(Error::invalid_params(
                "semi-synchronous model requires c1 <= c2",
            ));
        }
        if d2.is_negative() {
            return Err(Error::invalid_params(
                "semi-synchronous model requires d2 >= 0",
            ));
        }
        Ok(KnownBounds {
            model: TimingModel::SemiSynchronous,
            c1: Some(c1),
            c2: Some(c2),
            d1: Some(Dur::ZERO),
            d2: Some(d2),
        })
    }

    /// Sporadic model: step time at least `c1 > 0` with no upper bound;
    /// message delay within known `[d1, d2]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `c1 <= 0`, `d1 < 0` or `d1 > d2`.
    pub fn sporadic(c1: Dur, d1: Dur, d2: Dur) -> Result<KnownBounds> {
        if !c1.is_positive() {
            return Err(Error::invalid_params("sporadic model requires c1 > 0"));
        }
        if d1.is_negative() {
            return Err(Error::invalid_params("sporadic model requires d1 >= 0"));
        }
        if d1 > d2 {
            return Err(Error::invalid_params("sporadic model requires d1 <= d2"));
        }
        Ok(KnownBounds {
            model: TimingModel::Sporadic,
            c1: Some(c1),
            c2: None,
            d1: Some(d1),
            d2: Some(d2),
        })
    }

    /// Asynchronous model: nothing is known; every process takes infinitely
    /// many steps and every message is eventually delivered.
    pub fn asynchronous() -> KnownBounds {
        KnownBounds {
            model: TimingModel::Asynchronous,
            c1: None,
            c2: None,
            d1: None,
            d2: None,
        }
    }

    /// The timing model these bounds belong to.
    pub fn model(&self) -> TimingModel {
        self.model
    }

    /// The known lower bound on step time, if any.
    pub fn c1(&self) -> Option<Dur> {
        self.c1
    }

    /// The known upper bound on step time, if any.
    pub fn c2(&self) -> Option<Dur> {
        self.c2
    }

    /// The known lower bound on message delay, if any.
    pub fn d1(&self) -> Option<Dur> {
        self.d1
    }

    /// The known upper bound on message delay, if any.
    pub fn d2(&self) -> Option<Dur> {
        self.d2
    }

    /// `u = d2 - d1`, the message-delay uncertainty central to §6, when both
    /// bounds are known.
    pub fn delay_uncertainty(&self) -> Option<Dur> {
        match (self.d1, self.d2) {
            (Some(d1), Some(d2)) => Some(d2 - d1),
            _ => None,
        }
    }
}

impl fmt::Display for KnownBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.model)?;
        let mut wrote_any = false;
        let mut item = |f: &mut fmt::Formatter<'_>, name: &str, value: Option<Dur>| {
            if let Some(v) = value {
                let sep = if wrote_any { ", " } else { " (" };
                wrote_any = true;
                write!(f, "{sep}{name} = {v}")
            } else {
                Ok(())
            }
        };
        item(f, "c1", self.c1)?;
        item(f, "c2", self.c2)?;
        item(f, "d1", self.d1)?;
        item(f, "d2", self.d2)?;
        if wrote_any {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The statement of the `(s, n)`-session problem (§2.3) plus the
/// shared-memory fan-in constant `b` (§2.1.1).
///
/// An algorithm solving the problem must guarantee, in every admissible timed
/// computation, at least `s` disjoint sessions — a *session* being a minimal
/// fragment containing a port step for each of the `n` ports — after which
/// every port process is idle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SessionSpec {
    s: u64,
    n: usize,
    b: usize,
}

impl SessionSpec {
    /// Creates a spec for the `(s, n)`-session problem with at most `b`
    /// processes allowed to access any shared variable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `s == 0`, `n == 0` or `b < 2`
    /// (with `b < 2` no two processes could ever communicate through a
    /// variable).
    pub fn new(s: u64, n: usize, b: usize) -> Result<SessionSpec> {
        if s == 0 {
            return Err(Error::invalid_params("session spec requires s >= 1"));
        }
        if n == 0 {
            return Err(Error::invalid_params("session spec requires n >= 1"));
        }
        if b < 2 {
            return Err(Error::invalid_params("session spec requires b >= 2"));
        }
        Ok(SessionSpec { s, n, b })
    }

    /// The required number of disjoint sessions.
    pub fn s(&self) -> u64 {
        self.s
    }

    /// The number of distinguished ports (and port processes).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The maximum number of processes that may access one shared variable.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Iterates over all port identifiers `y0 .. y(n-1)`.
    pub fn ports(&self) -> impl Iterator<Item = crate::PortId> {
        (0..self.n).map(crate::PortId::new)
    }

    /// `⌊log_b n⌋`, the communication-cost factor of the shared-memory rows
    /// of Table 1.
    pub fn log_b_n_floor(&self) -> u32 {
        ilog(self.b as u128, self.n as u128)
    }

    /// `⌊log_{2b-1}(2n - 1)⌋`, the contamination-spread factor of
    /// Theorem 4.3.
    pub fn contamination_depth(&self) -> u32 {
        ilog((2 * self.b - 1) as u128, (2 * self.n - 1) as u128)
    }
}

impl fmt::Display for SessionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {})-session problem, b = {}",
            self.s, self.n, self.b
        )
    }
}

/// `⌊log_base(value)⌋` for integer `base >= 2` and `value >= 1`.
fn ilog(base: u128, value: u128) -> u32 {
    debug_assert!(base >= 2 && value >= 1);
    let mut power = base;
    let mut log = 0;
    while power <= value {
        log += 1;
        match power.checked_mul(base) {
            Some(next) => power = next,
            None => break,
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_validation() {
        assert!(KnownBounds::synchronous(Dur::from_int(1), Dur::from_int(0)).is_ok());
        assert!(KnownBounds::synchronous(Dur::ZERO, Dur::from_int(1)).is_err());
        assert!(KnownBounds::synchronous(Dur::from_int(1), Dur::from_int(-1)).is_err());
    }

    #[test]
    fn synchronous_pins_c1_to_c2() {
        let b = KnownBounds::synchronous(Dur::from_int(3), Dur::from_int(5)).unwrap();
        assert_eq!(b.c1(), Some(Dur::from_int(3)));
        assert_eq!(b.c2(), Some(Dur::from_int(3)));
        assert_eq!(b.d1(), Some(Dur::from_int(5)));
        assert_eq!(b.d2(), Some(Dur::from_int(5)));
    }

    #[test]
    fn periodic_knows_only_d2() {
        let b = KnownBounds::periodic(Dur::from_int(9)).unwrap();
        assert_eq!(b.model(), TimingModel::Periodic);
        assert_eq!(b.c1(), None);
        assert_eq!(b.c2(), None);
        assert_eq!(b.d2(), Some(Dur::from_int(9)));
        assert!(KnownBounds::periodic(Dur::from_int(-1)).is_err());
    }

    #[test]
    fn semi_synchronous_validation() {
        assert!(KnownBounds::semi_synchronous(
            Dur::from_int(1),
            Dur::from_int(4),
            Dur::from_int(9)
        )
        .is_ok());
        assert!(
            KnownBounds::semi_synchronous(Dur::ZERO, Dur::from_int(4), Dur::from_int(9)).is_err()
        );
        assert!(KnownBounds::semi_synchronous(
            Dur::from_int(5),
            Dur::from_int(4),
            Dur::from_int(9)
        )
        .is_err());
        assert!(KnownBounds::semi_synchronous(
            Dur::from_int(1),
            Dur::from_int(4),
            Dur::from_int(-9)
        )
        .is_err());
    }

    #[test]
    fn sporadic_validation_and_uncertainty() {
        let b =
            KnownBounds::sporadic(Dur::from_int(1), Dur::from_int(2), Dur::from_int(10)).unwrap();
        assert_eq!(b.delay_uncertainty(), Some(Dur::from_int(8)));
        assert_eq!(b.c2(), None);
        assert!(KnownBounds::sporadic(Dur::ZERO, Dur::ZERO, Dur::from_int(1)).is_err());
        assert!(
            KnownBounds::sporadic(Dur::from_int(1), Dur::from_int(3), Dur::from_int(2)).is_err()
        );
        assert!(
            KnownBounds::sporadic(Dur::from_int(1), Dur::from_int(-1), Dur::from_int(2)).is_err()
        );
    }

    #[test]
    fn asynchronous_knows_nothing() {
        let b = KnownBounds::asynchronous();
        assert_eq!(b.model(), TimingModel::Asynchronous);
        assert_eq!(b.c1(), None);
        assert_eq!(b.c2(), None);
        assert_eq!(b.d1(), None);
        assert_eq!(b.d2(), None);
        assert_eq!(b.delay_uncertainty(), None);
    }

    #[test]
    fn spec_validation() {
        assert!(SessionSpec::new(1, 1, 2).is_ok());
        assert!(SessionSpec::new(0, 4, 2).is_err());
        assert!(SessionSpec::new(4, 0, 2).is_err());
        assert!(SessionSpec::new(4, 4, 1).is_err());
    }

    #[test]
    fn spec_accessors() {
        let spec = SessionSpec::new(3, 8, 2).unwrap();
        assert_eq!(spec.s(), 3);
        assert_eq!(spec.n(), 8);
        assert_eq!(spec.b(), 2);
        assert_eq!(spec.ports().count(), 8);
        assert_eq!(spec.to_string(), "(3, 8)-session problem, b = 2");
    }

    #[test]
    fn log_b_n_floor_values() {
        let spec = SessionSpec::new(2, 8, 2).unwrap();
        assert_eq!(spec.log_b_n_floor(), 3); // log2 8 = 3
        let spec = SessionSpec::new(2, 9, 3).unwrap();
        assert_eq!(spec.log_b_n_floor(), 2); // log3 9 = 2
        let spec = SessionSpec::new(2, 10, 3).unwrap();
        assert_eq!(spec.log_b_n_floor(), 2); // floor(log3 10) = 2
        let spec = SessionSpec::new(2, 1, 2).unwrap();
        assert_eq!(spec.log_b_n_floor(), 0);
    }

    #[test]
    fn contamination_depth_values() {
        // b = 2 => base 3; n = 5 => 2n-1 = 9 => log3 9 = 2.
        let spec = SessionSpec::new(2, 5, 2).unwrap();
        assert_eq!(spec.contamination_depth(), 2);
        // b = 3 => base 5; n = 13 => 2n-1 = 25 => log5 25 = 2.
        let spec = SessionSpec::new(2, 13, 3).unwrap();
        assert_eq!(spec.contamination_depth(), 2);
    }

    #[test]
    fn known_bounds_display() {
        let b =
            KnownBounds::sporadic(Dur::from_int(1), Dur::from_int(2), Dur::from_int(9)).unwrap();
        assert_eq!(b.to_string(), "sporadic (c1 = 1, d1 = 2, d2 = 9)");
        assert_eq!(KnownBounds::asynchronous().to_string(), "asynchronous");
        let b = KnownBounds::periodic(Dur::from_int(5)).unwrap();
        assert_eq!(b.to_string(), "periodic (d1 = 0, d2 = 5)");
    }

    #[test]
    fn model_display_names() {
        assert_eq!(TimingModel::SemiSynchronous.to_string(), "semi-synchronous");
        assert_eq!(CommModel::SharedMemory.to_string(), "shared memory");
        assert_eq!(TimingModel::ALL.len(), 5);
        assert_eq!(CommModel::ALL.len(), 2);
    }

    #[test]
    fn real_time_vs_rounds() {
        assert!(TimingModel::Synchronous.measures_real_time());
        assert!(TimingModel::Sporadic.measures_real_time());
        assert!(!TimingModel::Asynchronous.measures_real_time());
    }
}
