//! Moderate-scale integration runs: the engines and verifiers must stay
//! correct (and fast enough for CI) well beyond the unit-test sizes.

use session_problem::core::report::{run_mp, run_sm, MpConfig, SmConfig};
use session_problem::core::verify::check_admissible;
use session_problem::sim::{ConstantDelay, FixedPeriods, JitterSchedule, RunLimits};
use session_problem::smm::TreeSpec;
use session_problem::types::{Dur, KnownBounds, SessionSpec, TimingModel};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

#[test]
fn async_sm_with_64_ports() {
    let spec = SessionSpec::new(4, 64, 2).unwrap();
    let tree = TreeSpec::build(64, 2);
    let mut sched = FixedPeriods::uniform(64 + tree.num_relays(), d(1)).unwrap();
    let report = run_sm(
        SmConfig {
            model: TimingModel::Asynchronous,
            spec,
            bounds: KnownBounds::asynchronous(),
        },
        &mut sched,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.solves(&spec));
    let budget = (spec.s() + 1) * tree.flood_rounds_bound() + 2;
    assert!(
        report.rounds <= budget,
        "{} rounds > {budget} for n = 64",
        report.rounds
    );
}

#[test]
fn periodic_mp_with_100_ports() {
    let spec = SessionSpec::new(6, 100, 2).unwrap();
    let d2 = d(10);
    let bounds = KnownBounds::periodic(d2).unwrap();
    let periods: Vec<Dur> = (0..100).map(|i| d(i % 7 + 1)).collect();
    let c_max = d(7);
    let mut sched = FixedPeriods::new(periods).unwrap();
    let mut delays = ConstantDelay::new(d2).unwrap();
    let report = run_mp(
        MpConfig {
            model: TimingModel::Periodic,
            spec,
            bounds,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.solves(&spec));
    check_admissible(&report.trace, &bounds).unwrap();
    let rt = report.running_time.unwrap() - session_problem::types::Time::ZERO;
    let budget = c_max * spec.s() as i128 + d2 + c_max * 2;
    assert!(rt <= budget, "{rt} > {budget} for n = 100");
}

#[test]
fn semisync_sm_with_32_ports_under_jitter() {
    let spec = SessionSpec::new(8, 32, 3).unwrap();
    let c1 = d(1);
    let c2 = d(3);
    let bounds = KnownBounds::semi_synchronous(c1, c2, d(5)).unwrap();
    let mut sched = JitterSchedule::new(c1, c2, 2024).unwrap();
    let report = run_sm(
        SmConfig {
            model: TimingModel::SemiSynchronous,
            spec,
            bounds,
        },
        &mut sched,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.solves(&spec));
    check_admissible(&report.trace, &bounds).unwrap();
}

#[test]
fn sporadic_mp_with_many_sessions() {
    // Deep s stresses A(sp)'s bookkeeping (msg_buf keyed by value).
    let spec = SessionSpec::new(64, 3, 2).unwrap();
    let bounds = KnownBounds::sporadic(d(1), d(0), d(4)).unwrap();
    let mut sched = FixedPeriods::uniform(3, d(1)).unwrap();
    let mut delays = ConstantDelay::new(d(2)).unwrap();
    let report = run_mp(
        MpConfig {
            model: TimingModel::Sporadic,
            spec,
            bounds,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.solves(&spec), "{} of 64 sessions", report.sessions);
    check_admissible(&report.trace, &bounds).unwrap();
}
